"""Observer-hook parity: observation must never perturb execution.

The analysis subsystem rides the VM observer hook
(:meth:`repro.vm.machine.VM` ``observer=``).  Its contract: outputs,
cycle counts, step counts and trap addresses are bit-identical with the
hook attached or detached — the observers read architectural state but
never write it.  Asserted here for both observers (and their chain)
across every NAS benchmark at class T.
"""

from __future__ import annotations

import pytest

from repro.analysis import ChainedObserver, ChannelObserver, ShadowObserver
from repro.vm.errors import VmTrap
from repro.vm.machine import run_program
from repro.workloads import BENCHMARKS, make_workload
from tests.conftest import compile_src

OBSERVERS = {
    "shadow": ShadowObserver,
    "channels": ChannelObserver,
    "chained": lambda: ChainedObserver(ShadowObserver(), ChannelObserver()),
}


@pytest.mark.parametrize("bench", sorted(BENCHMARKS))
@pytest.mark.parametrize("factory", OBSERVERS.values(), ids=OBSERVERS.keys())
def test_nas_outputs_bit_identical(bench, factory):
    workload = make_workload(bench, "T")
    plain = run_program(workload.program, **workload.vm_params())
    observed = run_program(
        workload.program, observer=factory(), **workload.vm_params()
    )
    assert observed.outputs == plain.outputs  # raw records, bit-exact
    assert observed.cycles == plain.cycles
    assert observed.steps == plain.steps
    assert observed.halted == plain.halted


TRAP_SRC = """
var a: real[4] = [1.0, 2.0, 3.0, 4.0];
fn main() {
    var s: real = 0.0;
    for i in 0 .. 9 {
        s = s + a[i * 100000000];
    }
    out(s);
}
"""


@pytest.mark.parametrize("factory", OBSERVERS.values(), ids=OBSERVERS.keys())
def test_trap_address_identical(factory):
    program = compile_src(TRAP_SRC)
    with pytest.raises(VmTrap) as plain:
        run_program(program)
    with pytest.raises(VmTrap) as observed:
        run_program(program, observer=factory())
    assert observed.value.addr == plain.value.addr
    assert str(observed.value) == str(plain.value)


@pytest.mark.parametrize("bench", ("cg", "mg"))
def test_profile_counts_identical(bench):
    """exec_counts (profiling) are part of the parity contract too."""
    workload = make_workload(bench, "T")
    plain = run_program(workload.program, profile=True, **workload.vm_params())
    observed = run_program(
        workload.program, observer=ShadowObserver(), profile=True,
        **workload.vm_params(),
    )
    assert observed.exec_counts == plain.exec_counts
