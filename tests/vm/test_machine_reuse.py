"""Persistent ``Machine`` reuse: rebinding, compile cache, trap parity.

A ``Machine`` keeps one VM alive across ``run()`` calls and reuses
compiled closures for instructions whose bytes are unchanged.  Every
observable — outputs, cycles, steps, trap messages *and* trap
addresses — must match a fresh ``run_program`` exactly, no matter how
many runs the machine has already absorbed.
"""

import pytest

from repro.config import Config, Policy, build_tree
from repro.instrument import InstrumentCache, instrument
from repro.vm import Machine, run_program
from repro.vm.errors import VmTrap
from repro.workloads import make_nas
from tests.conftest import compile_src

TRAP_SRC = """
var a: real[4] = [1.0, 2.0, 3.0, 4.0];
fn main() {
    var x: real = 3.0;
    var y: real = x * 1.0;
    var k: i64 = i64(y);
    out(a[k]);
}
"""


def _trapping_program():
    # Single-replace the multiply but ignore the conversion: the flagged
    # slot reads back as NaN -> integer indefinite -> wild index -> trap.
    program = compile_src(TRAP_SRC)
    tree = build_tree(program)
    nodes = list(tree.instructions())
    config = Config(tree)
    config.set(next(n for n in nodes if "mulsd" in n.text).node_id, Policy.SINGLE)
    config.set(next(n for n in nodes if "cvttsd2si" in n.text).node_id, Policy.IGNORE)
    return instrument(program, config).program


class TestReuse:
    def test_repeat_runs_identical(self):
        workload = make_nas("cg", "T")
        machine = Machine(**workload.vm_params())
        cold = workload.run(workload.program)
        results = [machine.run(workload.program) for _ in range(3)]
        for warm in results:
            assert warm.outputs == cold.outputs
            assert warm.cycles == cold.cycles
            assert warm.steps == cold.steps
        assert machine.runs == 3

    def test_instrumented_sequence_matches_cold(self):
        # The searcher's actual usage: one machine, a stream of
        # differently instrumented builds of the same workload.
        workload = make_nas("mg", "T")
        tree = build_tree(workload.program)
        cache = InstrumentCache(workload.program)
        machine = Machine(**workload.vm_params())
        configs = [
            Config.all_double(tree),
            Config.all_single(tree),
            Config.all_double(tree).set(
                next(iter(tree.instructions())).node_id, Policy.SINGLE
            ),
        ]
        for config in configs:
            built = instrument(workload.program, config, cache=cache)
            warm = machine.run(built.program, built.segments)
            cold = workload.run(built.program)
            assert warm.outputs == cold.outputs
            assert warm.cycles == cold.cycles
            assert warm.steps == cold.steps
        # Later builds reused compiled closures for unchanged blocks.
        assert machine.compile_cache_hits > 0

    def test_profile_counts_identical(self):
        workload = make_nas("ep", "T")
        machine = Machine(**workload.vm_params())
        machine.run(workload.program)  # prime the compile cache
        warm = machine.run(workload.program)
        assert warm.exec_counts == workload.run(workload.program).exec_counts


class TestTrapParity:
    def test_trap_address_survives_closure_reuse(self):
        program = _trapping_program()
        machine = Machine(stack_words=256, max_steps=100_000)
        with pytest.raises(VmTrap) as cold:
            machine.run(program)
        with pytest.raises(VmTrap) as warm:
            machine.run(program)
        # The warm run executes cached closures; the trap must still be
        # stamped with the faulting instruction's address.
        assert str(warm.value) == str(cold.value)
        assert warm.value.addr == cold.value.addr
        assert warm.value.addr is not None

    def test_trap_matches_run_program(self):
        program = _trapping_program()
        machine = Machine(stack_words=256, max_steps=100_000)
        with pytest.raises(VmTrap) as fresh:
            run_program(program, stack_words=256, max_steps=100_000)
        with pytest.raises(VmTrap):
            machine.run(program)  # prime the compile cache
        with pytest.raises(VmTrap) as warm:
            machine.run(program)
        assert str(warm.value) == str(fresh.value)
        assert warm.value.addr == fresh.value.addr


class TestRebind:
    def test_data_image_change_builds_fresh_vm(self):
        workload = make_nas("cg", "T")
        machine = Machine(**workload.vm_params())
        first = machine.run(workload.program)
        vm_before = machine._vm

        # A build with different input data cannot share the bound VM's
        # data image; the machine must fall back to a fresh VM.
        other = make_nas("cg", "S")
        second = machine.run(other.program)
        assert machine._vm is not vm_before
        assert second.outputs == other.run(other.program).outputs

        # And rebinding back to the first image works again.
        third = machine.run(other.program)
        assert third.outputs == second.outputs
        assert third.cycles == second.cycles
        assert first.outputs != second.outputs
