"""Control flow, cost accounting, profiling, traps, and outputs."""

import pytest

from repro.asm import AsmBuilder, LabelRef, assemble_text
from repro.isa import Imm, Op, Reg, Xmm
from repro.vm import VM, run_program, decode_outputs, outputs_close
from repro.vm.costs import CostModel, DEFAULT_COST_MODEL
from repro.vm.errors import VmTrap


def _loop_program(n):
    builder = AsmBuilder()
    builder.func("_start")
    builder.emit(Op.MOV, Reg(0), Imm(0))
    builder.mark("top")
    builder.emit(Op.INC, Reg(0))
    builder.emit(Op.CMP, Reg(0), Imm(n))
    builder.emit(Op.JL, LabelRef("top"))
    builder.emit(Op.OUTI, Reg(0))
    builder.emit(Op.HALT)
    builder.endfunc()
    return builder.link()


class TestControlFlow:
    def test_loop_executes_n_times(self):
        result = run_program(_loop_program(100))
        assert result.values() == [100]
        # mov + 100*(inc+cmp+jl) + outi + halt
        assert result.steps == 1 + 300 + 2

    def test_call_ret_nesting(self):
        program = assemble_text(
            """
.func _start
    call a
    outi %r0
    halt
.endfunc
.func a
    call b
    add %r0, $1
    ret
.endfunc
.func b
    mov %r0, $10
    ret
.endfunc
"""
        )
        assert run_program(program).values() == [11]

    def test_return_to_bad_address_traps(self):
        program = assemble_text(
            """
.func _start
    push $12345
    ret
.endfunc
"""
        )
        with pytest.raises(VmTrap, match="non-instruction"):
            run_program(program)

    def test_max_steps_guard(self):
        program = assemble_text(
            ".func _start\nspin:\n    jmp spin\n.endfunc"
        )
        with pytest.raises(VmTrap, match="step budget"):
            run_program(program, max_steps=1000)


class TestCosts:
    def test_cycles_deterministic(self):
        a = run_program(_loop_program(50)).cycles
        b = run_program(_loop_program(50)).cycles
        assert a == b > 0

    def test_custom_cost_model_scales(self):
        program = _loop_program(10)
        cheap = VM(program, cost_model=CostModel(int_alu=1))
        cheap.run()
        dear = VM(program, cost_model=CostModel(int_alu=10))
        dear.run()
        assert dear.cycles > cheap.cycles

    def test_double_flop_costs_twice_single(self):
        assert DEFAULT_COST_MODEL.fp64 == 2 * DEFAULT_COST_MODEL.fp32
        assert DEFAULT_COST_MODEL.mem8 == 2 * DEFAULT_COST_MODEL.mem4

    def test_taken_branch_costs_extra(self):
        taken = assemble_text(
            ".func _start\n    mov %r0, $0\n    cmp %r0, $1\n    jl t\nt:\n    halt\n.endfunc"
        )
        fallthrough = assemble_text(
            ".func _start\n    mov %r0, $1\n    cmp %r0, $1\n    jl t\nt:\n    halt\n.endfunc"
        )
        diff = run_program(taken).cycles - run_program(fallthrough).cycles
        assert diff == DEFAULT_COST_MODEL.branch_taken_extra

    def test_frame_access_cheaper_than_global(self):
        frame = assemble_text(
            ".func _start\n    mov %fp, %sp\n    sub %sp, $1\n"
            "    mov -1(%fp), $5\n    mov %r0, -1(%fp)\n    halt\n.endfunc"
        )
        globl = assemble_text(
            ".global g 1\n.func _start\n    mov [g], $5\n    mov %r0, [g]\n    halt\n.endfunc"
        )
        assert run_program(frame).cycles < run_program(globl).cycles


class TestProfiling:
    def test_exec_counts_by_address(self):
        program = _loop_program(25)
        result = run_program(program, profile=True)
        counts = sorted(result.exec_counts.values(), reverse=True)
        assert counts[0] == 25  # the loop body instructions
        assert sum(1 for c in result.exec_counts.values() if c == 25) == 3

    def test_no_profile_no_counts(self):
        assert run_program(_loop_program(5)).exec_counts == {}


class TestRandDeterminism:
    def _rand_prog(self):
        builder = AsmBuilder()
        builder.func("_start")
        for _ in range(3):
            builder.emit(Op.RAND, Reg(0))
            builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        return builder.link()

    def test_same_seed_same_stream(self):
        program = self._rand_prog()
        a = run_program(program, seed=42).values()
        b = run_program(program, seed=42).values()
        assert a == b

    def test_different_seed_different_stream(self):
        program = self._rand_prog()
        assert run_program(program, seed=1).values() != run_program(program, seed=2).values()


class TestOutputs:
    def test_decode_kinds(self):
        from repro.fpbits.ieee import double_to_bits, single_to_bits
        from repro.fpbits.replace import make_replaced

        records = [
            ("i", 7),
            ("i", 0xFFFFFFFFFFFFFFFF),  # -1 signed
            ("d", double_to_bits(1.5)),
            ("d", make_replaced(single_to_bits(2.5))),  # flag-transparent
            ("s", single_to_bits(3.5)),
        ]
        assert decode_outputs(records) == [7, -1, 1.5, 2.5, 3.5]

    def test_outputs_close_nan_fails(self):
        assert not outputs_close([float("nan")], [float("nan")])

    def test_outputs_close_length_mismatch(self):
        assert not outputs_close([1.0], [1.0, 2.0])

    def test_outputs_close_int_exact(self):
        assert outputs_close([5], [5])
        assert not outputs_close([5], [6])

    def test_outputs_close_tolerance(self):
        assert outputs_close([1.0], [1.0 + 1e-12], rel_tol=1e-9)
        assert not outputs_close([1.0], [1.01], rel_tol=1e-9)
