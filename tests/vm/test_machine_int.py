"""Integer semantics of the VM (64-bit wrap, signedness, flags, stack)."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import AsmBuilder, LabelRef
from repro.isa import Imm, Mem, Op, Reg
from repro.vm import run_program
from repro.vm.errors import VmTrap

U64 = st.integers(min_value=0, max_value=2**64 - 1)
I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
M = 0xFFFFFFFFFFFFFFFF


def run_int_op(op, a, b):
    """Execute `op r0, r1` with r0=a, r1=b; return r0's final pattern."""
    builder = AsmBuilder()
    builder.func("_start")
    builder.emit(Op.MOV, Reg(0), Imm(a))
    builder.emit(Op.MOV, Reg(1), Imm(b))
    builder.emit(op, Reg(0), Reg(1))
    builder.emit(Op.OUTI, Reg(0))
    builder.emit(Op.HALT)
    builder.endfunc()
    result = run_program(builder.link())
    return result.outputs[0][1]


class TestWrapArithmetic:
    @given(U64, U64)
    def test_add_wraps(self, a, b):
        assert run_int_op(Op.ADD, a, b) == (a + b) & M

    @given(U64, U64)
    def test_sub_wraps(self, a, b):
        assert run_int_op(Op.SUB, a, b) == (a - b) & M

    @given(U64, U64)
    def test_imul_low_bits(self, a, b):
        assert run_int_op(Op.IMUL, a, b) == (a * b) & M

    @given(U64, U64)
    def test_bitwise(self, a, b):
        assert run_int_op(Op.AND, a, b) == a & b
        assert run_int_op(Op.OR, a, b) == a | b
        assert run_int_op(Op.XOR, a, b) == a ^ b


def _s(v):
    return v - 2**64 if v >= 2**63 else v


class TestSignedDivision:
    @given(I64, I64.filter(lambda v: v != 0))
    def test_idiv_truncates_toward_zero(self, a, b):
        got = _s(run_int_op(Op.IDIV, a & M, b & M))
        want = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            want = -want
        assert got == want

    @given(I64, I64.filter(lambda v: v != 0))
    def test_irem_sign_follows_dividend(self, a, b):
        got = _s(run_int_op(Op.IREM, a & M, b & M))
        want = abs(a) % abs(b)
        if a < 0:
            want = -want
        assert got == want

    def test_division_by_zero_traps(self):
        with pytest.raises(VmTrap, match="division by zero"):
            run_int_op(Op.IDIV, 1, 0)
        with pytest.raises(VmTrap, match="division by zero"):
            run_int_op(Op.IREM, 1, 0)


class TestShifts:
    @given(U64, st.integers(min_value=0, max_value=63))
    def test_shl(self, a, c):
        assert run_int_op(Op.SHL, a, c) == (a << c) & M

    @given(U64, st.integers(min_value=0, max_value=63))
    def test_shr_logical(self, a, c):
        assert run_int_op(Op.SHR, a, c) == a >> c

    @given(I64, st.integers(min_value=0, max_value=63))
    def test_sar_arithmetic(self, a, c):
        assert _s(run_int_op(Op.SAR, a & M, c)) == a >> c

    def test_shift_count_masked_to_six_bits(self):
        assert run_int_op(Op.SHL, 1, 64) == 1  # 64 & 63 == 0
        assert run_int_op(Op.SHR, 8, 65) == 4


class TestUnary:
    @given(U64)
    def test_not(self, a):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(0), Imm(a))
        builder.emit(Op.NOT, Reg(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).outputs[0][1] == a ^ M

    @given(U64)
    def test_neg_twos_complement(self, a):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(0), Imm(a))
        builder.emit(Op.NEG, Reg(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).outputs[0][1] == (-a) & M

    def test_inc_dec(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(0), Imm(M))
        builder.emit(Op.INC, Reg(0))  # wraps to 0
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.DEC, Reg(0))  # wraps back
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        outs = run_program(builder.link()).outputs
        assert outs[0][1] == 0 and outs[1][1] == M


class TestStack:
    def test_push_pop_lifo(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.PUSH, Imm(11))
        builder.emit(Op.PUSH, Imm(22))
        builder.emit(Op.POP, Reg(0))
        builder.emit(Op.POP, Reg(1))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.OUTI, Reg(1))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [22, 11]

    def test_pushx_preserves_both_lanes(self):
        from repro.isa import Xmm

        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(0xAAAA))
        builder.emit(Op.MOVQXR, Xmm(3), Reg(1))
        builder.emit(Op.PINSR, Xmm(3), Reg(1), Imm(1))
        builder.emit(Op.PUSHX, Xmm(3))
        builder.emit(Op.MOV, Reg(2), Imm(0))
        builder.emit(Op.MOVQXR, Xmm(3), Reg(2))
        builder.emit(Op.PINSR, Xmm(3), Reg(2), Imm(1))
        builder.emit(Op.POPX, Xmm(3))
        builder.emit(Op.MOVQRX, Reg(0), Xmm(3))
        builder.emit(Op.PEXTR, Reg(4), Xmm(3), Imm(1))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.OUTI, Reg(4))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [0xAAAA, 0xAAAA]

    def test_stack_underflow_traps(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.POP, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        with pytest.raises(VmTrap, match="underflow"):
            run_program(builder.link())

    def test_stack_overflow_traps(self):
        builder = AsmBuilder()
        builder.global_("guard", 1)
        builder.func("_start")
        builder.mark("loop")
        builder.emit(Op.PUSH, Imm(1))
        builder.emit(Op.JMP, LabelRef("loop"))
        builder.endfunc()
        with pytest.raises(VmTrap, match="overflow"):
            run_program(builder.link(), stack_words=64)


class TestMemoryOperands:
    def test_lea_computes_address(self):
        builder = AsmBuilder()
        builder.global_("arr", 10)
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(3))
        builder.emit(Op.LEA, Reg(0), Mem(base=1, index=1, scale=2, disp=1))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [3 + 6 + 1]

    def test_store_and_load(self):
        builder = AsmBuilder()
        addr = builder.global_("cell", 1)
        builder.func("_start")
        builder.emit(Op.MOV, Mem(disp=addr), Imm(99))
        builder.emit(Op.MOV, Reg(0), Mem(disp=addr))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [99]

    def test_out_of_bounds_read_traps(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(0), Mem(disp=10**9))
        builder.emit(Op.HALT)
        builder.endfunc()
        with pytest.raises(VmTrap, match="out of bounds"):
            run_program(builder.link())

    def test_negative_address_traps(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(-5))
        builder.emit(Op.MOV, Reg(0), Mem(base=1)),
        builder.emit(Op.HALT)
        builder.endfunc()
        with pytest.raises(VmTrap, match="out of bounds"):
            run_program(builder.link())
