"""Opcode-coverage conformance for the fused dispatch path.

Two guarantees, checked exhaustively over :data:`repro.isa.opcodes.Op`:

1. **Static coverage** — every opcode in the ISA is claimed by the fuser:
   either it has a straight-line template (``fuse._MEMBER_OPS``) or it is
   a run terminator (``fuse._TERMINATORS``).  A new opcode added without
   a decision here fails this test by construction.

2. **Dynamic conformance** — for every opcode, every signature
   alternative, and every operand-letter choice, a minimal program
   exercising that exact shape executes bit-identically on the fused and
   reference paths (same outputs, cycles, steps — or the same trap), and
   the shape actually lands inside a fused run, so the template is
   proven compiled and correct rather than silently falling back.

The only sanctioned fallbacks are *dynamic*, not per-opcode: collectives
at ``size > 1`` (they yield to the rank scheduler) and the rare operand
shapes whose emission raises ``Unfusable``; both degrade to the
reference closures, which tests/vm/test_fused_parity.py holds to the
same bit-identity contract.
"""

from itertools import product

import pytest

from repro.asm import AsmBuilder, LabelRef
from repro.isa import Imm, Mem, Op, Reg, Xmm
from repro.isa.opcodes import OPCODE_INFO
from repro.vm import VM
from repro.vm.errors import VmTrap
from repro.vm.fuse import _MEMBER_OPS, _TERMINATORS


def test_every_opcode_is_claimed_by_the_fuser():
    unclaimed = set(Op) - _MEMBER_OPS - _TERMINATORS
    assert not unclaimed, (
        f"opcodes with neither a fused template nor terminator handling: "
        f"{sorted(o.name for o in unclaimed)} — add a template to "
        f"repro.vm.fuse or classify the fallback here"
    )


def test_member_and_terminator_sets_are_disjoint():
    assert not (_MEMBER_OPS & _TERMINATORS)


_LETTER_OPERANDS = {
    "R": Reg(2),
    "I": Imm(1),  # valid PEXTR/PINSR lane and ALLRED reduction selector
    "M": Mem(disp=0),
    "X": Xmm(1),
}


def _member_shapes():
    """(opcode, operands) for every signature alternative and letter mix."""
    for op in sorted(_MEMBER_OPS):
        info = OPCODE_INFO[op]
        for sig in info.sigs:
            for letters in product(*sig):
                yield op, tuple(_LETTER_OPERANDS[ch] for ch in letters)


def _member_program(op, operands):
    builder = AsmBuilder()
    builder.global_("g", 4)
    builder.func("_start")
    if op is Op.HALT:
        # HALT ends a run, so it needs a member before it to reach the
        # MIN_RUN threshold; every other opcode gets the tail appended.
        builder.emit(Op.NOP)
        builder.emit(op, *operands)
    else:
        builder.emit(op, *operands)
        builder.emit(Op.NOP)
        builder.emit(Op.HALT)
    builder.endfunc()
    return builder.link()


def _terminator_program(op):
    builder = AsmBuilder()
    builder.func("_start")
    if op is Op.CALL:
        builder.emit(Op.NOP)
        builder.emit(Op.CALL, LabelRef("f"))
        builder.emit(Op.HALT)
        builder.endfunc()
        builder.func("f")
        builder.emit(Op.NOP)
        builder.emit(Op.RET)
        builder.endfunc()
    else:  # JMP and the conditional branches
        builder.emit(Op.CMP, Reg(0), Imm(0))
        builder.emit(op, LabelRef("done"))
        builder.mark("done")
        builder.emit(Op.HALT)
        builder.endfunc()
    return builder.link()


def _run_both(program):
    """(fused VM, reference VM, outcome) — outcome is a result or trap."""
    results = []
    vms = []
    for fused in (True, False):
        vm = VM(program, fused=fused, max_steps=10_000)
        vms.append(vm)
        try:
            results.append(("ok", vm.run()))
        except VmTrap as exc:
            results.append(("trap", (str(exc), exc.addr)))
    return vms[0], vms[1], results[0], results[1]


@pytest.mark.parametrize(
    "op,operands",
    list(_member_shapes()),
    ids=lambda v: v.name if isinstance(v, Op) else repr(v),
)
def test_member_shape_fuses_and_matches_reference(op, operands):
    program = _member_program(op, operands)
    fused_vm, ref_vm, got_f, got_r = _run_both(program)
    # The shape must be inside a fused run, not on a silent fallback.
    assert fused_vm._fcode is not None and fused_vm._fcode[0] is not None, (
        f"{op.name} {operands} did not compile into a fused run"
    )
    kind_f, payload_f = got_f
    kind_r, payload_r = got_r
    assert kind_f == kind_r, (op.name, operands, payload_f, payload_r)
    if kind_f == "ok":
        assert payload_f == payload_r, (op.name, operands)
    else:
        assert payload_f == payload_r, (op.name, operands)
    assert fused_vm.steps == ref_vm.steps
    assert fused_vm.cycles == ref_vm.cycles


@pytest.mark.parametrize(
    "op", sorted(_TERMINATORS - {Op.RET}), ids=lambda o: o.name
)
def test_terminator_closes_a_fused_run(op):
    program = _terminator_program(op)
    fused_vm, ref_vm, got_f, got_r = _run_both(program)
    assert fused_vm._fcode is not None and any(fused_vm._fcode), (
        f"{op.name} never closed a fused run"
    )
    assert got_f == got_r
    assert fused_vm.steps == ref_vm.steps
    assert fused_vm.cycles == ref_vm.cycles


def test_ret_closes_a_fused_run():
    # RET needs a frame on the stack: reach it through a call.
    program = _terminator_program(Op.CALL)
    fused_vm, ref_vm, got_f, got_r = _run_both(program)
    assert got_f == got_r == ("ok", got_f[1])
    assert fused_vm.steps == ref_vm.steps


def test_multirank_collectives_are_a_sanctioned_fallback():
    # With size > 1 a collective yields to the scheduler, so it must be
    # excluded from run membership; everything around it still fuses.
    builder = AsmBuilder()
    builder.func("_start")
    builder.emit(Op.MOV, Reg(0), Imm(1))
    builder.emit(Op.CVTSI2SD, Xmm(0), Reg(0))
    builder.emit(Op.ALLRED, Xmm(0), Imm(0))
    builder.emit(Op.OUTSD, Xmm(0))
    builder.emit(Op.HALT)
    builder.endfunc()
    program = builder.link()
    single = VM(program, size=1)
    assert single._fcode is not None and single._fcode[0] is not None
    multi = VM(program, rank=0, size=2)
    if multi._fcode is not None:
        idx = next(
            i for i, ins in enumerate(multi._instrs)
            if ins.opcode is Op.ALLRED
        )
        # The collective itself must stay on the per-instruction path so
        # its CollectiveYield escapes with an exact resume index.
        assert multi._fcode[idx] is None
