"""Floating-point semantics of the VM, checked against numpy references."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.asm import AsmBuilder
from repro.fpbits.ieee import (
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
)
from repro.isa import Imm, Mem, Op, Reg, Xmm
from repro.vm import run_program

finite = st.floats(allow_nan=False, allow_infinity=False)
f32s = st.floats(allow_nan=False, allow_infinity=False, width=32)

_HI = 0xFFFFFFFF00000000


def _xmm_binop(op, a_bits, b_bits, dst_hi=0x1234567800000000):
    """Run `op x0, x1` with the given low-lane patterns; returns
    (x0_low, x0_high_lane) so lane-preservation can be asserted."""
    builder = AsmBuilder()
    builder.func("_start")
    builder.emit(Op.MOV, Reg(1), Imm(a_bits))
    builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
    builder.emit(Op.MOV, Reg(2), Imm(dst_hi))
    builder.emit(Op.PINSR, Xmm(0), Reg(2), Imm(1))  # poison the high lane
    builder.emit(Op.MOV, Reg(3), Imm(b_bits))
    builder.emit(Op.MOVQXR, Xmm(1), Reg(3))
    builder.emit(op, Xmm(0), Xmm(1))
    builder.emit(Op.MOVQRX, Reg(0), Xmm(0))
    builder.emit(Op.PEXTR, Reg(4), Xmm(0), Imm(1))
    builder.emit(Op.OUTI, Reg(0))
    builder.emit(Op.OUTI, Reg(4))
    builder.emit(Op.HALT)
    builder.endfunc()
    outs = run_program(builder.link()).outputs
    return outs[0][1], outs[1][1]


class TestScalarDouble:
    @given(finite, finite)
    def test_addsd(self, a, b):
        low, _hi = _xmm_binop(Op.ADDSD, double_to_bits(a), double_to_bits(b))
        want = a + b
        got = bits_to_double(low)
        assert got == want or (got != got and want != want)

    @given(finite, finite)
    def test_divsd_matches_numpy(self, a, b):
        low, _ = _xmm_binop(Op.DIVSD, double_to_bits(a), double_to_bits(b))
        with np.errstate(all="ignore"):
            want = np.float64(a) / np.float64(b) if b != 0 else np.divide(a, b)
        got = bits_to_double(low)
        assert got == want or (got != got and want != want)

    def test_high_lane_preserved_by_scalar_ops(self):
        _, hi = _xmm_binop(Op.MULSD, double_to_bits(3.0), double_to_bits(4.0))
        assert hi == 0x1234567800000000

    def test_sqrtsd_reads_source_only(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(double_to_bits(16.0)))
        builder.emit(Op.MOVQXR, Xmm(1), Reg(1))
        builder.emit(Op.MOV, Reg(2), Imm(double_to_bits(-1.0)))  # dst garbage
        builder.emit(Op.MOVQXR, Xmm(0), Reg(2))
        builder.emit(Op.SQRTSD, Xmm(0), Xmm(1))
        builder.emit(Op.OUTSD, Xmm(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [4.0]


class TestScalarSingle:
    @given(f32s, f32s)
    def test_addss_only_touches_low_word(self, a, b):
        a_slot = 0x7FF4DEAD00000000 | single_to_bits(a)
        b_slot = 0x7FF4DEAD00000000 | single_to_bits(b)
        low, _ = _xmm_binop(Op.ADDSS, a_slot, b_slot)
        # flag in the high word of the lane must survive the operation
        assert low & _HI == 0x7FF4DEAD00000000
        got = bits_to_single(low & 0xFFFFFFFF)
        want = float(np.float32(a) + np.float32(b))
        assert got == want or (got != got and want != want)

    @given(f32s, f32s)
    def test_mulss_matches_numpy(self, a, b):
        low, _ = _xmm_binop(Op.MULSS, single_to_bits(a), single_to_bits(b))
        want = np.float32(a) * np.float32(b)
        got = bits_to_single(low & 0xFFFFFFFF)
        assert got == float(want) or (got != got and want != want)


class TestPacked:
    def test_addpd_operates_on_both_lanes(self):
        builder = AsmBuilder()
        base = builder.global_("v", 4, init=[
            double_to_bits(1.0), double_to_bits(2.0),
            double_to_bits(10.0), double_to_bits(20.0),
        ])
        builder.func("_start")
        builder.emit(Op.MOVAPD, Xmm(0), Mem(disp=base))
        builder.emit(Op.ADDPD, Xmm(0), Mem(disp=base + 2))
        builder.emit(Op.OUTSD, Xmm(0))
        builder.emit(Op.PEXTR, Reg(0), Xmm(0), Imm(1))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        result = run_program(builder.link())
        assert result.values()[0] == 11.0
        assert bits_to_double(result.outputs[1][1]) == 22.0

    def test_addps_clobbers_lane_high_words(self):
        # Packed single treats each 64-bit lane as two 32-bit elements —
        # the very reason snippets must re-fix flags in packed outputs.
        a = (single_to_bits(5.0) << 32) | single_to_bits(1.0)
        b = (single_to_bits(7.0) << 32) | single_to_bits(2.0)
        low, _ = _xmm_binop(Op.ADDPS, a, b)
        assert bits_to_single(low & 0xFFFFFFFF) == 3.0
        assert bits_to_single(low >> 32) == 12.0


class TestConversions:
    @given(st.integers(min_value=-(2**53), max_value=2**53))
    def test_cvtsi2sd_exact_in_range(self, v):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(v))
        builder.emit(Op.CVTSI2SD, Xmm(0), Reg(1))
        builder.emit(Op.OUTSD, Xmm(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [float(v)]

    @given(finite)
    def test_cvttsd2si_truncates(self, x):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(double_to_bits(x)))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.CVTTSD2SI, Reg(0), Xmm(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        got = run_program(builder.link()).outputs[0][1]
        if abs(x) < 2**63:
            want = int(x) & 0xFFFFFFFFFFFFFFFF
        else:
            want = 0x8000000000000000  # integer indefinite
        assert got == want

    def test_cvttsd2si_nan_gives_indefinite(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(0x7FF4DEAD00000000))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.CVTTSD2SI, Reg(0), Xmm(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).outputs[0][1] == 0x8000000000000000

    @given(finite)
    def test_cvtsd2ss_preserves_lane_upper_word(self, x):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(0xDEADBEEF00000000))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.MOV, Reg(2), Imm(double_to_bits(x)))
        builder.emit(Op.MOVQXR, Xmm(1), Reg(2))
        builder.emit(Op.CVTSD2SS, Xmm(0), Xmm(1))
        builder.emit(Op.MOVQRX, Reg(0), Xmm(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        got = run_program(builder.link()).outputs[0][1]
        assert got >> 32 == 0xDEADBEEF
        assert got & 0xFFFFFFFF == single_to_bits(x)

    @given(f32s)
    def test_cvtss2sd_exact(self, x):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(0x7FF4DEAD00000000 | single_to_bits(x)))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.CVTSS2SD, Xmm(0), Xmm(0))
        builder.emit(Op.OUTSD, Xmm(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [x]


class TestMoves:
    def test_movsd_store_load_roundtrip(self):
        builder = AsmBuilder()
        addr = builder.global_("cell", 1)
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(double_to_bits(2.5)))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.MOVSD, Mem(disp=addr), Xmm(0))
        builder.emit(Op.MOVSD, Xmm(1), Mem(disp=addr))
        builder.emit(Op.OUTSD, Xmm(1))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [2.5]

    def test_movss_store_preserves_cell_high_word(self):
        # A 4-byte store must leave the upper half of the 8-byte slot
        # intact — this is what lets the sentinel live in memory.
        builder = AsmBuilder()
        addr = builder.global_("cell", 1, init=[0x7FF4DEADFFFFFFFF])
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(single_to_bits(1.5)))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.MOVSS, Mem(disp=addr), Xmm(0))
        builder.emit(Op.MOV, Reg(0), Mem(disp=addr))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        got = run_program(builder.link()).outputs[0][1]
        assert got == 0x7FF4DEAD00000000 | single_to_bits(1.5)

    def test_movsd_reg_reg_copies_low_lane_only(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(double_to_bits(7.0)))
        builder.emit(Op.MOVQXR, Xmm(1), Reg(1))
        builder.emit(Op.MOV, Reg(2), Imm(0xBBBB))
        builder.emit(Op.PINSR, Xmm(0), Reg(2), Imm(1))
        builder.emit(Op.MOVSD, Xmm(0), Xmm(1))
        builder.emit(Op.PEXTR, Reg(0), Xmm(0), Imm(1))
        builder.emit(Op.OUTSD, Xmm(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        result = run_program(builder.link())
        assert result.values() == [7.0, 0xBBBB]


class TestCompare:
    @pytest.mark.parametrize(
        "a,b,jop,taken",
        [
            (1.0, 2.0, Op.JL, True),
            (2.0, 1.0, Op.JL, False),
            (2.0, 2.0, Op.JE, True),
            (2.0, 2.0, Op.JLE, True),
            (3.0, 2.0, Op.JG, True),
            (float("nan"), 1.0, Op.JP, True),
            (1.0, 1.0, Op.JP, False),
            (float("nan"), 1.0, Op.JL, False),  # unordered: lt clear
            (float("nan"), 1.0, Op.JG, False),  # JG requires ordered
        ],
    )
    def test_ucomisd_flag_combinations(self, a, b, jop, taken):
        from repro.asm import LabelRef

        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(1), Imm(double_to_bits(a)))
        builder.emit(Op.MOVQXR, Xmm(0), Reg(1))
        builder.emit(Op.MOV, Reg(2), Imm(double_to_bits(b)))
        builder.emit(Op.MOVQXR, Xmm(1), Reg(2))
        builder.emit(Op.UCOMISD, Xmm(0), Xmm(1))
        builder.emit(jop, LabelRef("yes"))
        builder.emit(Op.MOV, Reg(0), Imm(0))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.mark("yes")
        builder.emit(Op.MOV, Reg(0), Imm(1))
        builder.emit(Op.OUTI, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        assert run_program(builder.link()).values() == [1 if taken else 0]
