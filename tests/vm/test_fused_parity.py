"""Fused superinstruction dispatch: exact parity with the reference loop.

The fused path (:mod:`repro.vm.fuse`) replaces each straight-line run
with one generated closure.  Its contract is *bit- and cycle-identity*
with the per-instruction reference loop on every observable — outputs,
cycles, steps, trap messages, trap addresses — on every path, including
the awkward ones this file exists for: the step budget expiring in the
middle of a fused run, a fault on the last instruction of a fused pair,
and a collective yield resuming execution inside a specialized segment.

``VM(..., fused=False)`` is the reference; it is the exact loop the
fused path replaced (also reachable via ``REPRO_NO_FUSE=1``).
"""

import pytest

from repro.asm import AsmBuilder, LabelRef
from repro.compiler import CompileOptions, compile_source
from repro.config import Config, build_tree
from repro.instrument import InstrumentCache, instrument
from repro.isa import Imm, Mem, Op, Reg
from repro.mpi import MultiRankRunner
from repro.vm import VM, Machine
from repro.vm.errors import VmTimeout, VmTrap
from repro.workloads import make_nas


def _loop_program(n):
    builder = AsmBuilder()
    builder.func("_start")
    builder.emit(Op.MOV, Reg(0), Imm(0))
    builder.mark("top")
    builder.emit(Op.INC, Reg(0))
    builder.emit(Op.CMP, Reg(0), Imm(n))
    builder.emit(Op.JL, LabelRef("top"))
    builder.emit(Op.OUTI, Reg(0))
    builder.emit(Op.HALT)
    builder.endfunc()
    return builder.link()


def _pair(program, **kw):
    """(fused VM, reference VM) for the same program and parameters."""
    fused = VM(program, **kw)
    ref = VM(program, fused=False, **kw)
    assert fused._fcode is not None and any(fused._fcode), (
        "test is vacuous: the program produced no fused run"
    )
    assert ref._fcode is None
    return fused, ref


def _assert_same_trap(program, match, **kw):
    """Both paths trap with the identical message, address, steps, cycles."""
    fused, ref = _pair(program, **kw)
    with pytest.raises(VmTrap, match=match) as got_f:
        fused.run()
    with pytest.raises(VmTrap, match=match) as got_r:
        ref.run()
    assert str(got_f.value) == str(got_r.value)
    assert got_f.value.addr == got_r.value.addr
    assert fused.steps == ref.steps
    assert fused.cycles == ref.cycles
    assert fused.outputs == ref.outputs
    return got_f.value


class TestBudgetEdges:
    def test_budget_expiring_mid_run_every_alignment(self):
        # The loop body (inc+cmp+jl) is one fused run of 3; sweeping the
        # budget over several periods lands the expiry on every relative
        # position inside the run — including budgets smaller than the
        # run, which exercise the _fused_tail deopt.
        full = _loop_program(50)
        total = VM(full, fused=False).run().steps
        for budget in list(range(1, 16)) + [total - 1]:
            fused, ref = _pair(full, max_steps=budget)
            with pytest.raises(VmTimeout) as got_f:
                fused.run()
            with pytest.raises(VmTimeout) as got_r:
                ref.run()
            assert str(got_f.value) == str(got_r.value)
            assert fused.steps == ref.steps, f"budget={budget}"
            assert fused.cycles == ref.cycles, f"budget={budget}"

    def test_budget_exactly_sufficient(self):
        full = _loop_program(50)
        total = VM(full, fused=False).run().steps
        fused, ref = _pair(full, max_steps=total)
        assert fused.run() == ref.run()

    def test_zero_remaining_budget_still_charges_one_step(self):
        fused, ref = _pair(_loop_program(50), max_steps=0)
        with pytest.raises(VmTimeout):
            fused.run()
        with pytest.raises(VmTimeout):
            ref.run()
        assert fused.steps == ref.steps == 1


class TestTrapParity:
    def test_trap_on_last_instruction_of_fused_pair(self):
        # inc + ret fuse into one run of two; the terminator faults.
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.INC, Reg(0))
        builder.emit(Op.RET)
        builder.endfunc()
        trap = _assert_same_trap(builder.link(), "stack underflow on ret")
        assert trap.addr >= 0

    def test_trap_mid_run_charges_partial_cycles(self):
        # Third member of a four-instruction run faults: the fused run
        # must charge exactly the two completed instructions' cycles and
        # repay the unexecuted suffix to the step budget.
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(0), Imm(10**6))
        builder.emit(Op.INC, Reg(1))
        builder.emit(Op.MOV, Mem(base=0), Reg(1))
        builder.emit(Op.HALT)
        builder.endfunc()
        trap = _assert_same_trap(builder.link(), "write out of bounds")
        assert trap.addr >= 0

    def test_trap_on_first_instruction_of_run(self):
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.POP, Reg(0))
        builder.emit(Op.HALT)
        builder.endfunc()
        _assert_same_trap(builder.link(), "stack underflow")

    def test_division_by_zero_stays_addressless(self):
        # The reference _idiv helper raises a plain VmTrap with no text
        # address; the fused template must not start stamping one.
        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.MOV, Reg(0), Imm(5))
        builder.emit(Op.MOV, Reg(1), Imm(0))
        builder.emit(Op.IDIV, Reg(0), Reg(1))
        builder.emit(Op.HALT)
        builder.endfunc()
        trap = _assert_same_trap(builder.link(), "division by zero")
        assert trap.addr == -1


class TestResumeMidSegment:
    def test_resume_into_run_interior_single_steps_to_next_head(self):
        # Entering at the cmp (index 2) lands inside the inc+cmp+jl run:
        # the fused loop must single-step the reference closures until
        # dispatch reaches the next run head, with exact accounting.
        program = _loop_program(30)
        fused, ref = _pair(program)
        assert fused._fcode[2] is None, "expected a run-interior entry"
        assert fused.resume(2) and ref.resume(2)
        assert fused.outputs == ref.outputs
        assert fused.steps == ref.steps
        assert fused.cycles == ref.cycles

    def test_collective_yield_resumes_into_specialized_segment(self):
        # Multi-rank: every allreduce yields to the scheduler and resumes
        # at the next instruction, mid-block.  Fused and reference
        # runners must agree on every per-rank observable.
        src = """
        const N: i64 = 64;
        fn main() {
            var rank: i64 = mpi_rank();
            var size: i64 = mpi_size();
            var acc: real = 0.0;
            for i in 0 .. N {
                if i % size == rank {
                    acc = acc + 1.0 / real(i + 1);
                }
                acc = allreduce_sum(acc) / real(size);
            }
            out(acc);
        }
        """
        program = compile_source(src, CompileOptions())
        fused_runner = MultiRankRunner(program, 4)
        assert any(
            vm._fcode is not None and any(vm._fcode)
            for vm in fused_runner.vms
        ), "test is vacuous: no rank built a fused run"
        ref_runner = MultiRankRunner(program, 4)
        for vm in ref_runner.vms:
            vm._fcode = None  # force the reference loop
        got_f = fused_runner.run()
        got_r = ref_runner.run()
        assert got_f.values() == got_r.values()
        assert fused_runner.collectives == ref_runner.collectives
        for rank_f, rank_r in zip(got_f.per_rank, got_r.per_rank):
            assert rank_f.outputs == rank_r.outputs
            assert rank_f.cycles == rank_r.cycles
            assert rank_f.steps == rank_r.steps


class TestSegmentPartitionCache:
    def test_partition_cached_segments_stay_byte_identical(self):
        # The searcher's shape: one Machine, repeated instrumented builds
        # of one workload.  The second and later loads take the cached
        # partition path (template bytes -> run partition); results must
        # match a cold, unfused VM exactly.
        workload = make_nas("cg", "T")
        tree = build_tree(workload.program)
        cache = InstrumentCache(workload.program)
        machine = Machine(**workload.vm_params())
        params = workload.vm_params()
        for config in (Config.all_double(tree), Config.all_single(tree)):
            built = instrument(workload.program, config, cache=cache)
            for _ in range(2):  # second run rebinds through the partitions
                warm = machine.run(built.program, built.segments)
                ref = VM(built.program, fused=False, **params).run()
                assert warm.outputs == ref.outputs
                assert warm.cycles == ref.cycles
                assert warm.steps == ref.steps
        assert machine._cache is not None
        assert machine._cache._fuse_partitions, (
            "segment loads never populated the partition cache"
        )
        assert machine.fuse_cache_hits > 0
