"""Configuration viewer rendering."""

from repro.config import Config, Policy, build_tree
from repro.search import SearchEngine
from repro.viewer import render_config_tree, render_search_summary, render_source_view
from tests.conftest import compile_src

SRC = """
fn scale(x: real) -> real {
    return x * 0.5;
}
fn main() {
    var s: real = 0.0;
    for i in 0 .. 4 {
        s = s + scale(real(i));
    }
    out(s);
}
"""


class TestTreeView:
    def test_contains_structure_and_flags(self):
        program = compile_src(SRC)
        tree = build_tree(program)
        config = Config(tree)
        fn = tree.nodes_at("function")[0]
        config.set(fn.node_id, Policy.SINGLE)
        text = render_config_tree(config)
        assert "candidates:" in text
        assert fn.node_id in text
        assert "\n  s " in text  # the explicit flag column
        assert "mulsd" in text or "addsd" in text

    def test_profile_weights_shown(self):
        from repro.vm import run_program

        program = compile_src(SRC)
        tree = build_tree(program)
        profile = run_program(program, profile=True).exec_counts
        text = render_config_tree(Config(tree), profile=profile)
        assert "% execs" in text

    def test_max_instructions_caps_output(self):
        program = compile_src(SRC)
        tree = build_tree(program)
        text = render_config_tree(Config(tree), max_instructions=1)
        assert text.count("INSN") == 1


class TestSourceView:
    def test_lines_annotated(self):
        program = compile_src(SRC)
        tree = build_tree(program)
        config = Config.all_single(tree)
        text = render_source_view(config, SRC, module_label="main")
        assert "; module main" in text
        # the multiply line carries a single-precision marker
        marked = [l for l in text.splitlines() if "x * 0.5" in l]
        assert marked and "s]" in marked[0]

    def test_unannotated_lines_blank_margin(self):
        program = compile_src(SRC)
        tree = build_tree(program)
        text = render_source_view(Config(tree), SRC)
        blank = [l for l in text.splitlines() if "fn main" in l]
        assert blank and blank[0].startswith(" " * 8)


class TestSearchSummary:
    def test_summary_includes_history(self):
        from repro.vm import outputs_close, run_program

        class W:
            name = "view"
            program = compile_src(SRC)

            def run(self, program=None):
                return run_program(program if program is not None else self.program)

            def verify(self, result):
                return outputs_close(
                    result.values(), run_program(self.program).values(), rel_tol=1e-5
                )

            def profile(self):
                return run_program(self.program, profile=True).exec_counts

        result = SearchEngine(W()).run()
        text = render_search_summary(result)
        assert "configurations tested" in text
        assert "static  replaced" in text
        assert "history:" in text


class TestMarkdownReport:
    def _result(self, refine=False):
        from repro.search import SearchEngine, SearchOptions
        from repro.workloads import make_workload

        workload = make_workload("amg", "S")
        result = SearchEngine(workload, SearchOptions(refine=refine)).run()
        return workload, result

    def test_report_structure(self):
        from repro.viewer import render_markdown_report

        workload, result = self._result()
        report = render_markdown_report(result, workload)
        assert report.startswith("# Mixed-precision analysis: amg.S")
        assert "## Per-function breakdown" in report
        assert "## Search history" in report
        assert "## Recommended configuration" in report
        assert "smooth()" in report
        assert "MODL01" in report

    def test_report_without_workload_profile(self):
        from repro.viewer import render_markdown_report

        _workload, result = self._result()
        report = render_markdown_report(result)
        assert "execution share" in report  # column exists, weights zero

    def test_report_states_verification(self):
        from repro.viewer import render_markdown_report

        workload, result = self._result()
        assert "**pass**" in render_markdown_report(result, workload)
