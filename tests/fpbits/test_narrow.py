"""Property tests for the bfloat16/binary16 codecs and width sentinels.

The contract the lattice rests on: every 16-bit pattern survives
decode → encode bit-exactly (NaNs stay NaN), encoding rounds to nearest
even, and the three per-width sentinels never collide — a slot's high
word identifies its width unambiguously.
"""

from __future__ import annotations

import math
import struct

from hypothesis import given, strategies as st

from repro.fpbits import ieee, narrow, replace
from repro.fpbits.narrow import (
    bf16_to_bits,
    bits_to_bf16,
    bits_to_f16,
    f16_to_bits,
    is_nan_bits_bf16,
    is_nan_bits_f16,
)

bits16 = st.integers(min_value=0, max_value=0xFFFF)
finite_doubles = st.floats(allow_nan=False, allow_infinity=False)


class TestBf16Codec:
    @given(bits16)
    def test_decode_encode_roundtrip(self, bits):
        value = bits_to_bf16(bits)
        back = bf16_to_bits(value)
        if is_nan_bits_bf16(bits):
            # NaN payloads may be quieted in transit but stay NaN.
            assert is_nan_bits_bf16(back)
        else:
            assert back == bits

    def test_roundtrip_exhaustive_non_nan(self):
        # 2^16 patterns is small enough to sweep outright.
        for bits in range(0x10000):
            if is_nan_bits_bf16(bits):
                continue
            assert bf16_to_bits(bits_to_bf16(bits)) == bits

    def test_decode_is_exact_shift(self):
        # bfloat16 shares binary32's exponent: decode must be lossless.
        assert bits_to_bf16(0x3FC0) == 1.5
        assert bits_to_bf16(0x0001) == ieee.bits_to_single(0x00010000)

    @given(finite_doubles)
    def test_encode_rounds_to_nearest(self, x):
        got = bits_to_bf16(bf16_to_bits(x))
        if math.isinf(got):
            return  # overflowed bf16's (huge) range
        # The result is one of the two bracketing bf16 values, and the
        # error is at most half a ulp of the wider bracket.
        ulp = max(abs(got), 2.0**-126) * 2.0**-7
        assert abs(got - x) <= ulp / 2 or got == x

    def test_encode_ties_to_even(self):
        # Halfway between 0x3F80 (1.0) and 0x3F81 (1.0078125): tie goes
        # to the even (low bit clear) pattern.
        tie = (bits_to_bf16(0x3F80) + bits_to_bf16(0x3F81)) / 2
        assert bf16_to_bits(tie) == 0x3F80
        tie2 = (bits_to_bf16(0x3F81) + bits_to_bf16(0x3F82)) / 2
        assert bf16_to_bits(tie2) == 0x3F82

    def test_nan_encodes_quiet_never_infinity(self):
        # A signaling-NaN payload whose top bits truncate away must not
        # collapse to the infinity pattern 0x7F80.
        snan = ieee.bits_to_double(0x7FF0000000000001)
        bits = bf16_to_bits(snan)
        assert is_nan_bits_bf16(bits)
        assert bits != 0x7F80

    def test_subnormals_roundtrip(self):
        for bits in (0x0001, 0x007F, 0x8001):  # smallest, largest, signed
            assert bf16_to_bits(bits_to_bf16(bits)) == bits


class TestF16Codec:
    @given(bits16)
    def test_decode_encode_roundtrip(self, bits):
        value = bits_to_f16(bits)
        back = f16_to_bits(value)
        if is_nan_bits_f16(bits):
            assert is_nan_bits_f16(back)
        else:
            assert back == bits

    def test_roundtrip_exhaustive_non_nan(self):
        for bits in range(0x10000):
            if is_nan_bits_f16(bits):
                continue
            assert f16_to_bits(bits_to_f16(bits)) == bits

    def test_known_values(self):
        assert bits_to_f16(0x3C00) == 1.0
        assert bits_to_f16(0x7BFF) == 65504.0  # max finite
        assert bits_to_f16(0x0400) == 2.0**-14  # min normal
        assert bits_to_f16(0x0001) == 2.0**-24  # min subnormal

    def test_overflow_is_signed_infinity(self):
        # struct.pack would raise OverflowError; the codec must follow
        # the cvtsd2ss convention instead.
        assert f16_to_bits(1e6) == 0x7C00
        assert f16_to_bits(-1e6) == 0xFC00
        assert f16_to_bits(65504.0) == 0x7BFF

    @given(st.floats(min_value=-65504.0, max_value=65504.0,
                     allow_nan=False))
    def test_encode_matches_struct_rne(self, x):
        # In-range values must agree with CPython's binary16 packing
        # (round-to-nearest-even, subnormals included).
        want = struct.unpack("<H", struct.pack("<e", x))[0]
        assert f16_to_bits(x) == want

    def test_subnormals_roundtrip(self):
        for bits in (0x0001, 0x03FF, 0x8001):
            assert f16_to_bits(bits_to_f16(bits)) == bits


class TestSentinels:
    def test_three_distinct_sentinels(self):
        sentinels = {
            replace.REPLACED_FLAG,
            replace.REPLACED_FLAG_BF16,
            replace.REPLACED_FLAG_F16,
        }
        assert len(sentinels) == 3
        assert replace.REPLACED_FLAG == 0x7FF4DEAD
        assert replace.REPLACED_FLAG_BF16 == 0x7FF4BEEF
        assert replace.REPLACED_FLAG_F16 == 0x7FF4FEED

    def test_all_sentinels_are_nan_high_words(self):
        # Every narrowed slot must read as NaN to an un-instrumented
        # double consumer, whatever its low word holds.
        for sentinel in (replace.REPLACED_FLAG_BF16, replace.REPLACED_FLAG_F16):
            slot = ieee.bits_to_double(sentinel << 32)
            assert slot != slot
            # 0x7FF4 prefix: same NaN family as the f32 flag.
            assert sentinel >> 16 == 0x7FF4

    @given(bits16)
    def test_narrow_slots_never_collide_with_f32_flag(self, low):
        for width in ("bf16", "f16"):
            slot = replace.make_replaced_at(width, low)
            assert not replace.is_replaced(slot)
            assert replace.replaced_width(slot) == width

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_f32_slots_report_their_width(self, sbits):
        slot = replace.make_replaced(sbits)
        assert replace.replaced_width(slot) == "f32"
        assert replace.is_replaced_at(slot, "f32")


class TestWidthGenericReplace:
    @given(finite_doubles, st.sampled_from(["f32", "bf16", "f16"]))
    def test_downcast_upcast_roundtrip(self, x, width):
        slot = replace.downcast_in_place_at(ieee.double_to_bits(x), width)
        assert replace.replaced_width(slot) == width
        got = ieee.bits_to_double(replace.upcast_in_place_any(slot))
        _sentinel, encode, decode = replace.WIDTH_CODECS[width]
        want = decode(encode(x))
        assert got == want or (got != got and want != want)

    @given(finite_doubles, st.sampled_from(["f32", "bf16", "f16"]))
    def test_downcast_idempotent(self, x, width):
        slot = replace.downcast_in_place_at(ieee.double_to_bits(x), width)
        assert replace.downcast_in_place_at(slot, width) == slot

    @given(bits16)
    def test_renarrowing_never_stacks_sentinels(self, low):
        # bf16 slot re-narrowed to f16 decodes through its own codec
        # first; the result is a clean f16 slot.
        slot = replace.make_replaced_at("bf16", low)
        again = replace.downcast_in_place_at(slot, "f16")
        assert replace.replaced_width(again) == "f16"
        if not is_nan_bits_bf16(low):
            assert (again & 0xFFFF) == f16_to_bits(bits_to_bf16(low))

    def test_upcast_any_is_identity_on_plain_doubles(self):
        bits = ieee.double_to_bits(math.pi)
        assert replace.upcast_in_place_any(bits) == bits

    def test_codecs_cover_narrow_lattice(self):
        from repro.lattice import FULL_LATTICE

        for width in FULL_LATTICE.narrow_widths:
            assert width.name in replace.WIDTH_CODECS
            assert replace.WIDTH_CODECS[width.name][0] == width.sentinel


class TestNarrowArithmetic:
    @given(bits16, bits16)
    def test_add_matches_decode_compute_encode(self, a, b):
        assert narrow.bf16_add(a, b) == bf16_to_bits(
            bits_to_bf16(a) + bits_to_bf16(b)
        )
        assert narrow.f16_add(a, b) == f16_to_bits(
            bits_to_f16(a) + bits_to_f16(b)
        )

    def test_div_by_zero_is_ieee(self):
        one_h, zero_h = f16_to_bits(1.0), f16_to_bits(0.0)
        assert bits_to_f16(narrow.f16_div(one_h, zero_h)) == math.inf
        assert is_nan_bits_f16(narrow.f16_div(zero_h, zero_h))
        one_b, zero_b = bf16_to_bits(1.0), bf16_to_bits(0.0)
        assert bits_to_bf16(narrow.bf16_div(one_b, zero_b)) == math.inf
        assert is_nan_bits_bf16(narrow.bf16_div(zero_b, zero_b))

    def test_sqrt_of_negative_is_nan(self):
        assert is_nan_bits_bf16(narrow.bf16_sqrt(bf16_to_bits(-1.0)))
        assert is_nan_bits_f16(narrow.f16_sqrt(f16_to_bits(-1.0)))

    @given(bits16)
    def test_neg_and_abs_are_sign_ops(self, a):
        assert narrow.bf16_neg(narrow.bf16_neg(a)) == a
        assert narrow.f16_abs(a) == a & 0x7FFF
