"""Bit-level IEEE helpers: encode/decode, arithmetic, edge cases."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fpbits import ieee


finite_doubles = st.floats(allow_nan=False, allow_infinity=False)
any_doubles = st.floats(allow_nan=True, allow_infinity=True)
finite_singles = st.floats(
    allow_nan=False, allow_infinity=False, width=32, allow_subnormal=True
)


class TestConversions:
    def test_double_roundtrip_one(self):
        assert ieee.bits_to_double(0x3FF0000000000000) == 1.0
        assert ieee.double_to_bits(1.0) == 0x3FF0000000000000

    def test_double_roundtrip_negative_zero(self):
        bits = ieee.double_to_bits(-0.0)
        assert bits == 0x8000000000000000
        assert math.copysign(1.0, ieee.bits_to_double(bits)) == -1.0

    @given(finite_doubles)
    def test_double_bits_roundtrip(self, x):
        assert ieee.bits_to_double(ieee.double_to_bits(x)) == x

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_bits_double_bits_roundtrip(self, bits):
        x = ieee.bits_to_double(bits)
        if x == x:  # NaN payloads may not round-trip through pack
            assert ieee.double_to_bits(x) == bits or x != x

    @given(finite_singles)
    def test_single_bits_roundtrip(self, x):
        assert ieee.bits_to_single(ieee.single_to_bits(x)) == x

    def test_single_overflow_is_inf(self):
        assert ieee.bits_to_single(ieee.single_to_bits(1e300)) == math.inf
        assert ieee.bits_to_single(ieee.single_to_bits(-1e300)) == -math.inf

    def test_single_rounding_matches_numpy(self):
        for x in (0.1, 1.0 / 3.0, 1e-40, math.pi, 2.0**-149, 1.0000000596046448):
            expected = struct.unpack("<I", np.float32(x).tobytes())[0]
            assert ieee.single_to_bits(x) == expected


class TestNanPredicates:
    def test_canonical_nan64(self):
        assert ieee.is_nan_bits64(ieee.double_to_bits(math.nan))

    def test_inf_is_not_nan(self):
        assert not ieee.is_nan_bits64(ieee.double_to_bits(math.inf))
        assert not ieee.is_nan_bits32(0x7F800000)

    def test_replacement_sentinel_is_nan_in_both_widths(self):
        # The whole design hinges on this property.
        assert ieee.is_nan_bits64(0x7FF4DEAD00000000)
        assert ieee.is_nan_bits32(0x7FF4DEAD)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_nan32_agrees_with_float(self, bits):
        value = ieee.bits_to_single(bits)
        assert ieee.is_nan_bits32(bits) == (value != value)


class TestDoubleArithmetic:
    @given(finite_doubles, finite_doubles)
    def test_add_matches_host(self, a, b):
        got = ieee.bits_to_double(
            ieee.double_add(ieee.double_to_bits(a), ieee.double_to_bits(b))
        )
        want = a + b
        assert got == want or (got != got and want != want)

    @given(finite_doubles, finite_doubles)
    def test_mul_matches_host(self, a, b):
        got = ieee.bits_to_double(
            ieee.double_mul(ieee.double_to_bits(a), ieee.double_to_bits(b))
        )
        want = a * b
        assert got == want or (got != got and want != want)

    def test_div_by_zero_gives_inf(self):
        one = ieee.double_to_bits(1.0)
        zero = ieee.double_to_bits(0.0)
        assert ieee.bits_to_double(ieee.double_div(one, zero)) == math.inf
        neg = ieee.double_to_bits(-1.0)
        assert ieee.bits_to_double(ieee.double_div(neg, zero)) == -math.inf

    def test_zero_div_zero_is_nan(self):
        zero = ieee.double_to_bits(0.0)
        assert ieee.is_nan_bits64(ieee.double_div(zero, zero))

    def test_sqrt_negative_is_nan(self):
        assert ieee.is_nan_bits64(ieee.double_sqrt(ieee.double_to_bits(-4.0)))

    def test_sqrt_positive(self):
        assert ieee.bits_to_double(ieee.double_sqrt(ieee.double_to_bits(9.0))) == 3.0

    def test_neg_flips_sign_only(self):
        bits = ieee.double_to_bits(5.5)
        assert ieee.bits_to_double(ieee.double_neg(bits)) == -5.5
        nan = 0x7FF4DEAD00000000
        assert ieee.double_neg(nan) == 0xFFF4DEAD00000000

    def test_abs_clears_sign(self):
        assert ieee.bits_to_double(ieee.double_abs(ieee.double_to_bits(-2.5))) == 2.5

    def test_minsd_semantics_nan_returns_second(self):
        nan = ieee.double_to_bits(math.nan)
        two = ieee.double_to_bits(2.0)
        assert ieee.double_min(nan, two) == two
        assert ieee.double_min(two, nan) == nan

    @given(finite_doubles, finite_doubles)
    def test_min_max_ordering(self, a, b):
        bits_a, bits_b = ieee.double_to_bits(a), ieee.double_to_bits(b)
        lo = ieee.bits_to_double(ieee.double_min(bits_a, bits_b))
        hi = ieee.bits_to_double(ieee.double_max(bits_a, bits_b))
        assert lo <= hi


class TestSingleArithmetic:
    @given(finite_singles, finite_singles)
    def test_add_matches_numpy_float32(self, a, b):
        got = ieee.single_add(ieee.single_to_bits(a), ieee.single_to_bits(b))
        want = np.float32(a) + np.float32(b)
        want_bits = struct.unpack("<I", np.float32(want).tobytes())[0]
        if want == want:
            assert got == want_bits
        else:
            assert ieee.is_nan_bits32(got)

    @given(finite_singles, finite_singles)
    def test_mul_matches_numpy_float32(self, a, b):
        got = ieee.single_mul(ieee.single_to_bits(a), ieee.single_to_bits(b))
        want = np.float32(a) * np.float32(b)
        if want == want:
            assert got == struct.unpack("<I", np.float32(want).tobytes())[0]
        else:
            assert ieee.is_nan_bits32(got)

    @given(finite_singles, finite_singles)
    def test_div_matches_numpy_float32(self, a, b):
        with np.errstate(all="ignore"):
            want = np.divide(np.float32(a), np.float32(b), dtype=np.float32)
        got = ieee.single_div(ieee.single_to_bits(a), ieee.single_to_bits(b))
        if want == want:
            assert got == struct.unpack("<I", np.float32(want).tobytes())[0]
        else:
            assert ieee.is_nan_bits32(got)

    @given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False, width=32))
    def test_sqrt_matches_numpy_float32(self, a):
        got = ieee.single_sqrt(ieee.single_to_bits(a))
        want = np.sqrt(np.float32(a), dtype=np.float32)
        assert got == struct.unpack("<I", np.float32(want).tobytes())[0]

    def test_single_nan_propagation(self):
        nan32 = 0x7FC00000
        one = ieee.single_to_bits(1.0)
        assert ieee.is_nan_bits32(ieee.single_add(nan32, one))
        assert ieee.is_nan_bits32(ieee.single_mul(nan32, one))


class TestTranscendentals:
    def test_double_sin_cos_identity(self):
        x = ieee.double_to_bits(0.7)
        s = ieee.bits_to_double(ieee.double_sin(x))
        c = ieee.bits_to_double(ieee.double_cos(x))
        assert abs(s * s + c * c - 1.0) < 1e-15

    def test_double_exp_log_roundtrip(self):
        x = ieee.double_to_bits(3.25)
        y = ieee.double_log(ieee.double_exp(x))
        assert abs(ieee.bits_to_double(y) - 3.25) < 1e-14

    def test_log_of_negative_is_nan(self):
        assert ieee.is_nan_bits64(ieee.double_log(ieee.double_to_bits(-1.0)))

    def test_log_of_zero_is_neg_inf(self):
        assert ieee.bits_to_double(ieee.double_log(0)) == -math.inf

    def test_exp_overflow_is_inf(self):
        assert ieee.bits_to_double(ieee.double_exp(ieee.double_to_bits(1e4))) == math.inf

    def test_sin_of_inf_is_nan(self):
        assert ieee.is_nan_bits64(ieee.double_sin(ieee.double_to_bits(math.inf)))

    def test_single_variants_round_to_single(self):
        x = ieee.single_to_bits(0.5)
        got = ieee.single_exp(x)
        assert got == ieee.single_to_bits(math.exp(0.5))
