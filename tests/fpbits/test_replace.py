"""The in-place replacement scheme (sentinel flagging, down/upcast)."""

import math

from hypothesis import given, strategies as st

from repro.fpbits import ieee, replace


finite_doubles = st.floats(allow_nan=False, allow_infinity=False)
f32_representable = st.floats(
    allow_nan=False, allow_infinity=False, width=32, allow_subnormal=True
)


class TestSentinel:
    def test_flag_value(self):
        # 0x7FF4 = NaN, 0xDEAD = human-readable (paper footnote 1).
        assert replace.REPLACED_FLAG == 0x7FF4DEAD
        assert replace.REPLACED_FLAG_SHIFTED == 0x7FF4DEAD00000000

    def test_is_replaced_detects_flag(self):
        assert replace.is_replaced(0x7FF4DEAD00000000)
        assert replace.is_replaced(0x7FF4DEADFFFFFFFF)
        assert not replace.is_replaced(0x7FF4DEAE00000000)
        assert not replace.is_replaced(ieee.double_to_bits(1.0))

    def test_flagged_slot_is_nan_as_double(self):
        # Un-instrumented consumers see NaN, never a silently-wrong value.
        bits = replace.make_replaced(ieee.single_to_bits(3.5))
        assert ieee.bits_to_double(bits) != ieee.bits_to_double(bits)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_make_replaced_roundtrip(self, sbits):
        slot = replace.make_replaced(sbits)
        assert replace.is_replaced(slot)
        assert replace.replaced_single_bits(slot) == sbits


class TestDowncast:
    @given(finite_doubles)
    def test_downcast_rounds_to_single(self, x):
        slot = replace.downcast_in_place(ieee.double_to_bits(x))
        assert replace.is_replaced(slot)
        got = ieee.bits_to_single(replace.replaced_single_bits(slot))
        want = ieee.bits_to_single(ieee.single_to_bits(x))
        assert got == want or (got != got and want != want)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_downcast_idempotent(self, sbits):
        slot = replace.make_replaced(sbits)
        assert replace.downcast_in_place(slot) == slot


class TestUpcast:
    @given(f32_representable)
    def test_upcast_recovers_exact_value(self, x):
        slot = replace.make_replaced(ieee.single_to_bits(x))
        bits = replace.upcast_in_place(slot)
        assert ieee.bits_to_double(bits) == x

    @given(finite_doubles)
    def test_upcast_identity_on_plain_doubles(self, x):
        bits = ieee.double_to_bits(x)
        assert replace.upcast_in_place(bits) == bits

    @given(f32_representable)
    def test_down_then_up_equals_single_rounding(self, x):
        # f32-representable values survive the round trip exactly.
        bits = ieee.double_to_bits(x)
        assert ieee.bits_to_double(
            replace.upcast_in_place(replace.downcast_in_place(bits))
        ) == x

    def test_down_up_loses_precision_for_general_doubles(self):
        bits = ieee.double_to_bits(0.1)
        back = replace.upcast_in_place(replace.downcast_in_place(bits))
        assert back != bits
        assert abs(ieee.bits_to_double(back) - 0.1) < 1e-7


class TestOperandReads:
    def test_read_as_double_transparent(self):
        assert replace.read_operand_as_double(ieee.double_to_bits(2.5)) == 2.5
        slot = replace.make_replaced(ieee.single_to_bits(2.5))
        assert replace.read_operand_as_double(slot) == 2.5

    @given(finite_doubles)
    def test_read_as_single_rounds_unflagged(self, x):
        got = replace.read_operand_as_single(ieee.double_to_bits(x))
        assert got == ieee.single_to_bits(x)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_read_as_single_passthrough_flagged(self, sbits):
        assert replace.read_operand_as_single(replace.make_replaced(sbits)) == sbits

    def test_nan_collision_is_the_documented_caveat(self):
        # A legitimate double that happens to have the sentinel pattern in
        # its high word is indistinguishable from a replaced value; both
        # are NaNs.  Document-by-test.
        collision = 0x7FF4DEAD12345678
        assert replace.is_replaced(collision)
        assert math.isnan(ieee.bits_to_double(collision))
