"""Assembler (builder + text) and disassembler."""

import pytest

from repro.asm import AsmBuilder, AsmError, LabelRef, assemble_text, disassemble_program
from repro.isa import Imm, Mem, Op, Reg, Xmm
from repro.vm import run_program


class TestBuilder:
    def test_minimal_program(self):
        b = AsmBuilder("t")
        b.func("_start")
        b.emit(Op.MOV, Reg(0), Imm(7))
        b.emit(Op.OUTI, Reg(0))
        b.emit(Op.HALT)
        b.endfunc()
        program = b.link()
        assert run_program(program).values() == [7]

    def test_local_labels_resolve(self):
        b = AsmBuilder()
        b.func("_start")
        b.emit(Op.MOV, Reg(0), Imm(0))
        b.mark("loop")
        b.emit(Op.INC, Reg(0))
        b.emit(Op.CMP, Reg(0), Imm(5))
        b.emit(Op.JL, LabelRef("loop"))
        b.emit(Op.OUTI, Reg(0))
        b.emit(Op.HALT)
        b.endfunc()
        assert run_program(b.link()).values() == [5]

    def test_function_call_resolution(self):
        b = AsmBuilder()
        b.func("_start")
        b.emit(Op.CALL, LabelRef("leaf"))
        b.emit(Op.OUTI, Reg(0))
        b.emit(Op.HALT)
        b.endfunc()
        b.func("leaf")
        b.emit(Op.MOV, Reg(0), Imm(42))
        b.emit(Op.RET)
        b.endfunc()
        assert run_program(b.link()).values() == [42]

    def test_globals_allocated_sequentially(self):
        b = AsmBuilder()
        a1 = b.global_("a", 4)
        a2 = b.global_("b", 2, init=[1, 2])
        assert a1 == 0 and a2 == 4
        b.func("_start")
        b.emit(Op.MOV, Reg(0), Mem(disp=a2 + 1))
        b.emit(Op.OUTI, Reg(0))
        b.emit(Op.HALT)
        b.endfunc()
        assert run_program(b.link()).values() == [2]

    def test_undefined_label_raises(self):
        b = AsmBuilder()
        b.func("_start")
        b.emit(Op.JMP, LabelRef("nowhere"))
        b.endfunc()
        with pytest.raises(AsmError, match="undefined label"):
            b.link()

    def test_duplicate_label_raises(self):
        b = AsmBuilder()
        b.func("_start")
        b.mark("x")
        b.emit(Op.NOP)
        b.mark("x")
        b.emit(Op.HALT)
        b.endfunc()
        with pytest.raises(AsmError, match="duplicate label"):
            b.link()

    def test_duplicate_function_raises(self):
        b = AsmBuilder()
        b.func("f")
        b.emit(Op.RET)
        b.endfunc()
        with pytest.raises(AsmError, match="duplicate function"):
            b.func("f")

    def test_empty_function_raises(self):
        b = AsmBuilder()
        b.func("f")
        with pytest.raises(AsmError, match="empty"):
            b.endfunc()

    def test_emit_outside_function_raises(self):
        b = AsmBuilder()
        with pytest.raises(AsmError):
            b.emit(Op.NOP)

    def test_missing_entry_raises(self):
        b = AsmBuilder()
        b.func("not_start")
        b.emit(Op.HALT)
        b.endfunc()
        with pytest.raises(AsmError, match="entry"):
            b.link()

    def test_labels_scoped_per_function(self):
        b = AsmBuilder()
        for name in ("_start", "other"):
            b.func(name)
            b.mark("here")
            b.emit(Op.NOP)
            b.emit(Op.HALT if name == "_start" else Op.RET)
            b.endfunc()
        b.link()  # no duplicate-label error

    def test_module_attribution(self):
        b = AsmBuilder()
        b.module("alpha")
        b.func("_start")
        b.emit(Op.HALT)
        b.endfunc()
        b.module("beta")
        b.func("g")
        b.emit(Op.RET)
        b.endfunc()
        program = b.link()
        assert program.functions[0].module == "alpha"
        assert program.functions[1].module == "beta"
        assert program.modules == ["alpha", "beta"]


SAMPLE = """
.global vec 3 0x3ff0000000000000 0x4000000000000000 0x4008000000000000
.entry _start
.func _start
    movsd %x0, [vec]
    addsd %x0, [vec+1]
    addsd %x0, [vec+2]    ; 1+2+3
    outsd %x0
    mov %r1, $d:0.5
    halt
.endfunc
"""


class TestTextAssembler:
    def test_sample_runs(self):
        program = assemble_text(SAMPLE)
        assert run_program(program).values() == [6.0]

    def test_float_immediates(self):
        program = assemble_text(
            """
.func _start
    mov %r1, $d:1.5
    movqxr %x0, %r1
    outsd %x0
    mov %r2, $s:1.5
    movqxr %x1, %r2
    outss %x1
    halt
.endfunc
"""
        )
        assert run_program(program).values() == [1.5, 1.5]

    def test_memory_operand_forms(self):
        program = assemble_text(
            """
.global data 4 10 20 30 40
.func _start
    mov %r1, $1
    mov %r0, 1(%r1)          ; data[2] = 30
    outi %r0
    mov %r2, $2
    mov %r0, (%r1,%r2)       ; wait: base r1=1 + index r2=2 -> data[3]
    outi %r0
    mov %r0, 0(%r1,%r2,1)
    outi %r0
    halt
.endfunc
"""
        )
        assert run_program(program).values() == [30, 40, 40]

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble_text(".func _start\n    bogus %r0\n.endfunc")

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble_text(".func _start\n    mov %r99, $1\n.endfunc")

    def test_comments_and_blank_lines(self):
        program = assemble_text(
            "\n; leading comment\n.func _start\n  # python-style\n    halt\n.endfunc\n"
        )
        assert run_program(program).steps == 1


class TestDisassembler:
    def test_roundtrip_through_listing(self):
        program = assemble_text(SAMPLE)
        listing = disassemble_program(program)
        assert "addsd" in listing
        assert ".func _start" in listing
        assert "block 0" in listing

    def test_listing_shows_modules(self):
        program = assemble_text(".module mymod\n.func _start\n    halt\n.endfunc")
        assert ".module mymod" in disassemble_program(program)
