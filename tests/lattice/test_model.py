"""The precision lattice model: widths, ordering rules, identities."""

from __future__ import annotations

import pytest

from repro.config.model import Policy
from repro.fpbits.replace import (
    REPLACED_FLAG,
    REPLACED_FLAG_BF16,
    REPLACED_FLAG_F16,
)
from repro.lattice import (
    BF16,
    BINARY_LATTICE,
    F16,
    F32,
    F64,
    FULL_LATTICE,
    Lattice,
    LatticeError,
    Width,
    fits_width,
    parse_lattice,
)


class TestWidth:
    def test_canonical_formats(self):
        assert (F64.exp_bits, F64.man_bits, F64.bits) == (11, 52, 64)
        assert (F32.exp_bits, F32.man_bits, F32.bits) == (8, 23, 32)
        assert (BF16.exp_bits, BF16.man_bits, BF16.bits) == (8, 7, 16)
        assert (F16.exp_bits, F16.man_bits, F16.bits) == (5, 10, 16)

    def test_sentinels_match_replace_module(self):
        assert F64.sentinel is None
        assert F32.sentinel == REPLACED_FLAG
        assert BF16.sentinel == REPLACED_FLAG_BF16
        assert F16.sentinel == REPLACED_FLAG_F16

    def test_flags_are_policy_values(self):
        assert F64.policy is Policy.DOUBLE
        assert F32.policy is Policy.SINGLE
        assert BF16.policy is Policy.BF16
        assert F16.policy is Policy.HALF

    def test_range_bounds(self):
        # IEEE binary16: max finite 65504, min normal 2^-14.
        assert F16.max_finite == 65504.0
        assert F16.min_normal == 2.0**-14
        # bfloat16 shares binary32's exponent range.
        assert BF16.min_normal == F32.min_normal == 2.0**-126
        assert BF16.max_finite > 3e38
        # binary32 max finite.
        assert F32.max_finite == (2.0 - 2.0**-23) * 2.0**127

    def test_descriptor(self):
        assert F16.descriptor() == "f16(5,10)"
        assert Width("e4m3", 4, 3, "x", 0).descriptor() == "e4m3(4,3)"


class TestParse:
    def test_spec_roundtrip(self):
        for spec in ("f64,f32", "f64,f32,bf16", "f64,f32,f16",
                     "f64,f32,bf16,f16"):
            assert parse_lattice(spec).spec() == spec

    def test_whitespace_tolerated(self):
        assert parse_lattice(" f64 , f32 ").spec() == "f64,f32"

    def test_identity_on_lattice_instances(self):
        assert parse_lattice(FULL_LATTICE) is FULL_LATTICE

    def test_unknown_width_rejected(self):
        with pytest.raises(LatticeError, match="unknown width"):
            parse_lattice("f64,f32,fp8")

    def test_lattice_error_is_value_error(self):
        # SearchOptions validation catches ValueError; the subclass
        # relationship is load-bearing.
        assert issubclass(LatticeError, ValueError)

    @pytest.mark.parametrize("spec", [
        "f32,f64",            # must start at f64
        "f64",                # needs a narrow width
        "f64,bf16",           # first narrow width must be f32
        "f64,f32,f32",        # duplicates
        "f64,f32,f16,bf16",   # must descend in rank
    ])
    def test_ordering_rules(self, spec):
        with pytest.raises(LatticeError):
            parse_lattice(spec)


class TestLattice:
    def test_binary_is_binary(self):
        assert BINARY_LATTICE.is_binary
        assert not FULL_LATTICE.is_binary

    def test_descriptor_is_canonical(self):
        assert (FULL_LATTICE.descriptor()
                == "f64(11,52)>f32(8,23)>bf16(8,7)>f16(5,10)")
        assert BINARY_LATTICE.descriptor() == "f64(11,52)>f32(8,23)"

    def test_narrow_widths(self):
        assert BINARY_LATTICE.narrow_widths == (F32,)
        assert FULL_LATTICE.narrow_widths == (F32, BF16, F16)

    def test_below_walks_down(self):
        assert FULL_LATTICE.below(F32) is BF16
        assert FULL_LATTICE.below(BF16) is F16
        assert FULL_LATTICE.below(F16) is None
        assert BINARY_LATTICE.below(F32) is None

    def test_width_for_policy(self):
        assert FULL_LATTICE.width_for(Policy.HALF) is F16
        assert BINARY_LATTICE.width_for(Policy.SINGLE) is F32
        with pytest.raises(KeyError):
            BINARY_LATTICE.width_for(Policy.HALF)

    def test_iteration_and_len(self):
        assert list(FULL_LATTICE) == [F64, F32, BF16, F16]
        assert len(BINARY_LATTICE) == 2

    def test_direct_construction_validates(self):
        with pytest.raises(LatticeError):
            Lattice((F32, F64))


class TestFitsWidth:
    def test_overflow_fails(self):
        assert not fits_width(F16, 1.0, 1e5)
        assert fits_width(F16, 1.0, 65504.0)

    def test_underflow_to_subnormal_fails(self):
        assert not fits_width(F16, 1e-7, 1.0)
        assert fits_width(F16, 2.0**-14, 1.0)

    def test_zero_min_is_ignored(self):
        # min_abs == 0 means "no nonzero magnitudes observed below".
        assert fits_width(F16, 0.0, 1.0)

    def test_widths_nest(self):
        # Anything that fits f16's range fits bf16's and f32's.
        for bounds in [(1e-3, 1e3), (2.0**-14, 65504.0)]:
            assert fits_width(F16, *bounds)
            assert fits_width(BF16, *bounds)
            assert fits_width(F32, *bounds)
        # bf16 has f32's range but not f16's.
        assert fits_width(BF16, 1e-30, 1e30)
        assert not fits_width(F16, 1e-30, 1e30)
