"""The stencil/CFD family: heat (tolerant) and nekcg (sensitive).

The property tests drive the verification thresholds with a values-shim
— an object exposing only ``values()`` — so they exercise exactly what
the search's evaluators hand to ``verify``.
"""

import functools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import make_workload
from repro.workloads.stencil import heat, nekcg


@functools.lru_cache(maxsize=None)
def _workload(name, klass="T"):
    return make_workload(name, klass)


class _Shim:
    """A result carrying only decoded output values."""

    def __init__(self, values):
        self._values = list(values)

    def values(self):
        return self._values


def _tolerances(workload):
    return workload.tolerances


class TestStructure:
    @pytest.mark.parametrize("mod", [heat, nekcg])
    def test_classes_smallest_first(self, mod):
        assert list(mod.CLASSES)[0] == "T"
        sizes = [params["n"] for params in mod.CLASSES.values()]
        assert sizes == sorted(sizes)  # strictly growing problem sizes
        assert len(set(sizes)) == len(sizes)

    def test_heat_is_multi_module(self):
        program = _workload("heat").program
        assert set(program.modules) == {"heat", "fdops"}
        assert program.stats()["candidates"] > 0

    def test_nekcg_keeps_nekbone_vocabulary(self):
        program = _workload("nekcg").program
        assert set(program.modules) == {"nekcg", "nekops"}
        names = {fn.name for fn in program.functions}
        assert {"ax", "glsc3", "add2s1", "add2s2"} <= names

    def test_output_counts_match_tolerances(self):
        for name in ("heat", "nekcg"):
            workload = _workload(name)
            assert len(workload.baseline().values()) == len(
                _tolerances(workload)
            )


class TestPrecisionSplit:
    def test_heat_survives_single_precision(self):
        # The CFD-paper finding: the dissipative explicit stencil damps
        # rounding, so the fully single build passes verification.
        workload = _workload("heat")
        assert workload.verify(workload.run(workload.program_single))

    def test_nekcg_rejects_single_precision(self):
        # ...while the CG recurrence stalls visibly in single.
        workload = _workload("nekcg")
        assert not workload.verify(workload.run(workload.program_single))

    def test_nekcg_mpi_ranks_verify(self):
        workload = _workload("nekcg")
        assert list(workload.run_mpi(1).values()) == list(
            workload.baseline().values()
        )
        assert workload.verify(workload.run_mpi(2))


@st.composite
def _output_index(draw, workload_name):
    n = len(_tolerances(_workload(workload_name)))
    return draw(st.integers(min_value=0, max_value=n - 1))


class TestThresholdProperties:
    @pytest.mark.parametrize("name", ["heat", "nekcg"])
    def test_baseline_accepts(self, name):
        workload = _workload(name)
        assert workload.verify(_Shim(workload.baseline().values()))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), scale=st.floats(min_value=3.0, max_value=1e6))
    @pytest.mark.parametrize("name", ["heat", "nekcg"])
    def test_perturbation_beyond_threshold_rejects(self, name, data, scale):
        workload = _workload(name)
        reference = list(workload.baseline().values())
        k = data.draw(_output_index(name), label="output index")
        rel, abs_ = _tolerances(workload)[k]
        # anything clearly past the (rel, abs) envelope must fail
        margin = scale * (abs_ + rel * abs(reference[k]))
        perturbed = list(reference)
        perturbed[k] = reference[k] + margin
        assert not workload.verify(_Shim(perturbed))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), frac=st.floats(min_value=0.0, max_value=0.4))
    @pytest.mark.parametrize("name", ["heat", "nekcg"])
    def test_perturbation_within_threshold_accepts(self, name, data, frac):
        workload = _workload(name)
        reference = list(workload.baseline().values())
        k = data.draw(_output_index(name), label="output index")
        rel, abs_ = _tolerances(workload)[k]
        inside = frac * max(abs_, rel * abs(reference[k]))
        perturbed = list(reference)
        perturbed[k] = reference[k] + inside
        assert workload.verify(_Shim(perturbed))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    @pytest.mark.parametrize("name", ["heat", "nekcg"])
    def test_nan_always_rejects(self, name, data):
        workload = _workload(name)
        values = list(workload.baseline().values())
        k = data.draw(_output_index(name), label="output index")
        values[k] = math.nan
        assert not workload.verify(_Shim(values))

    @pytest.mark.parametrize("name", ["heat", "nekcg"])
    def test_truncated_outputs_reject(self, name):
        workload = _workload(name)
        values = list(workload.baseline().values())
        assert not workload.verify(_Shim(values[:-1]))
