"""Deeper workload properties: sensitivity structure, data generation."""

import pytest

from repro.config import Config, Policy, build_tree
from repro.instrument import instrument
from repro.workloads import make_nas, make_workload


class TestCgStructure:
    def test_converges_to_stagnation(self):
        # The double build must reach near machine precision — the gap
        # between that and a single-stalled recurrence is what the
        # verification routine keys on.
        workload = make_nas("cg", "W")
        true_resid = float(workload.baseline().values()[0])
        assert true_resid < 1e-10

    def test_matrix_is_symmetric(self):
        from repro.vm.machine import VM

        workload = make_nas("cg", "S")
        vm = VM(workload.program)
        vm.run()
        g = workload.program.globals
        rowptr = vm.mem[g["rowptr"].addr : g["rowptr"].addr + g["rowptr"].words]
        colidx = vm.mem[g["colidx"].addr : g["colidx"].addr + g["colidx"].words]
        from repro.fpbits.ieee import bits_to_double

        aval = [
            bits_to_double(b)
            for b in vm.mem[g["aval"].addr : g["aval"].addr + g["aval"].words]
        ]
        n = len(rowptr) - 1
        entries = {}
        for i in range(n):
            for k in range(rowptr[i], rowptr[i + 1]):
                entries[(i, colidx[k])] = aval[k]
        for (i, j), v in entries.items():
            assert entries[(j, i)] == v, f"asymmetry at {(i, j)}"

    def test_matrix_diagonally_dominant(self):
        from repro.fpbits.ieee import bits_to_double
        from repro.vm.machine import VM

        workload = make_nas("cg", "S")
        vm = VM(workload.program)
        vm.run()
        g = workload.program.globals
        rowptr = vm.mem[g["rowptr"].addr : g["rowptr"].addr + g["rowptr"].words]
        colidx = vm.mem[g["colidx"].addr : g["colidx"].addr + g["colidx"].words]
        aval = [
            bits_to_double(b)
            for b in vm.mem[g["aval"].addr : g["aval"].addr + g["aval"].words]
        ]
        n = len(rowptr) - 1
        for i in range(n):
            diag = 0.0
            off = 0.0
            for k in range(rowptr[i], rowptr[i + 1]):
                if colidx[k] == i:
                    diag = aval[k]
                else:
                    off += abs(aval[k])
            assert diag > off  # SPD by construction


class TestSensitivityStructure:
    def test_cg_hot_matvec_fails_individually(self):
        workload = make_nas("cg", "W")
        tree = build_tree(workload.program)
        matvec = next(
            n for n in tree.nodes_at("function") if "matvec" in n.label
        )
        config = Config(tree).set(matvec.node_id, Policy.SINGLE)
        run = workload.run(instrument(workload.program, config).program)
        assert not workload.verify(run)

    def test_cg_cold_makea_passes_individually(self):
        workload = make_nas("cg", "W")
        tree = build_tree(workload.program)
        makea = next(n for n in tree.nodes_at("function") if "makea" in n.label)
        config = Config(tree).set(makea.node_id, Policy.SINGLE)
        run = workload.run(instrument(workload.program, config).program)
        assert workload.verify(run)

    def test_ft_butterflies_fail_individually(self):
        workload = make_nas("ft", "W")
        tree = build_tree(workload.program)
        fft = next(n for n in tree.nodes_at("function") if n.label == "fft()")
        config = Config(tree).set(fft.node_id, Policy.SINGLE)
        run = workload.run(instrument(workload.program, config).program)
        assert not workload.verify(run)

    def test_ft_cold_driver_passes_individually(self):
        # Whole setup functions fail at this strict tolerance (their
        # rounded values feed every transform), but the driver-side
        # arithmetic in main (scaling, checksum accumulation) tolerates
        # single precision — the sliver behind ft's small static %.
        workload = make_nas("ft", "W")
        tree = build_tree(workload.program)
        main_fn = next(n for n in tree.nodes_at("function") if n.label == "main()")
        config = Config(tree).set(main_fn.node_id, Policy.SINGLE)
        run = workload.run(instrument(workload.program, config).program)
        assert workload.verify(run)


class TestSuperLuMatrix:
    def test_row_scaling_spans_decades(self):
        # The memplus-like conditioning: row magnitudes spread widely,
        # which is what stresses single precision in the factorization.
        from repro.fpbits.ieee import bits_to_double
        from repro.vm.machine import VM

        workload = make_workload("superlu", "W")
        vm = VM(workload.program)
        vm.run()
        g = workload.program.globals["a0"]
        n = workload.program.globals["piv"].words
        diag = [
            bits_to_double(vm.mem[g.addr + i * n + i]) for i in range(n)
        ]
        assert max(diag) / min(diag) > 50

    def test_manufactured_solution_is_ones(self):
        from repro.fpbits.ieee import bits_to_double
        from repro.vm.machine import VM

        workload = make_workload("superlu", "S")
        vm = VM(workload.program)
        vm.run()
        g = workload.program.globals["xvec"]
        xs = [bits_to_double(vm.mem[g.addr + i]) for i in range(g.words)]
        assert all(abs(x - 1.0) < 1e-9 for x in xs)
