"""Workload correctness: every benchmark runs, verifies, and behaves.

Uses class S (tiny) throughout to keep the suite fast.
"""

import pytest

from repro.workloads import BENCHMARKS, MPI_BENCHMARKS, make_nas, make_workload
from repro.workloads.base import Workload, poke_f64, poke_i64

ALL_NAS = sorted(BENCHMARKS)


class TestNasBaselines:
    @pytest.mark.parametrize("bench", ALL_NAS)
    def test_double_build_verifies(self, bench):
        workload = make_nas(bench, "S")
        assert workload.verify(workload.baseline())

    @pytest.mark.parametrize("bench", ALL_NAS)
    def test_runs_are_deterministic(self, bench):
        workload = make_nas(bench, "S")
        a = workload.run()
        b = workload.run()
        assert a.outputs == b.outputs
        assert a.cycles == b.cycles

    @pytest.mark.parametrize("bench", ALL_NAS)
    def test_single_build_runs_clean(self, bench):
        workload = make_nas(bench, "S")
        values = workload.run(workload.program_single).values()
        assert all(v == v for v in map(float, values))

    @pytest.mark.parametrize("bench", ALL_NAS)
    def test_has_candidates(self, bench):
        workload = make_nas(bench, "S")
        assert workload.program.stats()["candidates"] > 10

    @pytest.mark.parametrize("bench", ALL_NAS)
    def test_classes_grow(self, bench):
        small = make_nas(bench, "S").baseline().steps
        big = make_nas(bench, "W").baseline().steps
        assert big > small


class TestNasMpi:
    @pytest.mark.parametrize("bench", MPI_BENCHMARKS)
    def test_mpi_variants_run_at_four_ranks(self, bench):
        workload = make_nas(bench, "S")
        result = workload.run_mpi(4)
        values = result.values()
        assert all(v == v for v in map(float, values))

    @pytest.mark.parametrize("bench", ("cg", "mg"))
    def test_rank_count_invariant_results(self, bench):
        # CG and MG are deterministic SPMD: the numbers must not depend
        # on the decomposition (EP's RNG streams do, by design).
        workload = make_nas(bench, "S")
        serial = workload.run_mpi(1).values()
        parallel = workload.run_mpi(4).values()
        for a, b in zip(serial, parallel):
            assert float(a) == pytest.approx(float(b), rel=1e-12, abs=1e-12)


class TestAmg:
    def test_converges_in_both_precisions(self):
        workload = make_workload("amg", "S")
        double_run = workload.baseline()
        single_run = workload.run(workload.program_single)
        assert workload.verify(double_run)
        assert workload.verify(single_run)

    def test_adaptive_iteration_counts(self):
        workload = make_workload("amg", "S")
        cycles_double = workload.baseline().values()[1]
        cycles_single = workload.run(workload.program_single).values()[1]
        assert cycles_single >= cycles_double  # may need a few more

    def test_single_build_is_faster(self):
        workload = make_workload("amg", "S")
        assert workload.run(workload.program_single).cycles < workload.baseline().cycles


class TestSuperLU:
    def test_double_error_tiny(self):
        workload = make_workload("superlu", "S")
        assert float(workload.baseline().values()[0]) < 1e-10

    def test_single_error_single_scale(self):
        workload = make_workload("superlu", "S")
        error = float(workload.run(workload.program_single).values()[0])
        assert 1e-8 < error < 1e-3

    def test_threshold_wiring(self):
        loose = make_workload("superlu", "S", threshold=1e-2)
        strict = make_workload("superlu", "S", threshold=1e-12)
        single_run = loose.run(loose.program_single)
        assert loose.verify(single_run)
        assert not strict.verify(strict.run(strict.program_single))

    def test_pivoting_actually_permutes(self):
        # The factored program must have taken at least one row swap on
        # this unsymmetric matrix; detect it via the piv array.
        workload = make_workload("superlu", "S")
        from repro.vm.machine import VM

        vm = VM(workload.program)
        vm.run()
        sym = workload.program.globals["piv"]
        pivots = vm.mem[sym.addr : sym.addr + sym.words]
        assert any(p != i for i, p in enumerate(pivots))


class TestWorkloadInfrastructure:
    def test_make_workload_dispatch(self):
        assert make_workload("cg", "S").name == "cg.S"
        assert make_workload("amg", "S").name == "amg.S"
        assert make_workload("superlu", "S").name == "superlu.S"
        with pytest.raises(KeyError):
            make_workload("nonesuch")

    def test_poke_helpers(self):
        workload = Workload(
            name="poke",
            sources=[
                "var a: real[3]; var k: i64[2];"
                " fn main() { out(a[1]); out(k[0]); }"
            ],
        )
        program = workload.program
        poke_f64(program, "a", [1.5, 2.5, 3.5])
        poke_i64(program, "k", [7, 8])
        assert workload.run().values() == [2.5, 7]

    def test_poke_overflow_rejected(self):
        workload = Workload(name="p2", sources=["var a: real[2]; fn main() {}"])
        with pytest.raises(ValueError):
            poke_f64(workload.program, "a", [1.0, 2.0, 3.0])

    def test_baseline_cached(self):
        workload = make_nas("ep", "S")
        assert workload.baseline() is workload.baseline()

    def test_profile_counts_nonempty(self):
        workload = make_nas("ep", "S")
        profile = workload.profile()
        assert profile and all(c > 0 for c in profile.values())

    def test_nan_output_fails_verification(self):
        workload = Workload(
            name="nanny",
            sources=["fn main() { out(0.0 / 0.0); }"],
            verify_mode="self",
            self_check=lambda values: True,
        )
        assert not workload.verify(workload.run())

    def test_unknown_nas_benchmark(self):
        with pytest.raises(KeyError, match="unknown NAS"):
            make_nas("zz")
