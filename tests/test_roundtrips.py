"""Cross-layer round-trip properties."""

from hypothesis import given, settings, strategies as st

from repro.asm import AsmBuilder, assemble_text, disassemble_program
from repro.config import Config, build_tree
from repro.fpbits.ieee import double_to_bits
from repro.instrument import instrument
from repro.isa import Imm, Op, Reg, Xmm
from repro.vm import run_program

# Straight-line random FP/integer programs: build -> link -> decode ->
# rewrite (layout round-trip) -> run must equal the original run.

_FP_OPS = [Op.ADDSD, Op.SUBSD, Op.MULSD, Op.SQRTSD, Op.ABSSD, Op.NEGSD]
_INT_OPS = [Op.ADD, Op.SUB, Op.IMUL, Op.AND, Op.OR, Op.XOR]


@st.composite
def straightline_program(draw):
    builder = AsmBuilder("random")
    builder.func("_start")
    # seed registers with interesting values
    for reg in range(1, 5):
        builder.emit(Op.MOV, Reg(reg), Imm(draw(st.integers(0, 2**32))))
    for xreg in range(0, 4):
        value = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
        builder.emit(Op.MOV, Reg(11), Imm(double_to_bits(value)))
        builder.emit(Op.MOVQXR, Xmm(xreg), Reg(11))
    for _ in range(draw(st.integers(3, 15))):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_FP_OPS))
            builder.emit(op, Xmm(draw(st.integers(0, 3))), Xmm(draw(st.integers(0, 3))))
        else:
            op = draw(st.sampled_from(_INT_OPS))
            builder.emit(op, Reg(draw(st.integers(1, 4))), Reg(draw(st.integers(1, 4))))
    for xreg in range(0, 4):
        builder.emit(Op.OUTSD, Xmm(xreg))
    for reg in range(1, 5):
        builder.emit(Op.OUTI, Reg(reg))
    builder.emit(Op.HALT)
    builder.endfunc()
    return builder.link()


class TestLayoutRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(straightline_program())
    def test_none_mode_rewrite_preserves_behaviour(self, program):
        baseline = run_program(program)
        rewritten = instrument(
            program, Config.all_double(build_tree(program)), mode="none"
        )
        assert run_program(rewritten.program).outputs == baseline.outputs

    @settings(max_examples=40, deadline=None)
    @given(straightline_program())
    def test_all_mode_rewrite_bit_identical(self, program):
        baseline = run_program(program)
        rewritten = instrument(
            program, Config.all_double(build_tree(program)), mode="all"
        )
        assert run_program(rewritten.program).outputs == baseline.outputs

    @settings(max_examples=25, deadline=None)
    @given(straightline_program())
    def test_streamlined_all_mode_bit_identical(self, program):
        baseline = run_program(program)
        rewritten = instrument(
            program, Config.all_double(build_tree(program)), mode="all",
            streamline=True,
        )
        assert run_program(rewritten.program).outputs == baseline.outputs

    @settings(max_examples=25, deadline=None)
    @given(straightline_program())
    def test_single_replacement_never_traps_or_nans_unexpectedly(self, program):
        # All-single over straight-line FP arithmetic with guards: result
        # must be the single-precision evaluation — no NaN unless the
        # double run also produced one.
        baseline = run_program(program).values()
        mixed = run_program(
            instrument(program, Config.all_single(build_tree(program))).program
        ).values()
        for b, m in zip(baseline, mixed):
            if isinstance(b, float) and b == b and abs(b) < 1e30:
                assert m == m, "all-single produced NaN where double did not"


class TestTextualRoundtrip:
    def test_disassemble_is_stable(self):
        program = assemble_text(
            ".func _start\n    mov %r0, $5\n    outi %r0\n    halt\n.endfunc"
        )
        once = disassemble_program(program)
        twice = disassemble_program(program)
        assert once == twice
