"""Determinism guarantees and option validation across the stack."""

import pytest

from repro.compiler import CompileError, CompileOptions, compile_source
from repro.search import SearchEngine, SearchOptions
from repro.workloads import make_nas


class TestOptionValidation:
    def test_bad_real_type(self):
        with pytest.raises(CompileError, match="bad real_type"):
            CompileOptions(real_type="f16")

    def test_bad_transcendentals(self):
        with pytest.raises(CompileError, match="bad transcendentals"):
            CompileOptions(transcendentals="magic")

    def test_custom_entry_point(self):
        program = compile_source(
            "fn boot() { out(9); }",
            CompileOptions(entry="boot"),
        )
        from repro.vm import run_program

        assert run_program(program).values() == [9]

    def test_missing_custom_entry(self):
        with pytest.raises(CompileError, match="boot"):
            compile_source("fn main() {}", CompileOptions(entry="boot"))


class TestDeterminism:
    def test_compile_is_deterministic(self):
        workload_a = make_nas("cg", "S")
        workload_b = make_nas("cg", "S")
        assert workload_a.program.text == workload_b.program.text
        assert workload_a.program.data_image == workload_b.program.data_image

    def test_search_is_deterministic(self):
        result_a = SearchEngine(make_nas("ep", "S")).run()
        result_b = SearchEngine(make_nas("ep", "S")).run()
        assert result_a.row() == result_b.row()
        assert [h.label for h in result_a.history] == [
            h.label for h in result_b.history
        ]
        assert result_a.final_config.flags == result_b.final_config.flags

    def test_instrumentation_is_deterministic(self):
        from repro.config import Config, build_tree
        from repro.instrument import instrument

        workload = make_nas("mg", "S")
        tree = build_tree(workload.program)
        once = instrument(workload.program, Config.all_single(tree))
        twice = instrument(workload.program, Config.all_single(tree))
        assert once.program.text == twice.program.text

    def test_cycle_counts_are_exact_integers(self):
        workload = make_nas("lu", "S")
        runs = {workload.run().cycles for _ in range(3)}
        assert len(runs) == 1


class TestSearchOptionEdges:
    def test_zero_worker_treated_as_serial(self):
        result = SearchEngine(
            make_nas("ep", "S"), SearchOptions(workers=1)
        ).run()
        assert result.configs_tested >= 1

    def test_partition_threshold_extremes(self):
        # threshold larger than any child list: no grouping, pure per-child
        wide = SearchEngine(
            make_nas("ep", "S"), SearchOptions(partition_threshold=10_000)
        ).run()
        narrow = SearchEngine(
            make_nas("ep", "S"), SearchOptions(partition_threshold=1)
        ).run()
        assert wide.static_pct == pytest.approx(narrow.static_pct)

    def test_refine_budget_zero_reports_unverified(self):
        # With no refinement budget the second phase cannot run a single
        # composition test; it must report not-verified, never crash.
        from repro.search.bfs import SearchEngine as Engine

        result = Engine(
            make_nas("sp", "S"), SearchOptions(refine=True, refine_budget=0)
        ).run()
        if not result.final_verified:
            assert result.refined_config is not None
            assert not result.refined_verified
