"""Experiment drivers, exercised at small scale (correctness, not the
paper-scale parameters — those run under benchmarks/)."""

import math

import pytest

from repro.experiments import ablation, amg, fig8, fig9, fig10, fig11
from repro.experiments.tables import format_table
from repro.search.bfs import SearchOptions


class TestFig9:
    def test_overhead_measured_and_bit_identical(self):
        result = fig9.measure_overhead("ep", "S")
        assert result.bit_identical
        assert result.overhead > 1.5
        assert result.growth > 1.0

    @pytest.mark.parametrize("bench", ("ep", "cg", "ft", "mg"))
    def test_bitforbit_single_vs_manual(self, bench):
        assert fig9.check_single_bitforbit(bench, "S")

    def test_rows_format(self):
        rows = fig9.run(benchmarks=("ep",), classes=("S",))
        table = format_table(rows, title="t")
        assert "ep.S" in table and "X" in table


class TestFig8:
    def test_overhead_trend_nonincreasing(self):
        row = fig8.measure_scaling("cg", "S", ranks=(1, 2, 4))
        assert fig8.trend_is_nonincreasing(row, ranks=(1, 2, 4))

    def test_all_rank_columns_present(self):
        row = fig8.measure_scaling("ep", "S", ranks=(1, 2))
        assert "P1" in row and "P2" in row


class TestFig10:
    def test_single_benchmark_row(self):
        result = fig10.search_benchmark("cg", "S")
        row = result.row()
        assert 0 <= row["static_pct"] <= 100
        assert 0 <= row["dynamic_pct"] <= 100
        assert row["final"] in ("pass", "fail")
        assert row["tested"] >= 1

    def test_search_tests_fewer_than_exhaustive(self):
        result = fig10.search_benchmark("mg", "S")
        assert result.configs_tested < 2 ** min(result.candidates, 20)

    def test_paper_values_table_complete(self):
        assert set(fig10.PAPER_VALUES) == {
            f"{b}.{k}" for b in fig10.BENCHMARKS for k in fig10.CLASSES
        }


class TestFig11:
    def test_solver_errors_ordering(self):
        errors = fig11.solver_errors("S")
        assert errors["double_error"] < errors["single_error"] < 1e-2
        assert errors["single_speedup"] > 1.0

    def test_loose_threshold_replaces_everything(self):
        row = fig11.sweep_threshold("S", 1e-2)
        assert row["_raw_static"] == 1.0
        assert row["_raw_dynamic"] == 1.0
        # the final error sits below the threshold used in the search
        assert row["_raw_final_error"] < 1e-2

    def test_strict_threshold_replaces_less(self):
        loose = fig11.sweep_threshold("S", 1e-2)
        strict = fig11.sweep_threshold(
            "S", 1e-9, options=SearchOptions(stop_level="block")
        )
        assert strict["_raw_static"] <= loose["_raw_static"]
        assert strict["_raw_dynamic"] <= loose["_raw_dynamic"]


class TestAmgExperiment:
    def test_whole_kernel_and_speedup(self):
        result = amg.run("S")
        assert result["whole_kernel_single_passes"]
        assert result["_raw_speedup"] > 1.2
        assert result["search_final"] == "pass"


class TestAblations:
    def test_check_elimination_preserves_behaviour(self):
        rows = ablation.check_elimination("ep", "S")
        for row in rows:
            assert row["identical_outputs"]
            assert row["cycles_optimized"] <= row["cycles_plain"]
        assert rows[0]["checks_skipped"] > 0  # all-double scenario

    def test_transcendental_modes(self):
        rows = ablation.transcendental_handling()
        by_variant = {r["variant"]: r for r in rows}
        # the library build exposes many more candidate instructions
        assert by_variant["library"]["candidates"] > by_variant["instruction"]["candidates"]

    def test_search_optimization_variants_agree(self):
        rows = ablation.search_optimizations("ep", "S")
        by_variant = {r["variant"]: r for r in rows}
        assert by_variant["full"]["static_pct"] == by_variant["neither"]["static_pct"]
        assert by_variant["stop-at-functions"]["tested"] <= by_variant["full"]["tested"]


class TestTables:
    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        lines = format_table(rows).splitlines()
        assert len({line.index("b") for line in lines[:1]}) == 1
        assert len(lines) == 4
