"""AnalysisReport serialization and the search guide's predicates."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis import AnalysisReport, InstructionAnalysis, SearchGuide
from repro.analysis.report import REPORT_VERSION


def _ia(addr, verdict="pass", why="", node_id="INSN01", **over):
    fields = dict(
        addr=addr,
        node_id=node_id,
        mnemonic="addsd",
        execs=10,
        min_abs=1e-3,
        max_abs=2.5,
        cancel_events=1,
        cancel_max_bits=12,
        max_local_err=1e-8,
        max_shadow_err=1e-5,
        overflow=0,
        underflow=0,
        flips=0,
        verdict=verdict,
        verdict_why=why,
    )
    fields.update(over)
    return InstructionAnalysis(**fields)


def _report(entries):
    return AnalysisReport(
        workload="w",
        program="p",
        candidates=len(entries),
        observed=len(entries),
        instructions={ia.addr: ia for ia in entries},
    )


class TestReportSerialization:
    def test_roundtrip_preserves_everything(self):
        report = _report([
            _ia(0x10, "pass"),
            _ia(0x20, "fail", max_local_err=math.inf),
            _ia(0x30, "unknown", why="compare-flip", min_abs=math.inf),
        ])
        back = AnalysisReport.loads(report.dumps())
        assert back == report

    def test_json_is_plain_and_versioned(self):
        report = _report([_ia(0x10, max_local_err=math.inf)])
        payload = json.loads(report.dumps())
        assert payload["version"] == REPORT_VERSION
        entry = payload["instructions"][0]
        assert entry["max_local_err"] == "inf"  # no bare Infinity in JSON
        assert entry["verdict"] == "pass"

    def test_unsupported_version_rejected(self):
        report = _report([_ia(0x10)])
        payload = report.to_json()
        payload["version"] = 1
        with pytest.raises(ValueError, match="version"):
            AnalysisReport.from_json(payload)

    def test_verdict_histogram_breaks_out_reasons(self):
        report = _report([
            _ia(0x10, "pass"),
            _ia(0x20, "fail"),
            _ia(0x30, "unknown", why="movqrx"),
            _ia(0x40, "unknown", why="movqrx"),
            _ia(0x50, "unknown", why="compare-flip"),
        ])
        assert report.verdict_histogram() == {
            "fail": 1,
            "pass": 1,
            "unknown:compare-flip": 1,
            "unknown:movqrx": 2,
        }

    def test_summarize_includes_verdict_census(self):
        report = _report([_ia(0x10, "pass"), _ia(0x20, "fail")])
        summary = report.summarize([0x10, 0x20, 0x999])
        assert summary["verdicts"] == {"pass": 1, "fail": 1}
        assert summary["execs"] == 20


class _W:
    tolerances = [(1e-7, 0.0), (1e-9, 1e-30)]


class TestSearchGuide:
    def test_predict_fail_only_on_failing_singletons(self):
        report = _report([
            _ia(0x10, "fail"),
            _ia(0x20, "pass"),
            _ia(0x30, "unknown", why="movqrx"),
        ])
        guide = SearchGuide(report, _W())
        assert guide.predict_fail([0x10])
        assert not guide.predict_fail([0x20])
        assert not guide.predict_fail([0x30])      # unknown: must evaluate
        assert not guide.predict_fail([0x10, 0x20])  # groups: never pruned
        assert not guide.predict_fail([0x999])     # unobserved: must evaluate

    def test_replaceable_rank(self):
        report = _report([
            _ia(0x10, "pass"),
            _ia(0x20, "pass"),
            _ia(0x30, "fail"),
            _ia(0x40, "unknown", why="movqrx"),
        ])
        guide = SearchGuide(report, _W())
        assert guide.replaceable_rank([0x10, 0x20]) == 1
        assert guide.replaceable_rank([0x10, 0x30]) == 0
        assert guide.replaceable_rank([0x40]) == 0  # unknown is not "pass"
        assert guide.replaceable_rank([0x999]) == 0  # nothing observed

    def test_verification_bound_from_tolerances(self):
        guide = SearchGuide(_report([]), _W())
        assert guide.bound == 1e-9


class TestPredictUnfit:
    """The lattice width-seeding predicate (range-based, fires on groups)."""

    def _guide(self, entries):
        return SearchGuide(_report(entries), _W())

    def test_overflowing_range_is_unfit(self):
        from repro.lattice import F16

        guide = self._guide([_ia(0x10, min_abs=1.0, max_abs=1e6)])
        assert guide.predict_unfit([0x10], F16)

    def test_underflowing_range_is_unfit(self):
        from repro.lattice import F16

        guide = self._guide([_ia(0x10, min_abs=1e-9, max_abs=1.0)])
        assert guide.predict_unfit([0x10], F16)

    def test_fitting_range_is_not_pruned(self):
        from repro.lattice import BF16, F16

        guide = self._guide([_ia(0x10, min_abs=1e-3, max_abs=100.0)])
        assert not guide.predict_unfit([0x10], F16)
        assert not guide.predict_unfit([0x10], BF16)

    def test_one_unfit_member_prunes_the_group(self):
        from repro.lattice import F16

        guide = self._guide([
            _ia(0x10, min_abs=1.0, max_abs=2.0),
            _ia(0x20, min_abs=1.0, max_abs=1e6),
        ])
        assert guide.predict_unfit([0x10, 0x20], F16)
        assert not guide.predict_unfit([0x10], F16)

    def test_unobserved_addrs_must_evaluate(self):
        from repro.lattice import F16

        guide = self._guide([_ia(0x10)])
        assert not guide.predict_unfit([0x999], F16)

    def test_wider_rung_tolerates_what_f16_cannot(self):
        from repro.lattice import BF16, F16

        guide = self._guide([_ia(0x10, min_abs=2.0, max_abs=262144.0)])
        assert guide.predict_unfit([0x10], F16)
        assert not guide.predict_unfit([0x10], BF16)
