"""Guidance economics: the ``analysis="auto"`` decision and its wiring.

Unit tests pin the decision rule in :mod:`repro.analysis.economics`;
engine tests pin the contract that an auto search behaves exactly like
one of the two fixed modes — analyze-first when nothing is known, skip
after an unprofitable measurement — and that ``analysis=True`` keeps
its unconditional-analysis contract regardless of what the registry
says.
"""

import pytest

from repro.analysis import economics
from repro.search.bfs import SearchEngine, SearchOptions
from repro.telemetry import Telemetry
from repro.telemetry.sinks import ListSink
from repro.workloads import make_workload


@pytest.fixture(autouse=True)
def _fresh_registry():
    economics.clear()
    yield
    economics.clear()


class TestDecisionRule:
    def test_no_prior_always_analyzes(self):
        decision = economics.should_analyze("cg.T")
        assert decision.analyze
        assert decision.reason == "no-prior"

    def test_profitable_prior_keeps_analyzing(self):
        economics.record("cg.T", analysis_wall_s=0.1,
                         avg_eval_wall_s=0.05, pruned=10)
        decision = economics.should_analyze("cg.T")
        assert decision.analyze
        assert decision.reason == "profitable"
        assert decision.predicted_saving_s == pytest.approx(0.5)
        assert decision.predicted_cost_s == pytest.approx(0.1)

    def test_unprofitable_prior_skips(self):
        # mg.W's shape: few prunes, analysis wall dwarfs what they save.
        economics.record("mg.W", analysis_wall_s=0.9,
                         avg_eval_wall_s=0.1, pruned=7)
        decision = economics.should_analyze("mg.W")
        assert not decision.analyze
        assert decision.reason == "unprofitable"
        assert decision.predicted_saving_s == pytest.approx(0.7)
        assert decision.predicted_cost_s == pytest.approx(0.9)

    def test_latest_record_wins(self):
        economics.record("cg.T", 10.0, 0.001, 1)
        economics.record("cg.T", 0.01, 0.5, 20)
        assert economics.should_analyze("cg.T").analyze

    def test_clear_forgets(self):
        economics.record("cg.T", 10.0, 0.001, 1)
        economics.clear()
        assert economics.should_analyze("cg.T").reason == "no-prior"


class TestOptionsValidation:
    def test_auto_is_accepted(self):
        assert SearchOptions(analysis="auto").analysis == "auto"

    def test_bogus_mode_rejected(self):
        with pytest.raises(ValueError, match="analysis"):
            SearchOptions(analysis="bogus")


def _run(workload_name, klass, analysis, telemetry=None):
    workload = make_workload(workload_name, klass)
    return SearchEngine(
        workload, SearchOptions(refine=True, analysis=analysis),
        telemetry=telemetry,
    ).run()


class TestEngineAutoMode:
    def test_first_auto_run_analyzes_and_records(self):
        result = _run("cg", "T", "auto")
        assert result.analysis_used
        measured = economics.stats("cg.T")
        assert measured is not None
        assert measured.pruned == result.analysis_pruned
        assert measured.analysis_wall_s > 0.0
        assert measured.avg_eval_wall_s > 0.0

    def test_auto_skips_after_unprofitable_record(self):
        base = _run("cg", "T", False)
        economics.record("cg.T", analysis_wall_s=100.0,
                         avg_eval_wall_s=0.0001, pruned=1)
        auto = _run("cg", "T", "auto")
        assert not auto.analysis_used
        assert auto.analysis_pruned == 0
        # Skipping the analysis must reproduce the unguided search exactly.
        assert auto.configs_tested == base.configs_tested
        assert auto.final_config.flags == base.final_config.flags

    def test_auto_analyzes_after_profitable_record(self):
        guided = _run("cg", "T", True)
        economics.record("cg.T", analysis_wall_s=0.0001,
                         avg_eval_wall_s=1.0, pruned=10)
        auto = _run("cg", "T", "auto")
        assert auto.analysis_used
        assert auto.configs_tested == guided.configs_tested
        assert auto.final_config.flags == guided.final_config.flags

    def test_analysis_true_ignores_the_registry(self):
        # The fixed mode keeps its unconditional contract even when the
        # registry says guidance is a losing trade.
        economics.record("cg.T", analysis_wall_s=100.0,
                         avg_eval_wall_s=0.0001, pruned=1)
        guided = _run("cg", "T", True)
        assert guided.analysis_used

    def test_guidance_event_reports_the_decision(self):
        economics.record("cg.T", analysis_wall_s=100.0,
                         avg_eval_wall_s=0.0001, pruned=1)
        sink = ListSink()
        _run("cg", "T", "auto", telemetry=Telemetry(sinks=[sink]))
        events = [e for e in sink.events if e["kind"] == "search.guidance"]
        assert len(events) == 1
        event = events[0]
        assert event["workload"] == "cg.T"
        assert event["analyze"] is False
        assert event["reason"] == "unprofitable"
        assert event["predicted_cost_s"] > event["predicted_saving_s"]

    def test_fixed_modes_do_not_emit_guidance_events(self):
        sink = ListSink()
        _run("cg", "T", True, telemetry=Telemetry(sinks=[sink]))
        assert not any(
            e["kind"] == "search.guidance" for e in sink.events
        )
