"""The analyze() entry point: stats + verdicts from one observed run."""

from __future__ import annotations

from repro.analysis import analyze
from repro.analysis.report import VERDICT_FAIL, VERDICT_PASS, VERDICT_UNKNOWN
from repro.config.generator import build_tree
from repro.telemetry import MetricsRegistry, Telemetry
from repro.workloads import make_workload


def test_analyze_cg_populates_stats_and_verdicts():
    workload = make_workload("cg", "T")
    report = analyze(workload)
    assert report.workload == "cg.T"
    assert report.observed == report.candidates == 27
    tree = build_tree(workload.program)
    for addr, ia in report.instructions.items():
        assert ia.addr == addr
        assert ia.node_id == tree.by_addr[addr].node_id
        assert ia.execs > 0
        assert ia.verdict in (VERDICT_PASS, VERDICT_FAIL, VERDICT_UNKNOWN)
        if ia.verdict != VERDICT_UNKNOWN:
            assert ia.verdict_why == ""
    # cg.T is fully decided (no unknowns) and has both verdicts
    hist = report.verdict_histogram()
    assert set(hist) == {"pass", "fail"}


def test_analyze_accepts_prebuilt_tree():
    workload = make_workload("mg", "T")
    tree = build_tree(workload.program)
    report = analyze(workload, tree=tree)
    assert {ia.node_id for ia in report.instructions.values()} <= {
        n.node_id for n in tree.walk()
    }


def test_analyze_emits_telemetry():
    workload = make_workload("cg", "T")
    metrics = MetricsRegistry()
    telemetry = Telemetry(metrics=metrics)
    with telemetry:
        report = analyze(workload, telemetry=telemetry)
    counters = metrics.counters
    assert counters["analysis.instructions"] == report.observed
    verdict_total = sum(
        n for k, n in counters.items() if k.startswith("analysis.verdict.")
    )
    assert verdict_total == report.observed
