"""Per-instruction shadow channels: exactness and soundness.

The central claim of :mod:`repro.analysis.channels`: after one observed
run, substituting a channel's output overrides into the baseline output
stream reproduces the *exact* outcome of really instrumenting that one
instruction as single and re-running.  Verified here instruction by
instruction against the real evaluator on small programs and on cg.T —
and suite-wide by the differential search tests.
"""

from __future__ import annotations

import pytest

from repro.analysis import ChannelObserver
from repro.config.generator import build_tree
from repro.config.model import Config, Policy
from repro.search.evaluator import Evaluator
from repro.vm.machine import ExecResult, run_program
from repro.workloads import make_workload
from tests.conftest import compile_src


def _verdicts(workload):
    """addr -> "pass"/"fail"/"unknown" from one channel-observed run."""
    observer = ChannelObserver()
    result = run_program(
        workload.program, observer=observer, **workload.vm_params()
    )
    verdicts = {}
    for addr in observer.channels:
        outs = observer.outputs_for(addr, result.outputs)
        if outs is None:
            verdicts[addr] = "unknown"
        else:
            fake = ExecResult(
                outputs=outs, cycles=result.cycles, steps=result.steps
            )
            verdicts[addr] = "pass" if workload.verify(fake) else "fail"
    return verdicts


def _real_outcomes(workload, addrs):
    """addr -> real singleton-replacement outcome via the evaluator."""
    tree = build_tree(workload.program)
    evaluator = Evaluator(workload)
    outcomes = {}
    for addr in addrs:
        node = tree.by_addr[addr]
        config = Config(tree, {node.node_id: Policy.SINGLE})
        passed, _cycles, _trap, _reason = evaluator.evaluate(config)
        outcomes[addr] = "pass" if passed else "fail"
    return outcomes


class _SrcWorkload:
    """Minimal workload around a compiled source: verify against the
    double-precision baseline under a relative tolerance."""

    rel_tol = 1e-6

    def __init__(self, program, rel_tol=1e-6):
        self.program = program
        self.rel_tol = rel_tol
        self.name = "src"
        self._base = run_program(program)

    def vm_params(self):
        return {}

    def run(self, program=None):
        return run_program(program if program is not None else self.program)

    def profile(self):
        return run_program(self.program, profile=True).exec_counts

    def verify(self, result) -> bool:
        want = self._base.values()
        got = result.values()
        if len(want) != len(got):
            return False
        for w, g in zip(want, got):
            if w != w or g != g:  # NaN never verifies
                return False
            if abs(g - w) > self.rel_tol * max(1.0, abs(w)):
                return False
        return True


SRC_MIXED = """
var total: real;
fn main() {
    var s: real = 0.0;
    var tiny: real = 1.0;
    for i in 0 .. 30 {
        s = s + real(i) * 0.125;
        tiny = tiny * 0.5;
    }
    total = s + tiny * 0.0000001;
    out(s);
    out(tiny);
    out(sqrt(total));
}
"""


class TestExactness:
    def test_verdicts_match_real_singleton_evals_small(self):
        workload = _SrcWorkload(compile_src(SRC_MIXED))
        verdicts = _verdicts(workload)
        assert verdicts, "no channels observed"
        real = _real_outcomes(workload, list(verdicts))
        for addr, verdict in verdicts.items():
            if verdict != "unknown":
                assert verdict == real[addr], hex(addr)

    def test_verdicts_match_real_singleton_evals_cg(self):
        workload = make_workload("cg", "T")
        verdicts = _verdicts(workload)
        assert len(verdicts) == 27  # every candidate observed
        real = _real_outcomes(workload, list(verdicts))
        for addr, verdict in verdicts.items():
            if verdict != "unknown":
                assert verdict == real[addr], hex(addr)
        # the analysis must actually decide things on cg.T: no unknowns,
        # and both verdicts represented
        assert "unknown" not in verdicts.values()
        assert "fail" in verdicts.values()
        assert "pass" in verdicts.values()

    def test_soundness_is_one_sided(self):
        """Every "fail" verdict must be a real failure (the prune
        soundness contract); "pass" is advisory and asserted exact
        above, but pruning never keys on it."""
        workload = make_workload("mg", "T")
        verdicts = _verdicts(workload)
        fails = [a for a, v in verdicts.items() if v == "fail"]
        real = _real_outcomes(workload, fails)
        assert all(real[a] == "fail" for a in fails)


SRC_COMPARE_FLIP = """
fn main() {
    var eps: real = 0.0000000001;
    var a: real = 1.0 + eps;
    if a > 1.0 {
        out(1.0);
    } else {
        out(2.0);
    }
}
"""


class TestUnknowns:
    def test_compare_flip_kills_channel(self):
        """1.0 + 1e-10 rounds to 1.0 in float32, so the singleton run of
        the addition would branch differently: its channel must end
        unknown (never a guessed verdict)."""
        program = compile_src(SRC_COMPARE_FLIP)
        observer = ChannelObserver()
        result = run_program(program, observer=observer)
        flipped = [
            ch for ch in observer.channels.values()
            if ch.unknown and ch.why == "compare-flip"
        ]
        assert flipped, {
            hex(a): (ch.unknown, ch.why)
            for a, ch in observer.channels.items()
        }
        for ch in flipped:
            assert observer.outputs_for(ch.addr, result.outputs) is None

    def test_unknown_reasons_are_labelled(self):
        workload = make_workload("ft", "T")
        observer = ChannelObserver()
        run_program(workload.program, observer=observer, **workload.vm_params())
        for ch in observer.channels.values():
            if ch.unknown:
                assert ch.why, hex(ch.addr)
            else:
                assert ch.why == ""


class TestChannelMechanics:
    def test_outputs_for_unobserved_addr_is_baseline(self):
        workload = _SrcWorkload(compile_src(SRC_MIXED))
        observer = ChannelObserver()
        result = run_program(workload.program, observer=observer)
        outs = observer.outputs_for(0x999999, result.outputs)
        assert outs == result.outputs
        assert outs is not result.outputs  # a private copy

    def test_divergent_channels_override_outputs(self):
        workload = make_workload("cg", "T")
        observer = ChannelObserver()
        result = run_program(
            workload.program, observer=observer, **workload.vm_params()
        )
        diverged = [
            ch for ch in observer.channels.values()
            if not ch.unknown and ch.out
        ]
        assert diverged, "no channel reached an output on cg.T?"
        for ch in diverged:
            outs = observer.outputs_for(ch.addr, result.outputs)
            assert outs != result.outputs
            assert len(outs) == len(result.outputs)
            # overridden records keep their kind, change only the bits
            for got, base in zip(outs, result.outputs):
                assert got[0] == base[0]
