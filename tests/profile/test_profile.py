"""Profiler tests: bit-identity, attribution, serialization, telemetry.

The acceptance-critical property is the differential one: the observer
path (counting via the VM observer hook) and the native path (the VM's
``profile=True`` loop) must produce byte-identical profile documents —
the observer is a mechanism choice, never a semantics one.
"""

import json

import pytest

from repro.config.generator import build_tree
from repro.profile import (
    PROFILE_VERSION,
    CycleObserver,
    collect_profile,
    dumps,
    load_profile,
)
from repro.telemetry import ListSink, MetricsRegistry, Telemetry
from repro.vm.machine import VM
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload("cg", "S")


@pytest.fixture(scope="module")
def profile(workload):
    return collect_profile(workload)


class TestBitIdentity:
    def test_observer_and_native_profiles_are_byte_identical(self, workload):
        native = collect_profile(workload)
        observed = collect_profile(workload, use_observer=True)
        assert dumps(native) == dumps(observed)

    def test_observer_does_not_change_run_results(self, workload):
        plain = VM(workload.program, **workload.vm_params()).run()
        observer = CycleObserver()
        observed = VM(
            workload.program, observer=observer, **workload.vm_params()
        ).run()
        assert plain.values() == observed.values()
        assert plain.cycles == observed.cycles
        assert plain.steps == observed.steps

    def test_observer_counts_match_native_profile_counts(self, workload):
        observer = CycleObserver()
        vm = VM(workload.program, observer=observer, **workload.vm_params())
        vm.run()
        native_vm = VM(workload.program, profile=True, **workload.vm_params())
        native_vm.run()
        native = native_vm.instruction_stats()
        observed = native_vm.instruction_stats(counts=observer.counts())
        assert native == observed


class TestDocument:
    def test_versioned_and_totals_consistent(self, profile, workload):
        assert profile["version"] == PROFILE_VERSION
        assert profile["program"] == workload.program.name
        assert profile["steps"] > 0
        # Static attribution (execs x fall-through cost) sums to
        # attributed_cycles; the dynamic total also includes the extra
        # cost of taken branches, so it can only be larger.
        assert (
            sum(s["cycles"] for s in profile["sites"])
            == profile["attributed_cycles"]
        )
        assert profile["attributed_cycles"] <= profile["cycles"]
        assert profile["candidate_cycles"] <= profile["attributed_cycles"]

    def test_candidate_sites_carry_tree_nodes(self, profile, workload):
        tree = build_tree(workload.program)
        candidate_nodes = {s["node"] for s in profile["sites"] if s["node"]}
        assert candidate_nodes == set(
            node.node_id for node in tree.by_addr.values()
        )
        # Candidate cycles equal the sum over node-attributed sites.
        assert profile["candidate_cycles"] == sum(
            s["cycles"] for s in profile["sites"] if s["node"]
        )

    def test_rollups_sum_to_candidate_cycles(self, profile):
        for level in ("blocks", "functions", "modules"):
            rollup = profile[level]
            assert rollup, f"empty {level} rollup"
            assert (
                sum(entry["cycles"] for entry in rollup.values())
                == profile["candidate_cycles"]
            ), level

    def test_opcode_rollup_matches_sites(self, profile):
        per = {}
        for site in profile["sites"]:
            entry = per.setdefault(site["mnemonic"], [0, 0])
            entry[0] += site["execs"]
            entry[1] += site["cycles"]
        assert profile["opcodes"] == {
            m: {"execs": e, "cycles": c} for m, (e, c) in per.items()
        }

    def test_dumps_load_roundtrip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(dumps(profile))
        assert load_profile(str(path)) == profile
        # Canonical serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == profile

    def test_load_rejects_wrong_version(self, profile, tmp_path):
        stale = dict(profile, version=PROFILE_VERSION + 1)
        path = tmp_path / "stale.json"
        path.write_text(dumps(stale))
        with pytest.raises(ValueError, match="version"):
            load_profile(str(path))


class TestTelemetry:
    def test_emits_census_and_per_site_events(self, workload):
        sink = ListSink()
        registry = MetricsRegistry()
        with Telemetry(sinks=[sink], metrics=registry) as telemetry:
            doc = collect_profile(workload, telemetry=telemetry)
        census = [e for e in sink.events if e["kind"] == "profile.census"]
        sites = [e for e in sink.events if e["kind"] == "profile.site"]
        assert len(census) == 1
        assert census[0]["cycles"] == doc["cycles"]
        assert census[0]["sites"] == len(doc["sites"])
        assert len(sites) == len(doc["sites"])
        by_addr = {s["addr"]: s for s in sites}
        for site in doc["sites"]:
            event = by_addr[site["addr"]]
            assert event["execs"] == site["execs"]
            assert event["cycles"] == site["cycles"]
            assert event["node"] == site["node"]
        assert registry.counters["events.profile.census"] == 1

    def test_profile_events_pass_validation(self, workload):
        sink = ListSink()
        # conftest forces validate=True suite-wide; an invalid profile
        # event would raise inside collect_profile.
        with Telemetry(sinks=[sink]) as telemetry:
            assert telemetry.validate
            collect_profile(workload, telemetry=telemetry)
        assert any(e["kind"] == "profile.site" for e in sink.events)
