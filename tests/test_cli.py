"""Command-line interface."""

import re

import pytest

from repro.cli import main

SRC = """
fn main() {
    var s: real = 0.0;
    for i in 0 .. 25 { s = s + 0.5; }
    out(s);
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mh"
    path.write_text(SRC)
    return str(path)


class TestCompileRun:
    def test_compile_and_run_image(self, source_file, tmp_path, capsys):
        image = str(tmp_path / "prog.rpx")
        assert main(["compile", source_file, "-o", image]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "candidates" in out

        assert main(["run", image]) == 0
        out = capsys.readouterr().out
        assert "12.5" in out
        assert "cycles" in out

    def test_run_source_directly(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        assert "12.5" in capsys.readouterr().out

    def test_run_f32_build(self, source_file, capsys):
        assert main(["run", source_file, "--real", "f32"]) == 0
        assert "12.5" in capsys.readouterr().out

    def test_run_profile(self, source_file, capsys):
        assert main(["run", source_file, "--profile"]) == 0
        assert "hottest instructions" in capsys.readouterr().out

    def test_run_mpi(self, tmp_path, capsys):
        path = tmp_path / "pi.mh"
        path.write_text("fn main() { out(allreduce_sum(1.0)); }")
        assert main(["run", str(path), "--mpi", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 ranks" in out and "4.0" in out

    def test_bad_image_rejected(self, tmp_path):
        bogus = tmp_path / "x.rpx"
        import pickle

        bogus.write_bytes(pickle.dumps({"not": "a program"}))
        with pytest.raises(SystemExit, match="not a program image"):
            main(["run", str(bogus)])


class TestDisasmConfigView:
    def test_disasm(self, source_file, capsys):
        assert main(["disasm", source_file]) == 0
        out = capsys.readouterr().out
        assert "addsd" in out and ".func main" in out

    def test_config_roundtrip(self, source_file, tmp_path, capsys):
        cfg = str(tmp_path / "p.cfg")
        assert main(["config", source_file, "-o", cfg]) == 0
        text = open(cfg).read()
        assert "INSN01" in text
        # flag the first instruction single and instrument with it
        text = re.sub(r"^ (\s*INSN01)", r"s\1", text, flags=re.M)
        open(cfg, "w").write(text)
        image = str(tmp_path / "p.instr.rpx")
        assert main(["instrument", source_file, "--config", cfg, "-o", image]) == 0
        out = capsys.readouterr().out
        assert "1 single snippets" in out

        assert main(["run", image]) == 0
        out = capsys.readouterr().out
        # the accumulation ran in single precision
        assert "12.5" in out

    def test_config_to_stdout(self, source_file, capsys):
        assert main(["config", source_file]) == 0
        assert "# program:" in capsys.readouterr().out

    def test_view(self, source_file, capsys):
        assert main(["view", source_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "flag  effective" in out and "% execs" in out


class TestInstrumentShortcuts:
    def test_all_single_shortcut(self, source_file, tmp_path, capsys):
        image = str(tmp_path / "s.rpx")
        assert main(["instrument", source_file, "--all-single", "-o", image]) == 0
        assert main(["run", image]) == 0
        out = capsys.readouterr().out
        # single-precision accumulation of 0.5 is exact, so same value
        assert "12.5" in out

    def test_mode_all_bit_identical(self, source_file, tmp_path, capsys):
        image = str(tmp_path / "g.rpx")
        assert main(["instrument", source_file, "--mode", "all", "-o", image]) == 0
        capsys.readouterr()
        assert main(["run", image]) == 0
        instrumented = capsys.readouterr().out
        assert main(["run", source_file]) == 0
        original = capsys.readouterr().out
        assert instrumented.splitlines()[-1] == original.splitlines()[-1]


class TestSearchAndExperiment:
    def test_search_workload(self, tmp_path, capsys):
        cfg = str(tmp_path / "amg.cfg")
        assert main(["search", "amg", "S", "-o", cfg]) == 0
        out = capsys.readouterr().out
        assert "configurations tested" in out
        assert "final pass" in out
        assert "wrote configuration" in out
        assert "MODL01" in open(cfg).read()

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9", "S"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "ep.S" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            main(["search", "nonesuch"])


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestStoreCommand:
    def _populated_store(self, tmp_path):
        from repro.search.results import EvalOutcome
        from repro.store import ResultStore

        db = str(tmp_path / "results.sqlite")
        with ResultStore(db) as store:
            store.put("wl-a", "k1", EvalOutcome(True, 100, "", ""))
            store.put("wl-a", "k2", EvalOutcome(False, 0, "boom", "trap"))
            store.put("wl-b", "k1", EvalOutcome(True, 50, "", ""))
        return db

    def test_export_import_round_trip(self, tmp_path, capsys):
        from repro.store import ResultStore

        db = self._populated_store(tmp_path)
        dump = str(tmp_path / "dump.jsonl")
        assert main(["store", "export", db, dump]) == 0
        assert "exported 3 outcomes" in capsys.readouterr().out

        fresh = str(tmp_path / "fresh.sqlite")
        assert main(["store", "import", fresh, dump]) == 0
        assert "imported 3 outcomes" in capsys.readouterr().out
        with ResultStore(fresh) as store:
            assert store.count() == 3
            outcome = store.get("wl-a", "k2")
            assert not outcome.passed and outcome.reason == "trap"

    def test_export_filters_by_workload(self, tmp_path, capsys):
        db = self._populated_store(tmp_path)
        dump = str(tmp_path / "wl-a.jsonl")
        assert main(["store", "export", db, dump, "--workload", "wl-a"]) == 0
        assert "exported 2 outcomes" in capsys.readouterr().out
        lines = open(dump).read().splitlines()
        assert len(lines) == 2
        assert all('"workload": "wl-a"' in line for line in lines)

    def test_import_collision_fails_with_exit_one(self, tmp_path, capsys):
        from repro.search.results import EvalOutcome
        from repro.store import ResultStore

        db = self._populated_store(tmp_path)
        dump = str(tmp_path / "dump.jsonl")
        assert main(["store", "export", db, dump]) == 0
        capsys.readouterr()
        # A target holding a *different* outcome under the same key.
        clashing = str(tmp_path / "clash.sqlite")
        with ResultStore(clashing) as store:
            store.put("wl-a", "k1", EvalOutcome(False, 0, "", "verify"))
        assert main(["store", "import", clashing, dump]) == 1
        assert "store import:" in capsys.readouterr().err

    def test_import_same_rows_is_idempotent(self, tmp_path, capsys):
        from repro.store import ResultStore

        db = self._populated_store(tmp_path)
        dump = str(tmp_path / "dump.jsonl")
        assert main(["store", "export", db, dump]) == 0
        assert main(["store", "import", db, dump]) == 0  # repeats no-op
        capsys.readouterr()
        with ResultStore(db) as store:
            assert store.count() == 3


class TestTelemetryFlags:
    def test_search_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = str(tmp_path / "trace.jsonl")
        assert main(["search", "amg", "--class", "S", "--trace", trace,
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "configurations tested" in out
        assert "telemetry metrics:" in out
        assert "wrote trace to" in out

        from repro.telemetry import validate_event

        events = [json.loads(line) for line in open(trace)]
        for event in events:
            validate_event(event)
        kinds = {event["kind"] for event in events}
        assert len(kinds) >= 4
        assert {"search.begin", "search.end", "eval.config",
                "instr.stats", "vm.opcodes"} <= kinds

    def test_search_trace_count_matches_summary(self, tmp_path, capsys):
        import json
        import re as _re

        trace = str(tmp_path / "t.jsonl")
        assert main(["search", "amg", "S", "--trace", trace]) == 0
        out = capsys.readouterr().out
        tested = int(_re.search(r"(\d+) configurations tested", out).group(1))
        events = [json.loads(line) for line in open(trace)]
        assert sum(1 for e in events if e["kind"] == "eval.config") == tested

    def test_search_quiet_suppresses_summary(self, capsys):
        assert main(["search", "amg", "S", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_search_verbose_prints_history(self, capsys):
        assert main(["search", "amg", "S", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "history:" in out
        assert "configurations tested" in out

    def test_run_trace(self, source_file, tmp_path, capsys):
        import json

        trace = str(tmp_path / "run.jsonl")
        assert main(["run", source_file, "--trace", trace]) == 0
        assert "12.5" in capsys.readouterr().out
        events = [json.loads(line) for line in open(trace)]
        assert any(e["kind"] == "vm.opcodes" for e in events)

    def test_run_metrics(self, source_file, capsys):
        assert main(["run", source_file, "--metrics"]) == 0
        assert "telemetry metrics:" in capsys.readouterr().out

    def test_search_report_embeds_metrics(self, tmp_path, capsys):
        report = str(tmp_path / "r.md")
        assert main(["search", "amg", "S", "--metrics", "--report",
                     report]) == 0
        text = open(report).read()
        assert "## Telemetry metrics" in text
        assert "## Search history" in text
        assert "| # | configuration | phase | outcome | wall |" in text


PLUGIN_SOURCE = '''
from repro.sdk import WorkloadSpec
from repro.workloads.base import Workload

def make(klass):
    return Workload(name=f"cliplug.{klass}",
                    sources=["fn main() { out(2.0 + 2.0); }"], klass=klass)

WORKLOADS = [WorkloadSpec(name="cliplug", factory=make, classes=("T",),
                          description="cli plugin test workload")]
'''


class TestWorkloadsCommand:
    def test_lists_builtins(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("bt", "cg", "heat", "nekcg", "superlu"):
            assert name in out
        assert "built-in" in out
        assert "NAME" in out and "VERIFY" in out and "ORIGIN" in out

    def test_check_runs_conformance(self, capsys):
        assert main(["workloads", "--check"]) == 0
        out = capsys.readouterr().out
        assert "conformance heat.T: PASS" in out
        assert "conformance superlu.S: PASS" in out

    def test_plugin_listed_with_origin(self, tmp_path, capsys):
        path = tmp_path / "cliplug.py"
        path.write_text(PLUGIN_SOURCE)
        try:
            assert main(["workloads", "--plugin", str(path)]) == 0
            out = capsys.readouterr().out
            assert "cliplug" in out
            assert f"plugin:{path}" in out
        finally:
            from repro.workloads import REGISTRY

            REGISTRY.unregister("cliplug")

    def test_plugin_searchable(self, tmp_path, capsys):
        path = tmp_path / "cliplug.py"
        path.write_text(PLUGIN_SOURCE)
        try:
            assert main(["search", "cliplug", "--class", "T",
                         "--plugin", str(path)]) == 0
            out = capsys.readouterr().out
            assert "search cliplug" in out and "final pass" in out
        finally:
            from repro.workloads import REGISTRY

            REGISTRY.unregister("cliplug")

    def test_broken_plugin_exits_cleanly(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("raise RuntimeError('boom')\n")
        with pytest.raises(SystemExit, match="--plugin"):
            main(["workloads", "--plugin", str(path)])

    def test_unknown_workload_message_lists_names(self):
        with pytest.raises(KeyError, match="registered workloads"):
            main(["search", "nonesuch"])
