"""CFG construction and Program model invariants."""

import pytest

from repro.asm import assemble_text
from repro.binary import build_cfg, function_blocks
from repro.binary.cfg import CfgError
from repro.isa import Op
from tests.conftest import compile_src

BRANCHY = """
.func _start
    mov %r0, $0
    cmp %r0, $1
    je skip
    inc %r0
skip:
    mov %r1, $3
loop:
    dec %r1
    cmp %r1, $0
    jg loop
    halt
.endfunc
"""


class TestBlockStructure:
    def test_leaders_at_targets_and_after_branches(self):
        program = assemble_text(BRANCHY)
        blocks = program.functions[0].blocks
        # entry; after je; skip; loop; after jg
        assert len(blocks) == 5

    def test_blocks_partition_instructions(self):
        program = assemble_text(BRANCHY)
        fn = program.functions[0]
        total = sum(len(b) for b in fn.blocks)
        assert total == len(program.decode_all())

    def test_block_boundaries_are_contiguous(self):
        program = assemble_text(BRANCHY)
        fn = program.functions[0]
        for prev, cur in zip(fn.blocks, fn.blocks[1:]):
            assert prev.end == cur.start

    def test_successors(self):
        program = assemble_text(BRANCHY)
        blocks = program.functions[0].blocks
        by_start = {b.start: b for b in blocks}
        entry = blocks[0]
        assert len(entry.successors) == 2  # je: target + fallthrough
        last = blocks[-1]
        assert last.successors == ()  # halt
        loop = by_start[blocks[3].start]
        assert loop.start in loop.successors  # self-loop via jg

    def test_call_is_not_terminator(self):
        program = assemble_text(
            """
.func _start
    call f
    outi %r0
    halt
.endfunc
.func f
    mov %r0, $1
    ret
.endfunc
"""
        )
        entry_blocks = program.functions[0].blocks
        assert len(entry_blocks) == 1  # call + outi + halt in one block

    def test_branch_out_of_function_rejected(self):
        from repro.asm import AsmBuilder, LabelRef
        from repro.isa import Imm, Reg

        builder = AsmBuilder()
        builder.func("_start")
        builder.emit(Op.JMP, LabelRef("other"))  # jumps to another function
        builder.endfunc()
        builder.func("other")
        builder.emit(Op.HALT)
        builder.endfunc()
        with pytest.raises(CfgError, match="outside the function"):
            builder.link()


class TestProgramModel:
    def test_stats(self, simple_fp_program):
        stats = simple_fp_program.stats()
        assert stats["functions"] == 2  # _start + main
        assert stats["candidates"] > 0
        assert stats["text_bytes"] == len(simple_fp_program.text)

    def test_function_lookup(self, simple_fp_program):
        fn = simple_fp_program.function_named("main")
        assert simple_fp_program.function_at(fn.entry) is fn
        with pytest.raises(KeyError):
            simple_fp_program.function_named("ghost")

    def test_decode_all_covers_text(self, simple_fp_program):
        from repro.isa import encoded_length

        instrs = simple_fp_program.decode_all()
        total = sum(encoded_length(i) for i in instrs)
        assert total == len(simple_fp_program.text)

    def test_candidates_subset_of_instructions(self, simple_fp_program):
        candidates = simple_fp_program.candidate_instructions()
        assert candidates
        assert all(i.is_candidate for i in candidates)

    def test_debug_lines_present(self, simple_fp_program):
        assert simple_fp_program.debug_lines
        assert all(line > 0 for line in simple_fp_program.debug_lines.values())

    def test_compiled_blocks_match_rebuild(self, simple_fp_program):
        fn = simple_fp_program.function_named("main")
        rebuilt = function_blocks(simple_fp_program, fn)
        assert [b.start for b in rebuilt] == [b.start for b in fn.blocks]
