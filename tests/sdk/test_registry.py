"""The workload registry: spec validation, collisions, plugin loading."""

import textwrap

import pytest

from repro.sdk import (
    PluginError,
    RegistryError,
    UnknownWorkloadError,
    WorkloadRegistry,
    WorkloadSpec,
    load_plugin,
)
from repro.workloads import REGISTRY, make_workload
from repro.workloads.base import Workload


def _dummy_factory(klass, **kwargs):
    return Workload(
        name=f"dummy.{klass}",
        sources=["fn main() { out(1.0 + 2.0); }"],
        klass=klass,
    )


def _spec(name="dummy", **over):
    fields = dict(name=name, factory=_dummy_factory, classes=("T", "W"))
    fields.update(over)
    return WorkloadSpec(**fields)


def _registry():
    return WorkloadRegistry(discover_entry_points=False)


class TestWorkloadSpec:
    def test_defaults(self):
        spec = _spec()
        assert spec.default_class == "W"  # "W" preferred when present
        assert spec.smallest_class == "T"
        assert spec.verify == "baseline"
        assert spec.single_build

    def test_default_class_falls_back_to_first(self):
        assert _spec(classes=("S", "A")).default_class == "S"

    def test_smallest_class_uses_canonical_order(self):
        assert _spec(classes=("C", "A", "S")).smallest_class == "S"
        # unknown letters sort after the canonical table
        assert _spec(classes=("Z", "W")).smallest_class == "W"

    @pytest.mark.parametrize("name", ["", "has space", "a/b"])
    def test_bad_names_rejected(self, name):
        with pytest.raises(RegistryError):
            _spec(name=name)

    def test_bad_factory_rejected(self):
        with pytest.raises(RegistryError):
            _spec(factory="not callable")

    def test_empty_classes_rejected(self):
        with pytest.raises(RegistryError):
            _spec(classes=())

    def test_undeclared_default_class_rejected(self):
        with pytest.raises(RegistryError):
            _spec(default_class="C")

    def test_bad_verify_style_rejected(self):
        with pytest.raises(RegistryError):
            _spec(verify="vibes")

    def test_make_default_class(self):
        assert _spec().make().klass == "W"

    def test_make_unknown_class_lists_classes(self):
        with pytest.raises(KeyError, match=r"no class 'C'.*T, W"):
            _spec().make("C")

    def test_make_unknown_kwarg_lists_accepted(self):
        with pytest.raises(TypeError, match=r"thresold.*accepts: threshold"):
            _spec(kwargs=("threshold",)).make("T", thresold=1e-6)

    def test_make_unknown_kwarg_no_kwargs_spec(self):
        with pytest.raises(TypeError, match=r"accepts: none"):
            _spec().make("T", tolerance=0.1)


class TestRegistry:
    def test_register_and_make(self):
        reg = _registry()
        reg.register(_spec())
        assert "dummy" in reg
        assert reg.make("dummy", "T").name == "dummy.T"

    def test_collision_refused_without_override(self):
        reg = _registry()
        reg.register(_spec())
        with pytest.raises(RegistryError, match="already registered"):
            reg.register(_spec(description="second"))

    def test_collision_allowed_with_override(self):
        reg = _registry()
        reg.register(_spec())
        reg.register(_spec(description="second"), override=True)
        assert reg.get("dummy").description == "second"

    def test_non_spec_rejected(self):
        with pytest.raises(RegistryError, match="expected a WorkloadSpec"):
            _registry().register(object())

    def test_unknown_name_lists_registered(self):
        reg = _registry()
        reg.register(_spec("aaa"))
        reg.register(_spec("bbb"))
        with pytest.raises(UnknownWorkloadError) as info:
            reg.get("nonesuch")
        assert "aaa, bbb" in str(info.value)
        assert isinstance(info.value, KeyError)

    def test_unregister(self):
        reg = _registry()
        reg.register(_spec())
        reg.unregister("dummy")
        assert "dummy" not in reg
        reg.unregister("dummy")  # idempotent

    def test_names_sorted(self):
        reg = _registry()
        reg.register(_spec("zzz"))
        reg.register(_spec("aaa"))
        assert reg.names() == ["aaa", "zzz"]
        assert [s.name for s in reg.specs()] == ["aaa", "zzz"]


class TestBuiltinRegistrations:
    def test_builtins_present(self):
        names = REGISTRY.names()
        for name in ("bt", "cg", "ep", "ft", "lu", "mg", "sp",
                     "amg", "superlu", "heat", "nekcg"):
            assert name in names

    def test_make_workload_unknown_name(self):
        with pytest.raises(KeyError, match="registered workloads"):
            make_workload("nonesuch")

    def test_make_workload_unknown_kwarg(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            make_workload("cg", "S", threshold=1e-6)

    def test_make_workload_known_kwarg(self):
        assert make_workload("superlu", "S", threshold=1e-3).name == "superlu.S"

    def test_make_workload_unknown_class(self):
        with pytest.raises(KeyError, match="no class"):
            make_workload("superlu", "T")  # superlu starts at S


PLUGIN_OK = textwrap.dedent(
    """
    from repro.sdk import WorkloadSpec
    from repro.workloads.base import Workload

    def make(klass):
        return Workload(name=f"plug.{klass}",
                        sources=["fn main() { out(2.0 * 3.0); }"],
                        klass=klass)

    WORKLOADS = [WorkloadSpec(name="plug", factory=make, classes=("T",))]
    """
)

PLUGIN_REGISTER_FN = textwrap.dedent(
    """
    from repro.sdk import WorkloadSpec
    from repro.workloads.base import Workload

    def make(klass):
        return Workload(name=f"fnplug.{klass}",
                        sources=["fn main() { out(1.0); }"], klass=klass)

    def register(registry):
        registry.register(WorkloadSpec(name="fnplug", factory=make,
                                       classes=("T",)))
    """
)


class TestPluginLoading:
    def test_load_from_file_path(self, tmp_path):
        path = tmp_path / "myplug.py"
        path.write_text(PLUGIN_OK)
        reg = _registry()
        specs = load_plugin(str(path), reg)
        assert [s.name for s in specs] == ["plug"]
        assert reg.get("plug").origin == f"plugin:{path}"
        assert reg.make("plug", "T").run().values() == [6.0]

    def test_load_register_callable(self, tmp_path):
        path = tmp_path / "fnplug.py"
        path.write_text(PLUGIN_REGISTER_FN)
        reg = _registry()
        load_plugin(str(path), reg)
        assert "fnplug" in reg

    def test_load_named_attribute(self, tmp_path):
        path = tmp_path / "attrplug.py"
        path.write_text(PLUGIN_OK)
        reg = _registry()
        load_plugin(f"{path}:WORKLOADS", reg)
        assert "plug" in reg

    def test_missing_file(self):
        with pytest.raises(PluginError, match="not found"):
            load_plugin("no/such/file.py", _registry())

    def test_missing_module(self):
        with pytest.raises(PluginError, match="cannot import"):
            load_plugin("no_such_module_xyz", _registry())

    def test_module_with_no_exports(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        with pytest.raises(PluginError, match="neither WORKLOADS nor register"):
            load_plugin(str(path), _registry())

    def test_missing_attribute(self, tmp_path):
        path = tmp_path / "noattr.py"
        path.write_text(PLUGIN_OK)
        with pytest.raises(PluginError, match="no attribute 'NOPE'"):
            load_plugin(f"{path}:NOPE", _registry())

    def test_wrong_export_type(self, tmp_path):
        path = tmp_path / "wrong.py"
        path.write_text("WORKLOADS = [42]\n")
        with pytest.raises(PluginError, match="expected WorkloadSpec"):
            load_plugin(str(path), _registry())

    def test_broken_module(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("raise RuntimeError('boom')\n")
        with pytest.raises(PluginError, match="failed to load"):
            load_plugin(str(path), _registry())

    def test_empty_reference(self):
        with pytest.raises(PluginError, match="empty plugin reference"):
            load_plugin("", _registry())

    def test_collision_with_builtin_refused(self, tmp_path):
        path = tmp_path / "clash.py"
        path.write_text(PLUGIN_OK.replace('name="plug"', 'name="clash"'))
        reg = _registry()
        reg.register(_spec("clash"))
        with pytest.raises(RegistryError, match="already registered"):
            load_plugin(str(path), reg)


class TestEntryPoints:
    def test_discovery_collects_failures(self, monkeypatch):
        class _Point:
            name = "badplug"

            def load(self):
                raise ImportError("nope")

        import importlib.metadata as metadata

        monkeypatch.setattr(
            metadata, "entry_points", lambda group=None: [_Point()]
        )
        reg = WorkloadRegistry()
        assert "anything" not in reg  # triggers discovery; must not raise
        assert reg.plugin_errors == [("badplug", "nope")]

    def test_discovery_registers_specs(self, monkeypatch):
        spec = _spec("eptest")

        class _Point:
            name = "eptest"

            def load(self):
                return [spec]

        import importlib.metadata as metadata

        monkeypatch.setattr(
            metadata, "entry_points", lambda group=None: [_Point()]
        )
        reg = WorkloadRegistry()
        assert "eptest" in reg
        assert reg.get("eptest").origin == "entry-point:eptest"

    def test_discovery_runs_once(self, monkeypatch):
        calls = []

        import importlib.metadata as metadata

        monkeypatch.setattr(
            metadata, "entry_points",
            lambda group=None: calls.append(group) or [],
        )
        reg = WorkloadRegistry()
        assert "x" not in reg
        assert "y" not in reg
        assert len(calls) == 1
