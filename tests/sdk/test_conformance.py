"""The conformance harness: every built-in passes; broken workloads fail
the right check (not a later, more confusing one)."""

import pytest

from repro.sdk import (
    ConformanceError,
    WorkloadSpec,
    assert_conformant,
    run_conformance,
)
from repro.workloads import REGISTRY
from repro.workloads.base import Workload


def _names(report):
    return {c.name: c.passed for c in report.checks}


class TestBuiltinsConform:
    @pytest.mark.parametrize("name", sorted(
        "bt cg ep ft lu mg sp amg superlu heat nekcg".split()
    ))
    def test_builtin_passes(self, name):
        report = assert_conformant(REGISTRY.get(name))
        assert report.passed
        # every spec faces the core checks...
        for check in ("classes-enumerate", "build", "deterministic",
                      "baseline-verifies", "verify-style", "single-build",
                      "workload-id"):
            assert check in _names(report)
        # ...and SPMD specs additionally face the rank check
        assert ("mpi-ranks" in _names(report)) == REGISTRY.get(name).mpi

    def test_uses_smallest_class_by_default(self):
        report = run_conformance(REGISTRY.get("superlu"))
        assert report.klass == "S"  # superlu has no T
        report = run_conformance(REGISTRY.get("heat"))
        assert report.klass == "T"


def _simple(klass, source="fn main() { out(1.0 + 1.0); }", **kw):
    return Workload(name=f"t.{klass}", sources=[source], klass=klass, **kw)


class TestFailureModes:
    def test_factory_raises_skips_dependents(self):
        def broken(klass):
            raise RuntimeError("cannot build")

        spec = WorkloadSpec(name="broken", factory=broken, classes=("W",))
        report = run_conformance(spec)
        names = _names(report)
        assert not names["build"]
        # dependents are reported as not-run failures, not crashes
        assert not names["deterministic"]
        assert not names["workload-id"]
        assert "not run" in next(
            c.detail for c in report.checks if c.name == "deterministic"
        )

    def test_missing_contract_attribute_fails_build(self):
        class NotAWorkload:
            pass

        spec = WorkloadSpec(
            name="attrless", factory=lambda k: NotAWorkload(), classes=("W",)
        )
        report = run_conformance(spec)
        build = next(c for c in report.checks if c.name == "build")
        assert not build.passed
        assert "program" in build.detail

    def test_nondeterministic_run_fails(self):
        class Flaky:
            def __init__(self, inner):
                self._inner = inner
                self._count = 0

            def __getattr__(self, attr):
                return getattr(self._inner, attr)

            def run(self, program=None):
                self._count += 1
                result = self._inner.run(program)
                if self._count > 1:
                    class _Skewed:
                        cycles = result.cycles

                        def values(self):
                            return list(result.values()) + [1.0]

                    return _Skewed()
                return result

        spec = WorkloadSpec(
            name="flaky", factory=lambda k: Flaky(_simple(k)), classes=("W",)
        )
        report = run_conformance(spec)
        det = next(c for c in report.checks if c.name == "deterministic")
        assert not det.passed
        assert "different outputs" in det.detail

    def test_failing_baseline_fails(self):
        class NeverVerifies:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, attr):
                return getattr(self._inner, attr)

            def verify(self, result):
                return False

        spec = WorkloadSpec(
            name="never",
            factory=lambda k: NeverVerifies(_simple(k)),
            classes=("W",),
        )
        report = run_conformance(spec)
        base = next(c for c in report.checks if c.name == "baseline-verifies")
        assert not base.passed

    def test_non_bool_verify_fails_style(self):
        class Sloppy:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, attr):
                return getattr(self._inner, attr)

            def verify(self, result):
                return 1  # truthy but not bool

        spec = WorkloadSpec(
            name="sloppy", factory=lambda k: Sloppy(_simple(k)), classes=("W",)
        )
        report = run_conformance(spec)
        style = next(c for c in report.checks if c.name == "verify-style")
        assert not style.passed
        assert "not bool" in style.detail

    def test_declared_style_mismatch_fails(self):
        spec = WorkloadSpec(
            name="mismatch",
            factory=lambda k: _simple(k),  # verify_mode defaults to baseline
            classes=("W",),
            verify="self",
        )
        report = run_conformance(spec)
        style = next(c for c in report.checks if c.name == "verify-style")
        assert not style.passed

    def test_single_build_skipped_when_declared_absent(self):
        class BinaryOnly:
            def __init__(self, inner):
                self.program = inner.program
                self._inner = inner

            def run(self, program=None):
                return self._inner.run(program)

            def verify(self, result):
                return self._inner.verify(result)

        spec = WorkloadSpec(
            name="binonly",
            factory=lambda k: BinaryOnly(_simple(k)),
            classes=("W",),
            single_build=False,
        )
        report = run_conformance(spec)
        single = next(c for c in report.checks if c.name == "single-build")
        assert single.passed
        assert "skipped" in single.detail

    def test_unstable_factory_fails_workload_id(self):
        counter = {"n": 0}

        def factory(klass):
            counter["n"] += 1
            return _simple(klass, source=(
                f"fn main() {{ out(1.0 + {counter['n']}.0); }}"
            ))

        spec = WorkloadSpec(name="unstable", factory=factory, classes=("W",))
        report = run_conformance(spec)
        wid = next(c for c in report.checks if c.name == "workload-id")
        assert not wid.passed
        assert "not deterministic" in wid.detail

    def test_undeclared_class_fails_enumeration(self):
        spec = WorkloadSpec(
            name="classy", factory=lambda k: _simple(k), classes=("W",)
        )
        report = run_conformance(spec, klass="C")
        first = next(c for c in report.checks if c.name == "classes-enumerate")
        assert not first.passed

    def test_assert_conformant_raises_with_summary(self):
        spec = WorkloadSpec(
            name="broken2",
            factory=lambda k: (_ for _ in ()).throw(RuntimeError("no")),
            classes=("W",),
        )
        with pytest.raises(ConformanceError, match="broken2.W: FAIL"):
            assert_conformant(spec)


class TestReportFormat:
    def test_summary_shape(self):
        report = run_conformance(REGISTRY.get("heat"))
        text = report.summary()
        assert text.startswith("conformance heat.T: PASS")
        assert "workload-id" in text

    def test_outcome_str(self):
        report = run_conformance(REGISTRY.get("heat"))
        line = str(report.checks[0])
        assert "classes-enumerate" in line and "ok" in line
