"""Shared fixtures for the cluster test suite.

Serial reference results are session-scoped: every differential test
compares against the same uninterrupted serial search, so the (cheap but
not free) references run once per session.
"""

import contextlib
import threading

import pytest

from repro.cluster import run_worker
from repro.config.fileformat import dump_config
from repro.search import SearchEngine, SearchOptions
from repro.workloads import make_workload


@contextlib.contextmanager
def workers_running(address: str, count: int = 1, **kwargs):
    """Run *count* in-thread workers against *address* until the
    coordinator dismisses them (the engine closing its evaluator)."""
    threads = [
        threading.Thread(target=run_worker, args=(address,),
                         kwargs=kwargs, daemon=True)
        for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    try:
        yield threads
    finally:
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "worker never dismissed"


def serial_reference(name: str, klass: str):
    result = SearchEngine(make_workload(name, klass), SearchOptions()).run()
    return result, dump_config(result.final_config)


@pytest.fixture(scope="session")
def serial_cg():
    return serial_reference("cg", "T")


@pytest.fixture(scope="session")
def serial_mg():
    return serial_reference("mg", "T")
