"""CLI surface of the cluster subsystem: `search --cluster`, the
`serve` alias, and `worker` failure modes."""

import socket
import threading

import pytest

from repro.cli import main
from repro.cluster import run_worker


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _worker_thread(address: str) -> threading.Thread:
    # Generous dial retries: the coordinator binds inside main() after
    # this thread starts.
    thread = threading.Thread(
        target=run_worker, args=(address,),
        kwargs={"connect_retries": 100, "connect_backoff": 0.05},
        daemon=True,
    )
    thread.start()
    return thread


class TestSearchCluster:
    def test_search_cluster_flag(self, capsys):
        address = f"127.0.0.1:{_free_port()}"
        worker = _worker_thread(address)
        assert main(["search", "mg", "T", "--cluster", address]) == 0
        worker.join(timeout=30)
        assert not worker.is_alive()
        captured = capsys.readouterr()
        assert "configurations tested" in captured.out
        assert f"serving mg.T on {address}" in captured.err
        assert f"repro worker {address}" in captured.err

    def test_serve_alias(self, capsys):
        address = f"127.0.0.1:{_free_port()}"
        worker = _worker_thread(address)
        assert main(["serve", address, "mg", "T"]) == 0
        worker.join(timeout=30)
        assert "configurations tested" in capsys.readouterr().out


class TestWorkerCommand:
    def test_unreachable_coordinator_exits_one(self, capsys):
        address = f"127.0.0.1:{_free_port()}"  # nothing listening
        assert main(["worker", address, "--connect-retries", "0"]) == 1
        assert "cannot reach coordinator" in capsys.readouterr().err

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            main(["worker", "localhost"])
