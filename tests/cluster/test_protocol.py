"""Wire-protocol framing: the sync and asyncio endpoints must agree."""

import socket
import struct

import pytest

from repro.cluster.protocol import (
    MAX_FRAME,
    SUPPORTED_VERSIONS,
    UNSUPPORTED,
    ProtocolError,
    negotiate_version,
    offered_versions,
    outcome_from_wire,
    outcome_to_wire,
    pack_frame,
    parse_address,
    recv_frame,
    send_frame,
    unsupported_frame,
)
from repro.search.results import EvalOutcome


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        with a, b:
            message = {"type": "task", "flags": {"INSN01": "s"}, "task": 7}
            send_frame(a, message)
            assert recv_frame(b) == message

    def test_multiple_frames_in_order(self):
        a, b = _pair()
        with a, b:
            for i in range(5):
                send_frame(a, {"type": "lease", "n": i})
            for i in range(5):
                assert recv_frame(b)["n"] == i

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        with b:
            a.close()
            assert recv_frame(b) is None

    def test_eof_mid_frame_raises(self):
        a, b = _pair()
        with b:
            frame = pack_frame({"type": "lease"})
            a.sendall(frame[: len(frame) - 2])  # header + partial payload
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)

    def test_oversized_header_rejected(self):
        a, b = _pair()
        with a, b:
            a.sendall(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(ProtocolError, match="MAX_FRAME"):
                recv_frame(b)

    def test_oversized_message_rejected_at_send(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            pack_frame({"type": "task", "blob": "x" * (MAX_FRAME + 1)})

    def test_untyped_frame_rejected(self):
        a, b = _pair()
        with a, b:
            payload = b'{"no_type": 1}'
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="not a typed message"):
                recv_frame(b)

    def test_garbage_payload_rejected(self):
        a, b = _pair()
        with a, b:
            payload = b"\xff\xfe not json"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_frame(b)


class TestHelpers:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:80") == ("127.0.0.1", 80)
        assert parse_address("[::1]:0") == ("[::1]", 0)

    def test_parse_address_rejects_bare_host(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("localhost")

    def test_outcome_wire_round_trip(self):
        for outcome in (
            EvalOutcome(True, 1234, "", ""),
            EvalOutcome(False, 0, "fp overflow", "trap"),
            EvalOutcome(False, 99, "", "verify"),
        ):
            assert outcome_from_wire(outcome_to_wire(outcome)) == outcome


class TestNegotiation:
    def test_offered_versions_prefers_the_list(self):
        assert offered_versions({"versions": [3, 2, 2], "version": 1}) == [2, 3]

    def test_offered_versions_falls_back_to_scalar(self):
        # v2 workers send only the scalar "version" field
        assert offered_versions({"version": 2}) == [2]

    def test_offered_versions_ignores_junk(self):
        assert offered_versions({"versions": ["x", 2, None]}) == [2]
        assert offered_versions({"version": "nope"}) == []

    def test_negotiate_picks_highest_shared(self):
        assert negotiate_version({"versions": [2, 3]}, (2, 3)) == 3
        assert negotiate_version({"version": 2}, (2, 3)) == 2

    def test_negotiate_disjoint_is_none(self):
        assert negotiate_version({"versions": [1]}, (2, 3)) is None
        assert negotiate_version({}, (2, 3)) is None

    def test_unsupported_frame_names_both_sides(self):
        frame = unsupported_frame({"versions": [1]}, (2, 3))
        assert frame["type"] == UNSUPPORTED
        assert frame["supported"] == [2, 3]
        assert "[1]" in frame["message"]

    def test_defaults_track_the_module_constants(self):
        assert negotiate_version(
            {"versions": list(SUPPORTED_VERSIONS)}
        ) == max(SUPPORTED_VERSIONS)
