"""Coordinator behavior against hand-driven fake workers.

Real workers are exercised by the differential tests; here a raw socket
speaks the protocol directly so the lease lifecycle (versioning,
requeue, retry exhaustion, duplicate results, heartbeats) can be pinned
message by message.
"""

import socket
import threading
import time

import pytest

from repro.cluster import ClusterEvaluator, PROTOCOL_VERSION, SUPPORTED_VERSIONS
from repro.cluster.protocol import parse_address, recv_frame, send_frame
from repro.config.generator import build_tree
from repro.config.model import Config, Policy
from repro.search.results import REASON_WORKER_CRASH
from repro.search.retry import RetryPolicy
from repro.store import workload_id
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload("cg", "T")


@pytest.fixture(scope="module")
def tree(workload):
    return build_tree(workload.program)


@pytest.fixture
def evaluator(workload, tree):
    ev = ClusterEvaluator(
        workload, tree, retry=RetryPolicy(limit=2, backoff=0.001),
        lease_timeout=10.0,
    )
    yield ev
    ev.close()


class FakeWorker:
    """A raw-socket protocol client under full test control."""

    def __init__(self, address: str, version: int = PROTOCOL_VERSION):
        host, port = parse_address(address)
        self.sock = socket.create_connection((host, port), timeout=10)
        send_frame(self.sock, {
            "type": "hello", "version": version, "host": "fake", "pid": 1,
        })
        self.welcome = recv_frame(self.sock)

    def lease(self):
        send_frame(self.sock, {"type": "lease"})
        return recv_frame(self.sock)

    def lease_task(self, timeout: float = 10.0):
        """Poll through wait replies until a task arrives."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            reply = self.lease()
            if reply["type"] == "task":
                return reply
            assert reply["type"] == "wait"
            time.sleep(reply["delay"])
        raise AssertionError("no task leased within timeout")

    def result(self, task_id, passed=True, cycles=100, trap="", reason=""):
        send_frame(self.sock, {
            "type": "result", "task": task_id,
            "outcome": [passed, cycles, trap, reason],
            "deltas": [0, 0, 0, 0],
        })
        ack = recv_frame(self.sock)
        assert ack["type"] == "ok"

    def heartbeat(self):
        send_frame(self.sock, {"type": "heartbeat"})

    def close(self):
        self.sock.close()


def _batch_async(evaluator, configs):
    """Run evaluate_batch in a thread (it blocks on the fake worker)."""
    box = {}

    def run():
        box["outcomes"] = evaluator.evaluate_batch(configs)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


def _configs(tree, count):
    """Distinct single-flag configurations (never semantic duplicates)."""
    nodes = [n for n in tree.by_id.values() if not n.children][: count]
    assert len(nodes) == count
    configs = []
    for node in nodes:
        config = Config.all_double(tree)
        config.flags[node.node_id] = Policy.SINGLE
        configs.append(config)
    return configs


class TestHandshake:
    def test_welcome_describes_the_search(self, evaluator, workload):
        worker = FakeWorker(evaluator.address)
        try:
            assert worker.welcome["type"] == "welcome"
            assert worker.welcome["workload"] == "cg"
            assert worker.welcome["klass"] == "T"
            assert worker.welcome["workload_id"] == workload_id(workload)
            assert worker.welcome["version"] == PROTOCOL_VERSION
        finally:
            worker.close()
        assert evaluator.workers_seen == 1

    def test_version_mismatch_refused(self, evaluator):
        # v3 satellite: an unknown version gets a structured refusal
        # naming every acceptable version, then a clean close.
        worker = FakeWorker(evaluator.address, version=PROTOCOL_VERSION + 1)
        try:
            assert worker.welcome["type"] == "unsupported"
            assert worker.welcome["supported"] == sorted(SUPPORTED_VERSIONS)
            assert "version" in worker.welcome["message"]
            # clean close: EOF at a frame boundary, not a reset
            assert recv_frame(worker.sock) is None
        finally:
            worker.close()
        assert evaluator.workers_seen == 0

    def test_v2_worker_still_served(self, evaluator):
        # Version negotiation keeps plain-v2 workers usable against a
        # single-job coordinator: hello carries only `version: 2`.
        worker = FakeWorker(evaluator.address, version=2)
        try:
            assert worker.welcome["type"] == "welcome"
            assert worker.welcome["version"] == 2
        finally:
            worker.close()
        assert evaluator.workers_seen == 1

    def test_idle_lease_gets_wait(self, evaluator):
        worker = FakeWorker(evaluator.address)
        try:
            reply = worker.lease()
            assert reply["type"] == "wait"
            assert reply["delay"] > 0
        finally:
            worker.close()


class TestLeaseLifecycle:
    def test_batch_outcomes_in_submission_order(self, evaluator, tree):
        configs = _configs(tree, 2)
        thread, box = _batch_async(evaluator, configs)
        worker = FakeWorker(evaluator.address)
        try:
            t1 = worker.lease_task()
            t2 = worker.lease_task()
            # Answer out of order; results must come back in input order.
            worker.result(t2["task"], passed=False, cycles=0, reason="verify")
            worker.result(t1["task"], passed=True, cycles=111)
        finally:
            worker.close()
        thread.join(timeout=10)
        outcomes = box["outcomes"]
        assert outcomes[0].passed and outcomes[0].cycles == 111
        assert not outcomes[1].passed and outcomes[1].reason == "verify"
        assert evaluator.evaluations == 2
        assert evaluator.executions == 2
        assert evaluator.leases_granted == 2

    def test_duplicate_result_is_ignored(self, evaluator, tree):
        configs = _configs(tree, 2)
        thread, box = _batch_async(evaluator, configs)
        worker = FakeWorker(evaluator.address)
        try:
            t1 = worker.lease_task()
            t2 = worker.lease_task()
            worker.result(t1["task"], passed=True, cycles=10)
            worker.result(t1["task"], passed=False, cycles=0)  # dup: first wins
            worker.result(t2["task"], passed=True, cycles=20)
        finally:
            worker.close()
        thread.join(timeout=10)
        assert box["outcomes"][0].passed
        assert box["outcomes"][0].cycles == 10
        assert evaluator.evaluations == 2

    def test_lost_worker_lease_requeued_to_survivor(self, evaluator, tree):
        thread, box = _batch_async(evaluator, _configs(tree, 1))
        first = FakeWorker(evaluator.address)
        task = first.lease_task()
        first.close()  # EOF with the lease outstanding
        second = FakeWorker(evaluator.address)
        try:
            requeued = second.lease_task()
            assert requeued["task"] == task["task"]
            assert requeued["flags"] == task["flags"]
            second.result(requeued["task"], passed=True, cycles=42)
        finally:
            second.close()
        thread.join(timeout=10)
        assert box["outcomes"][0].passed
        assert evaluator.requeues == 1
        assert evaluator.workers_seen == 2

    def test_retry_exhaustion_classified_worker_crash(self, workload, tree):
        ev = ClusterEvaluator(
            workload, tree, retry=RetryPolicy(limit=0), lease_timeout=10.0,
        )
        try:
            thread, box = _batch_async(ev, _configs(tree, 1))
            worker = FakeWorker(ev.address)
            worker.lease_task()
            worker.close()  # limit=0: first loss exhausts the budget
            thread.join(timeout=10)
            outcome = box["outcomes"][0]
            assert not outcome.passed
            assert outcome.reason == REASON_WORKER_CRASH
            assert "cluster worker died" in outcome.trap
            assert ev.crashed_configs == 1
            assert ev.requeues == 0
        finally:
            ev.close()

    def test_heartbeats_do_not_break_pairing(self, evaluator, tree):
        thread, box = _batch_async(evaluator, _configs(tree, 1))
        worker = FakeWorker(evaluator.address)
        try:
            worker.heartbeat()
            task = worker.lease_task()
            worker.heartbeat()
            worker.result(task["task"], passed=True, cycles=5)
        finally:
            worker.close()
        thread.join(timeout=10)
        assert box["outcomes"][0].passed

    def test_silent_worker_expires_and_lease_requeues(self, workload, tree):
        ev = ClusterEvaluator(
            workload, tree, retry=RetryPolicy(limit=2, backoff=0.001),
            lease_timeout=0.2,
        )
        try:
            thread, box = _batch_async(ev, _configs(tree, 1))
            silent = FakeWorker(ev.address)
            silent.lease_task()
            # Say nothing: no heartbeat, no result.  The sweeper must
            # declare the worker lost and hand the lease to a live one.
            live = FakeWorker(ev.address)
            task = live.lease_task(timeout=15.0)
            live.result(task["task"], passed=True, cycles=9)
            live.close()
            silent.close()
            thread.join(timeout=10)
            assert box["outcomes"][0].passed
            assert ev.requeues == 1
        finally:
            ev.close()
