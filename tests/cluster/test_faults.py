"""Crash-fault differentials with real worker processes.

Two failure modes, both against a live coordinator:

* deterministic: a worker that ``os._exit``-s while holding a lease
  (the ``REPRO_WORKER_EXIT_SENTINEL`` crash-once idiom), plus a worker
  joining mid-search — the union of everything the paper's "many
  independent tests" machinery must shrug off;
* violent: SIGKILL of a worker process mid-batch.

In every case the final configuration and configs_tested must be
byte-identical to the serial engine, and the trace must show the lease
lifecycle (worker_lost, requeue) that made that possible.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.config.fileformat import dump_config
from repro.search import SearchEngine, SearchOptions
from repro.telemetry import JsonlSink, Telemetry
from repro.telemetry.events import validate_event
from repro.workloads import make_workload

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _spawn_worker(address, sentinel=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    if sentinel is not None:
        env["REPRO_WORKER_EXIT_SENTINEL"] = str(sentinel)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", address,
         "--quiet", "--connect-retries", "20"],
        env=env, cwd=_REPO,
    )


def _trace_kinds(path):
    kinds = {}
    with open(path) as handle:
        for line in handle:
            event = validate_event(json.loads(line))
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    return kinds


class TestWorkerFaults:
    def test_sentinel_crash_and_late_join_identical(self, tmp_path, serial_cg):
        reference, reference_config = serial_cg
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        trace = tmp_path / "trace.jsonl"

        telemetry = Telemetry(sinks=[JsonlSink(str(trace))])
        engine = SearchEngine(
            make_workload("cg", "T"),
            SearchOptions(cluster="127.0.0.1:0", workers=4, lease_timeout=5.0),
            telemetry=telemetry,
        )
        address = engine.evaluator.address
        procs = [
            _spawn_worker(address, sentinel=sentinel),  # dies on first task
            _spawn_worker(address),
        ]

        def late_join():
            # Join once the search is demonstrably under way.
            deadline = time.monotonic() + 30
            while (engine.evaluator.leases_granted < 2
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            procs.append(_spawn_worker(address))

        joiner = threading.Thread(target=late_join, daemon=True)
        joiner.start()
        with telemetry:
            result = engine.run()
        joiner.join(timeout=30)
        for proc in procs:
            proc.wait(timeout=30)

        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested
        assert not sentinel.exists(), "crash sentinel never consumed"
        assert procs[0].returncode == 1  # the os._exit(1) crash
        assert procs[1].returncode == 0

        kinds = _trace_kinds(trace)
        assert kinds.get("cluster.worker_join", 0) >= 2
        assert kinds["cluster.worker_lost"] >= 1
        assert kinds["cluster.requeue"] >= 1
        assert kinds["eval.config"] == reference.configs_tested

    def test_sigkill_mid_batch_identical(self, tmp_path, serial_cg):
        reference, reference_config = serial_cg
        trace = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sinks=[JsonlSink(str(trace))])
        engine = SearchEngine(
            make_workload("cg", "T"),
            SearchOptions(cluster="127.0.0.1:0", workers=4, lease_timeout=5.0),
            telemetry=telemetry,
        )
        address = engine.evaluator.address
        victim = _spawn_worker(address)
        survivor = None
        box = {}

        def murder():
            # SIGKILL the only worker once it has taken leases, then
            # bring up a replacement to finish the search.
            deadline = time.monotonic() + 30
            while (engine.evaluator.leases_granted < 2
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
            box["survivor"] = _spawn_worker(address)

        killer = threading.Thread(target=murder, daemon=True)
        killer.start()
        with telemetry:
            result = engine.run()
        killer.join(timeout=30)
        victim.wait(timeout=30)
        survivor = box.get("survivor")
        assert survivor is not None
        survivor.wait(timeout=30)

        assert victim.returncode == -signal.SIGKILL
        assert survivor.returncode == 0
        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested

        kinds = _trace_kinds(trace)
        assert kinds["cluster.worker_lost"] >= 1
        assert kinds.get("cluster.worker_join", 0) >= 2
