"""The cluster differential: a distributed search must be byte-identical
to the serial engine — same final configuration, same configs_tested —
no matter how many workers serve it.
"""

import json

import pytest

from repro.campaign import Campaign
from repro.config.fileformat import dump_config
from repro.search import SearchEngine, SearchOptions
from repro.store import ResultStore
from repro.workloads import make_workload

from tests.cluster.conftest import workers_running


def _cluster_options(**kwargs):
    defaults = dict(cluster="127.0.0.1:0", workers=4, lease_timeout=10.0)
    defaults.update(kwargs)
    return SearchOptions(**defaults)


def _run_cluster(name, klass, options, worker_count, **engine_kwargs):
    engine = SearchEngine(make_workload(name, klass), options, **engine_kwargs)
    with workers_running(engine.evaluator.address, worker_count):
        return engine.run()


class TestDifferential:
    def test_one_worker_matches_serial_on_cg(self, serial_cg):
        reference, reference_config = serial_cg
        result = _run_cluster("cg", "T", _cluster_options(), 1)
        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested
        assert result.final_verified == reference.final_verified

    def test_four_workers_match_serial_on_cg(self, serial_cg):
        reference, reference_config = serial_cg
        result = _run_cluster("cg", "T", _cluster_options(), 4)
        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested

    def test_cluster_matches_serial_on_mg(self, serial_mg):
        reference, reference_config = serial_mg
        result = _run_cluster("mg", "T", _cluster_options(workers=2), 2)
        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested

    def test_batch_size_does_not_change_the_search(self, serial_cg):
        reference, reference_config = serial_cg
        result = _run_cluster("cg", "T", _cluster_options(workers=7), 2)
        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested


class TestStoreIntegration:
    def test_warm_rerun_executes_nothing(self, tmp_path, serial_cg):
        reference, reference_config = serial_cg
        db = str(tmp_path / "results.sqlite")
        with ResultStore(db) as store:
            first = _run_cluster(
                "cg", "T", _cluster_options(), 2, store=store,
            )
            assert dump_config(first.final_config) == reference_config

        # Warm re-run over the same store: every outcome replays
        # parent-side, so no task is ever leased — the search finishes
        # with ZERO workers connected.
        with ResultStore(db) as store:
            engine = SearchEngine(
                make_workload("cg", "T"), _cluster_options(), store=store,
            )
            warm = engine.run()
            assert engine.evaluator.executions == 0
            assert engine.evaluator.leases_granted == 0
        assert dump_config(warm.final_config) == reference_config
        assert warm.configs_tested == reference.configs_tested

    def test_campaign_interrupt_resume_identical(self, tmp_path, serial_cg):
        reference, reference_config = serial_cg
        options = _cluster_options()
        workdir = tmp_path / "camp"

        campaign = Campaign.create(workdir, "cg", "T", options)
        campaign.interrupt_after = 2  # simulated coordinator SIGKILL
        engine = SearchEngine(
            make_workload("cg", "T"), options, campaign=campaign,
        )
        with pytest.raises(KeyboardInterrupt):
            with workers_running(engine.evaluator.address, 2):
                engine.run()
        campaign.close()
        meta = json.loads((workdir / "campaign.json").read_text())
        assert meta["status"] == "interrupted"

        with Campaign.open(workdir) as resumed_campaign:
            # The durable options carry the old (now meaningless) bind
            # address; rebind to a fresh port as the CLI's --resume does.
            engine = SearchEngine(
                make_workload("cg", "T"), options, campaign=resumed_campaign,
            )
            with workers_running(engine.evaluator.address, 2):
                result = engine.run()
        assert result.resumed
        assert dump_config(result.final_config) == reference_config
        assert result.configs_tested == reference.configs_tested
