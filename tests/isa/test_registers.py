"""Register-file conventions."""

import pytest

from repro.isa import registers


class TestNames:
    def test_gpr_names(self):
        assert registers.gpr_name(0) == "r0"
        assert registers.gpr_name(15) == "r15"
        with pytest.raises(ValueError):
            registers.gpr_name(16)
        with pytest.raises(ValueError):
            registers.gpr_name(-1)

    def test_xmm_names(self):
        assert registers.xmm_name(7) == "x7"
        with pytest.raises(ValueError):
            registers.xmm_name(99)

    def test_aliases(self):
        assert registers.GPR_BY_NAME["sp"] == registers.STACK_POINTER == 15
        assert registers.GPR_BY_NAME["fp"] == registers.FRAME_POINTER == 14


class TestReservations:
    def test_snippet_registers_disjoint_from_compiler_temps(self):
        assert not set(registers.SNIPPET_GPRS) & set(registers.COMPILER_GPR_TEMPS)
        assert not set(registers.SNIPPET_XMMS) & set(registers.COMPILER_XMM_TEMPS)
        assert registers.COMPILER_SCRATCH_GPR not in registers.SNIPPET_GPRS

    def test_frame_and_stack_not_temps(self):
        assert registers.FRAME_POINTER not in registers.COMPILER_GPR_TEMPS
        assert registers.STACK_POINTER not in registers.COMPILER_GPR_TEMPS

    def test_compiled_code_respects_reservations(self):
        """No compiler output may ever touch the snippet registers — the
        invariant that makes streamlined instrumentation legal."""
        from repro.instrument.engine import _scratch_registers_unused
        from repro.workloads import make_nas, make_workload

        for name in ("ep", "cg", "ft", "mg", "bt", "lu", "sp"):
            assert _scratch_registers_unused(make_nas(name, "S").program), name
        assert _scratch_registers_unused(make_workload("superlu", "S").program)
        assert _scratch_registers_unused(make_workload("amg", "S").program)
