"""Opcode metadata invariants the analysis passes rely on."""

import pytest

from repro.isa import CANDIDATE_OPS, Imm, Instruction, IsaError, Op, OPCODE_INFO, Reg, Xmm
from repro.isa.instruction import validate_signature


class TestTableCompleteness:
    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OPCODE_INFO

    def test_mnemonics_unique(self):
        names = [info.mnemonic for info in OPCODE_INFO.values()]
        assert len(names) == len(set(names))

    def test_every_candidate_has_single_equivalent(self):
        for op in CANDIDATE_OPS:
            info = OPCODE_INFO[op]
            assert info.single_equiv is not None
            # and the equivalent must not itself be a candidate
            assert OPCODE_INFO[info.single_equiv].single_equiv is None


class TestCandidateSet:
    def test_arithmetic_is_candidate(self):
        for op in (Op.ADDSD, Op.SUBSD, Op.MULSD, Op.DIVSD, Op.SQRTSD,
                   Op.UCOMISD, Op.CVTSI2SD, Op.CVTTSD2SI, Op.SINSD,
                   Op.ADDPD, Op.MULPD):
            assert op in CANDIDATE_OPS

    def test_data_movement_is_not_candidate(self):
        # Moves carry replaced slots verbatim; replacing them would drop
        # the sentinel on 32-bit stores.
        for op in (Op.MOVSD, Op.MOVAPD, Op.MOVSS, Op.MOVQXR, Op.MOVQRX):
            assert op not in CANDIDATE_OPS

    def test_mpi_is_not_candidate(self):
        for op in (Op.ALLRED, Op.ALLREDV, Op.BCASTSD, Op.BARRIER):
            assert op not in CANDIDATE_OPS

    def test_single_precision_ops_are_not_candidates(self):
        for op in (Op.ADDSS, Op.MULSS, Op.SQRTSS, Op.UCOMISS):
            assert op not in CANDIDATE_OPS


class TestFpInOut:
    def test_binary_arith_reads_both(self):
        info = OPCODE_INFO[Op.ADDSD]
        assert info.fp_in == (0, 1) and info.fp_out == (0,)

    def test_sqrt_reads_source_only(self):
        info = OPCODE_INFO[Op.SQRTSD]
        assert info.fp_in == (1,) and info.fp_out == (0,)

    def test_compare_has_no_fp_out(self):
        info = OPCODE_INFO[Op.UCOMISD]
        assert info.fp_in == (0, 1) and info.fp_out == ()

    def test_int_to_fp_conversion(self):
        info = OPCODE_INFO[Op.CVTSI2SD]
        assert info.fp_in == () and info.fp_out == (0,)

    def test_fp_to_int_conversion(self):
        info = OPCODE_INFO[Op.CVTTSD2SI]
        assert info.fp_in == (1,) and info.fp_out == ()

    def test_packed_flagged(self):
        assert OPCODE_INFO[Op.ADDPD].packed
        assert OPCODE_INFO[Op.ADDPS].packed
        assert not OPCODE_INFO[Op.ADDSD].packed


class TestSignatureValidation:
    def test_valid_forms_accepted(self):
        validate_signature(Op.ADDSD, (Xmm(0), Xmm(1)))
        validate_signature(Op.MOV, (Reg(0), Imm(5)))

    def test_wrong_kind_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Op.ADDSD, (Reg(0), Xmm(1)))

    def test_wrong_arity_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Op.ADDSD, (Xmm(0),))

    def test_store_immediate_rejected_for_fp(self):
        from repro.isa import Mem

        with pytest.raises(IsaError):
            Instruction(Op.MOVSD, (Mem(disp=0), Imm(1)))


class TestBranchMetadata:
    def test_terminators(self):
        assert OPCODE_INFO[Op.RET].is_terminator
        assert OPCODE_INFO[Op.HALT].is_terminator
        assert OPCODE_INFO[Op.JMP].is_terminator
        assert not OPCODE_INFO[Op.JE].is_terminator

    def test_conditional_branches_read_flags(self):
        for op in (Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JP, Op.JNP):
            info = OPCODE_INFO[op]
            assert info.is_cond_branch and info.reads_flags

    def test_branch_target_helper(self):
        instr = Instruction(Op.JMP, (Imm(100),))
        assert instr.branch_target() == 100
        assert Instruction(Op.ADD, (Reg(0), Reg(1))).branch_target() is None
