"""Instruction encode/decode round-trip (the XED stand-in)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    Imm,
    Instruction,
    IsaError,
    Mem,
    Op,
    OPCODE_INFO,
    Reg,
    Xmm,
    decode_instruction,
    encode_instruction,
    encoded_length,
)


def roundtrip(instr: Instruction) -> Instruction:
    raw = encode_instruction(instr)
    decoded, size = decode_instruction(raw, 0)
    assert size == len(raw) == encoded_length(instr)
    return decoded


class TestScalarRoundtrips:
    def test_no_operands(self):
        assert roundtrip(Instruction(Op.HALT)).opcode is Op.HALT

    def test_reg_reg(self):
        instr = Instruction(Op.ADD, (Reg(3), Reg(7)))
        back = roundtrip(instr)
        assert back.opcode is Op.ADD and back.operands == (Reg(3), Reg(7))

    def test_xmm_xmm(self):
        instr = Instruction(Op.ADDSD, (Xmm(0), Xmm(15)))
        assert roundtrip(instr).operands == (Xmm(0), Xmm(15))

    def test_imm_negative(self):
        instr = Instruction(Op.MOV, (Reg(1), Imm(-123456789)))
        assert roundtrip(instr).operands[1] == Imm(-123456789)

    def test_imm_high_bit_pattern(self):
        # Raw 64-bit patterns (e.g. the flag constant) survive as bits.
        instr = Instruction(Op.MOV, (Reg(1), Imm(0x7FF4DEAD00000000)))
        back = roundtrip(instr)
        assert back.operands[1].value & 0xFFFFFFFFFFFFFFFF == 0x7FF4DEAD00000000

    def test_mem_full_form(self):
        mem = Mem(base=2, index=5, scale=8, disp=-64)
        back = roundtrip(Instruction(Op.MOVSD, (Xmm(1), mem)))
        assert back.operands[1] == mem

    def test_mem_absolute(self):
        mem = Mem(disp=4096)
        back = roundtrip(Instruction(Op.MOV, (Reg(0), mem)))
        assert back.operands[1] == mem


_GPRS = st.integers(min_value=0, max_value=15)
_IMMS = st.integers(min_value=-(2**63), max_value=2**63 - 1)


@st.composite
def instructions(draw):
    """Random valid instructions across the operand-form space."""
    op = draw(st.sampled_from(sorted(OPCODE_INFO, key=int)))
    info = OPCODE_INFO[op]
    sig = draw(st.sampled_from(list(info.sigs)))
    operands = []
    for allowed in sig:
        kind = draw(st.sampled_from(list(allowed)))
        if kind == "R":
            operands.append(Reg(draw(_GPRS)))
        elif kind == "X":
            operands.append(Xmm(draw(_GPRS)))
        elif kind == "I":
            if op in (Op.PEXTR, Op.PINSR):
                operands.append(Imm(draw(st.integers(0, 1))))
            else:
                operands.append(Imm(draw(_IMMS)))
        else:
            operands.append(
                Mem(
                    base=draw(st.one_of(st.none(), _GPRS)),
                    index=draw(st.one_of(st.none(), _GPRS)),
                    scale=draw(st.sampled_from([1, 2, 4, 8])),
                    disp=draw(st.integers(-(2**31), 2**31 - 1)),
                )
            )
    return Instruction(op, tuple(operands))


class TestPropertyRoundtrip:
    @given(instructions())
    def test_encode_decode_identity(self, instr):
        back = roundtrip(instr)
        assert back.opcode is instr.opcode
        assert back.operands == instr.operands

    @given(instructions())
    def test_length_matches(self, instr):
        assert len(encode_instruction(instr)) == encoded_length(instr)


class TestStreamDecoding:
    def test_sequential_decode(self):
        stream = [
            Instruction(Op.MOV, (Reg(0), Imm(1))),
            Instruction(Op.ADDSD, (Xmm(0), Xmm(1))),
            Instruction(Op.RET),
        ]
        blob = b"".join(encode_instruction(i) for i in stream)
        offset = 0
        for expected in stream:
            decoded, size = decode_instruction(blob, offset)
            assert decoded.opcode is expected.opcode
            assert decoded.addr == offset
            offset += size
        assert offset == len(blob)

    def test_truncated_raises(self):
        raw = encode_instruction(Instruction(Op.MOV, (Reg(0), Imm(1))))
        with pytest.raises(IsaError):
            decode_instruction(raw[:2], 0)

    def test_unknown_opcode_raises(self):
        with pytest.raises(IsaError):
            decode_instruction(b"\xff\xff\x00", 0)
