"""Fair-share scheduling: leases interleave across concurrent campaigns
and per-tenant in-flight quotas are never exceeded — observed through
the coordinator's lease log, not timing.
"""

from repro.service.jobs import COMPLETE

from tests.service.conftest import service_running


def test_leases_interleave_across_concurrent_jobs(tmp_path):
    with service_running(tmp_path, workers=2, lease_log=True) as svc:
        first = svc.submit("cg", "T", tenant="alice")
        second = svc.submit("cg", "T", tenant="bob")
        assert svc.wait_all(timeout=300)
        assert first.state == COMPLETE, first.error
        assert second.state == COMPLETE, second.error
        log = svc.lease_log()
    jobs = [entry[0] for entry in log]
    assert set(jobs) >= {first.job_id, second.job_id}
    # Deficit round-robin: neither campaign runs to completion before
    # the other gets a lease — each job's grants start before the other
    # job's grants end.
    last = {job: len(jobs) - 1 - jobs[::-1].index(job)
            for job in (first.job_id, second.job_id)}
    assert jobs.index(first.job_id) < last[second.job_id]
    assert jobs.index(second.job_id) < last[first.job_id]


def test_tenant_inflight_quota_is_a_ceiling(tmp_path):
    with service_running(
        tmp_path, workers=2, lease_log=True, max_inflight=1
    ) as svc:
        first = svc.submit("cg", "T", tenant="alice")
        second = svc.submit("mg", "T", tenant="alice")
        assert svc.wait_all(timeout=300)
        assert first.state == COMPLETE, first.error
        assert second.state == COMPLETE, second.error
        log = svc.lease_log()
    assert log, "quota run granted no leases"
    # every grant is logged with the tenant's in-flight count *after*
    # the grant — the quota means it can never exceed 1
    assert all(entry[1] == "alice" for entry in log)
    assert max(entry[2] for entry in log) == 1


def test_two_tenants_each_get_their_own_quota(tmp_path):
    with service_running(
        tmp_path, workers=4, lease_log=True, max_inflight=2
    ) as svc:
        first = svc.submit("cg", "T", tenant="alice")
        second = svc.submit("cg", "T", tenant="bob")
        assert svc.wait_all(timeout=300)
        assert first.state == COMPLETE, first.error
        assert second.state == COMPLETE, second.error
        log = svc.lease_log()
    by_tenant = {}
    for _job, tenant, inflight in log:
        by_tenant.setdefault(tenant, []).append(inflight)
    assert set(by_tenant) == {"alice", "bob"}
    for tenant, counts in by_tenant.items():
        assert max(counts) <= 2, f"{tenant} exceeded its in-flight quota"
