"""Shared fixtures for the job-service test suite.

The serial references mirror ``tests/cluster/conftest``: every
differential test compares a service-hosted campaign against the same
uninterrupted serial search.

``service_running`` exists because worker lifetime differs from the
single-job cluster: a service coordinator outlives its jobs, so idle
workers are only dismissed when the *service* closes — the context
manager closes the service first, then joins the worker threads.
"""

import contextlib
import threading

import pytest

from repro.cluster import run_worker
from repro.service import PrecisionService

from tests.cluster.conftest import serial_reference


@contextlib.contextmanager
def service_running(tmp_path, workers: int = 0, **kwargs):
    """A PrecisionService plus *workers* in-thread pool workers; closing
    the service dismisses them."""
    kwargs.setdefault("bind", "127.0.0.1:0")
    service = PrecisionService(str(tmp_path / "svc"), **kwargs)
    threads = [
        threading.Thread(target=run_worker, args=(service.address,),
                         daemon=True)
        for _ in range(workers)
    ]
    for thread in threads:
        thread.start()
    try:
        yield service
    finally:
        service.close()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "worker never dismissed"


@pytest.fixture(scope="session")
def serial_cg():
    return serial_reference("cg", "T")


@pytest.fixture(scope="session")
def serial_mg():
    return serial_reference("mg", "T")
