"""The service differentials: campaigns hosted on a shared pool must be
byte-identical to standalone serial searches — concurrency, cross-tenant
dedup, and even a cancelled neighbour must not perturb a job's
trajectory.
"""

import json
import os
import time

from repro.service.jobs import CANCELLED, COMPLETE, FAILED, RUNNING

from tests.service.conftest import service_running


class TestDifferential:
    def test_two_concurrent_jobs_match_serial(
        self, tmp_path, serial_cg, serial_mg
    ):
        cg_reference, cg_config = serial_cg
        mg_reference, mg_config = serial_mg
        with service_running(tmp_path, workers=2) as svc:
            cg_job = svc.submit("cg", "T", tenant="alice")
            mg_job = svc.submit("mg", "T", tenant="bob")
            assert svc.wait_all(timeout=300)
            assert cg_job.state == COMPLETE, cg_job.error
            assert mg_job.state == COMPLETE, mg_job.error
            assert cg_job.config_text == cg_config
            assert cg_job.tested == cg_reference.configs_tested
            assert mg_job.config_text == mg_config
            assert mg_job.tested == mg_reference.configs_tested

    def test_cross_tenant_dedup_second_job_executes_nothing(
        self, tmp_path, serial_cg
    ):
        reference, reference_config = serial_cg
        with service_running(tmp_path, workers=2) as svc:
            first = svc.submit("cg", "T", tenant="alice")
            assert svc.wait_all(timeout=300)
            second = svc.submit("cg", "T", tenant="bob")
            assert svc.wait_all(timeout=300)
            assert first.state == COMPLETE, first.error
            assert second.state == COMPLETE, second.error
            # Same policy, same store: every outcome replays from the
            # shared ResultStore, so the second tenant never leases a
            # single execution to the pool.
            assert second.executions == 0
            assert second.store_replays > 0
            assert second.config_text == first.config_text == reference_config
            assert second.tested == reference.configs_tested

    def test_cancel_leaves_the_other_job_untouched(
        self, tmp_path, serial_mg
    ):
        reference, reference_config = serial_mg
        with service_running(tmp_path, workers=2) as svc:
            victim = svc.submit("cg", "T", tenant="alice")
            survivor = svc.submit("mg", "T", tenant="bob")
            # wait until the victim is demonstrably mid-flight
            deadline = time.monotonic() + 60
            while victim.status()["executions"] == 0:
                assert time.monotonic() < deadline, "victim never started"
                assert victim.state not in (COMPLETE, FAILED)
                time.sleep(0.01)
            svc.cancel(victim.job_id)
            assert svc.wait_all(timeout=300)
            assert victim.state == CANCELLED
            assert survivor.state == COMPLETE, survivor.error
            assert survivor.config_text == reference_config
            assert survivor.tested == reference.configs_tested

    def test_cancel_is_idempotent_and_safe_on_terminal_jobs(self, tmp_path):
        with service_running(tmp_path, workers=1) as svc:
            job = svc.submit("mg", "T")
            assert svc.wait_all(timeout=300)
            assert job.state == COMPLETE, job.error
            assert svc.cancel(job.job_id) == COMPLETE
            assert svc.cancel("j99") is None
            assert job.state == COMPLETE


class TestJobArtifacts:
    def test_job_directory_layout(self, tmp_path):
        with service_running(tmp_path, workers=1) as svc:
            job = svc.submit("mg", "T")
            assert svc.wait_all(timeout=300)
            assert job.state == COMPLETE, job.error
            for name in (
                "campaign.json", "journal.jsonl", "trace.jsonl",
                "config.txt", "result.json", "metrics.txt",
            ):
                assert os.path.exists(os.path.join(job.path, name)), name
            payload = json.loads(
                open(os.path.join(job.path, "result.json")).read()
            )
            assert payload["tested"] == job.tested
            assert payload["row"]["benchmark"] == "mg.T"
            meta = json.loads(
                open(os.path.join(svc.root, "service.json")).read()
            )
            assert meta["address"] == svc.address

    def test_unknown_workload_fails_cleanly(self, tmp_path):
        # Direct (in-process) submit skips the wire-level validation;
        # the job must land in "failed" with the error recorded, not
        # take the service down.
        with service_running(tmp_path) as svc:
            job = svc.submit("nosuch", "T")
            assert svc.wait_all(timeout=60)
            assert job.state == FAILED
            assert "nosuch" in job.error

    def test_cancel_without_workers_never_executes(self, tmp_path):
        # No workers: the job blocks on its first batch until cancelled.
        with service_running(tmp_path) as svc:
            job = svc.submit("cg", "T")
            deadline = time.monotonic() + 60
            while job.state != RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            svc.cancel(job.job_id)
            assert svc.wait_all(timeout=60)
            assert job.state == CANCELLED
            assert job.executions == 0
