"""The wire protocol as a client sees it: submit/status/result/cancel/
list round-trips, structured rejections, and version negotiation at the
service's front door.
"""

import os
import socket

import pytest

from repro.cluster.protocol import (
    HELLO,
    ROLE_WORKER,
    UNSUPPORTED,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.service import ServiceClient, ServiceError
from repro.service.jobs import COMPLETE

from tests.service.conftest import service_running


@pytest.fixture
def service(tmp_path):
    with service_running(tmp_path, max_queued=2) as svc:
        yield svc


class TestRoundTrips:
    def test_submit_wait_result_over_the_wire(self, tmp_path, serial_mg):
        reference, reference_config = serial_mg
        with service_running(tmp_path, workers=1) as svc:
            with ServiceClient(svc.address) as client:
                job_id = client.submit("mg", "T", tenant="alice")
                assert job_id == "j1"
                reply = client.wait(job_id, timeout=300)
            assert reply["state"] == COMPLETE
            assert reply["config"] == reference_config
            assert reply["row"]["benchmark"] == "mg.T"
            assert reply["tested"] == reference.configs_tested

    def test_status_and_list(self, service):
        with ServiceClient(service.address) as client:
            job_id = client.submit("cg", "T", tenant="alice")
            status = client.status(job_id)
            assert status["job"] == job_id
            assert status["state"] in ("queued", "running")
            listed = client.jobs()
            assert [job["job"] for job in listed] == [job_id]
            assert listed[0]["tenant"] == "alice"
            client.cancel(job_id)
        assert service.wait_all(timeout=60)

    def test_cancel_over_the_wire(self, service):
        with ServiceClient(service.address) as client:
            job_id = client.submit("cg", "T")
            reply = client.cancel(job_id)
            assert reply["job"] == job_id
        assert service.wait_all(timeout=60)
        assert service.registry.get(job_id).state == "cancelled"


class TestRejections:
    def test_unknown_workload_is_rejected(self, service):
        with ServiceClient(service.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit("nosuch", "T")
            assert excinfo.value.code == "unknown_workload"
            # the message names the live catalogue, not a baked-in list
            assert "registered workloads" in excinfo.value.args[0]
            assert "heat" in excinfo.value.args[0]
            # the connection survives a rejection
            assert client.jobs() == []

    def test_unknown_job_is_rejected(self, service):
        with ServiceClient(service.address) as client:
            for call in (client.status, client.result, client.cancel):
                with pytest.raises(ServiceError) as excinfo:
                    call("j99")
                assert excinfo.value.code == "unknown_job"

    def test_quota_rejection_names_the_quota(self, service):
        with ServiceClient(service.address) as client:
            client.submit("cg", "T", tenant="alice")
            client.submit("cg", "T", tenant="alice")
            with pytest.raises(ServiceError) as excinfo:
                client.submit("cg", "T", tenant="alice")
            assert excinfo.value.code == "quota"
            # another tenant is unaffected
            client.submit("cg", "T", tenant="bob")
            for job in client.jobs():
                client.cancel(job["job"])
        assert service.wait_all(timeout=60)


class TestNegotiation:
    def test_v2_worker_gets_structured_unsupported(self, service):
        # The service's tasks carry per-frame workloads, which only v3
        # workers understand — a v2-only worker must be refused with the
        # structured reply and a clean close, not a hang or a traceback.
        sock = socket.create_connection(
            parse_address(service.address), timeout=10
        )
        try:
            send_frame(sock, {
                "type": HELLO, "version": 2, "versions": [2],
                "role": ROLE_WORKER,
                "host": socket.gethostname(), "pid": os.getpid(),
            })
            reply = recv_frame(sock)
            assert reply["type"] == UNSUPPORTED
            assert 3 in reply["supported"]
            assert "version" in reply["message"]
            assert recv_frame(sock) is None  # clean close
        finally:
            sock.close()

    def test_client_refused_on_disjoint_versions(self, service):
        sock = socket.create_connection(
            parse_address(service.address), timeout=10
        )
        try:
            send_frame(sock, {
                "type": HELLO, "version": 1, "versions": [1],
                "role": "client",
                "host": socket.gethostname(), "pid": os.getpid(),
            })
            reply = recv_frame(sock)
            assert reply["type"] == UNSUPPORTED
            assert recv_frame(sock) is None
        finally:
            sock.close()


class TestPluginTenant:
    def test_sdk_registered_workload_is_a_tenant(self, tmp_path):
        # A workload registered through the SDK at runtime — no edits to
        # repro.workloads — is accepted at the front door and runs to
        # completion like any built-in.
        from repro.sdk import WorkloadSpec
        from repro.workloads import REGISTRY
        from repro.workloads.base import Workload

        def make(klass):
            return Workload(
                name=f"svcplug.{klass}",
                sources=["fn main() { out(3.0 * 7.0); }"],
                klass=klass,
            )

        REGISTRY.register(
            WorkloadSpec(name="svcplug", factory=make, classes=("T",),
                         origin="plugin:test")
        )
        try:
            with service_running(tmp_path, workers=1) as svc:
                with ServiceClient(svc.address) as client:
                    job_id = client.submit("svcplug", "T", tenant="plug")
                    reply = client.wait(job_id, timeout=300)
                assert reply["state"] == COMPLETE
                assert reply["row"]["benchmark"] == "svcplug.T"
        finally:
            REGISTRY.unregister("svcplug")
