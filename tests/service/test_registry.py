"""JobRegistry admission control and Job lifecycle bookkeeping."""

import pytest

from repro.service import QuotaError
from repro.service.jobs import (
    CANCELLED,
    COMPLETE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRegistry,
)


class TestAdmission:
    def test_sequential_ids_in_submission_order(self):
        registry = JobRegistry()
        first = registry.admit("alice", "cg", "T", {})
        second = registry.admit("bob", "mg", "T", {})
        assert [job.job_id for job in registry.jobs()] == ["j1", "j2"]
        assert registry.get("j1") is first
        assert registry.get("j2") is second
        assert registry.get("j99") is None

    def test_quota_counts_active_jobs_per_tenant(self):
        registry = JobRegistry(max_queued=1)
        registry.admit("alice", "cg", "T", {})
        with pytest.raises(QuotaError):
            registry.admit("alice", "mg", "T", {})
        # a different tenant has its own quota
        registry.admit("bob", "mg", "T", {})

    def test_terminal_jobs_free_the_quota(self):
        registry = JobRegistry(max_queued=1)
        job = registry.admit("alice", "cg", "T", {})
        for state in sorted(TERMINAL_STATES):
            job.state = state
            registry.admit("alice", "cg", "T", {}).state = RUNNING
            with pytest.raises(QuotaError):
                registry.admit("alice", "cg", "T", {})
            registry.jobs()[-1].state = CANCELLED

    def test_no_quota_means_unbounded(self):
        registry = JobRegistry()
        for _ in range(10):
            registry.admit("alice", "cg", "T", {})
        assert len(registry.active()) == 10


class TestJobViews:
    def test_status_snapshot_is_json_safe(self):
        registry = JobRegistry()
        job = registry.admit("alice", "cg", "T", {"workers": 2}, quantum=2.0)
        status = job.status()
        assert status["job"] == "j1"
        assert status["tenant"] == "alice"
        assert status["workload"] == "cg"
        assert status["klass"] == "T"
        assert status["state"] == QUEUED
        assert status["tested"] == 0
        assert status["executions"] == 0
        import json

        json.dumps(status)  # every field must be wire-safe

    def test_result_reply_carries_artifacts(self):
        registry = JobRegistry()
        job = registry.admit("alice", "cg", "T", {})
        job.state = COMPLETE
        job.result_row = {"benchmark": "cg.T"}
        job.config_text = "# config\n"
        job.tested = 7
        reply = job.result_reply()
        assert reply["row"] == {"benchmark": "cg.T"}
        assert reply["config"] == "# config\n"
        assert reply["tested"] == 7

    def test_options_are_copied_at_admission(self):
        registry = JobRegistry()
        options = {"workers": 2}
        job = registry.admit("alice", "cg", "T", options)
        options["workers"] = 99
        assert job.options["workers"] == 2

    def test_failed_state_keeps_the_error(self):
        registry = JobRegistry()
        job = registry.admit("alice", "cg", "T", {})
        job.state = FAILED
        job.error = "ValueError: boom"
        assert job.status()["error"] == "ValueError: boom"
