"""Shared test helpers and fixtures."""

from __future__ import annotations

import pytest

from repro.compiler import CompileOptions, compile_source
from repro.telemetry import Telemetry
from repro.vm import run_program

_telemetry_init = Telemetry.__init__


def _validating_init(self, sinks=(), metrics=None, validate=True):
    _telemetry_init(self, sinks=sinks, metrics=metrics, validate=validate)


@pytest.fixture(autouse=True)
def _validate_all_events(monkeypatch):
    """Debug mode for the whole suite: every Telemetry built by code under
    test validates each emitted event against EVENT_FIELDS, so a malformed
    event fails the test that produced it rather than poisoning a trace."""
    monkeypatch.setattr(Telemetry, "__init__", _validating_init)


def run_src(source: str, real_type: str = "f64", **run_kwargs):
    """Compile a single-module MH source and run it; returns decoded values."""
    program = compile_source(source, CompileOptions(real_type=real_type))
    return run_program(program, **run_kwargs).values()


def compile_src(source: str, real_type: str = "f64", **opts):
    return compile_source(source, CompileOptions(real_type=real_type, **opts))


@pytest.fixture
def simple_fp_program():
    """A small program with a few FP candidates, used across suites."""
    return compile_src(
        """
        var acc: real;
        fn main() {
            var s: real = 0.0;
            var p: real = 1.0;
            for i in 0 .. 20 {
                s = s + real(i) * 0.25;
                p = p * 1.01;
            }
            acc = s / p;
            out(s);
            out(p);
            out(sqrt(acc));
        }
        """
    )
