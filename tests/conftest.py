"""Shared test helpers and fixtures."""

from __future__ import annotations

import pytest

from repro.compiler import CompileOptions, compile_source
from repro.vm import run_program


def run_src(source: str, real_type: str = "f64", **run_kwargs):
    """Compile a single-module MH source and run it; returns decoded values."""
    program = compile_source(source, CompileOptions(real_type=real_type))
    return run_program(program, **run_kwargs).values()


def compile_src(source: str, real_type: str = "f64", **opts):
    return compile_source(source, CompileOptions(real_type=real_type, **opts))


@pytest.fixture
def simple_fp_program():
    """A small program with a few FP candidates, used across suites."""
    return compile_src(
        """
        var acc: real;
        fn main() {
            var s: real = 0.0;
            var p: real = 1.0;
            for i in 0 .. 20 {
                s = s + real(i) * 0.25;
                p = p * 1.01;
            }
            acc = s / p;
            out(s);
            out(p);
            out(sqrt(acc));
        }
        """
    )
