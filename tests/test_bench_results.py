"""The benchmark harness's results-file merge semantics.

``benchmarks/results/BENCH_search.json`` is shared by the incremental
and guided benches and accumulates across runs: re-running a workload
must *replace* its row (same ``benchmark`` key), never append a
duplicate, and must leave the other bench's section untouched.
"""

import importlib.util
import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture
def harness(tmp_path, monkeypatch):
    """The benchmarks/conftest.py helpers, redirected to a temp dir."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", ROOT / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
    return module


def _read(harness, name="BENCH_search"):
    return json.loads((harness.RESULTS_DIR / f"{name}.json").read_text())


def row(bench, **extra):
    return {"benchmark": bench, **extra}


def test_same_workload_replaces_row(harness):
    harness.merge_json_rows("BENCH_search", {"rows": [row("cg.T", speedup=3.0)]})
    harness.merge_json_rows("BENCH_search", {"rows": [row("cg.T", speedup=4.5)]})
    data = _read(harness)
    assert data["rows"] == [row("cg.T", speedup=4.5)]


def test_new_workload_appends_after_existing(harness):
    harness.merge_json_rows("BENCH_search", {"rows": [row("cg.T", speedup=3.0)]})
    harness.merge_json_rows("BENCH_search", {"rows": [row("mg.W", speedup=2.0)]})
    data = _read(harness)
    assert [r["benchmark"] for r in data["rows"]] == ["cg.T", "mg.W"]


def test_replace_preserves_row_order(harness):
    harness.merge_json_rows(
        "BENCH_search",
        {"rows": [row("cg.T", v=1), row("mg.W", v=1), row("lu.T", v=1)]},
    )
    harness.merge_json_rows("BENCH_search", {"rows": [row("mg.W", v=2)]})
    data = _read(harness)
    assert [(r["benchmark"], r["v"]) for r in data["rows"]] == [
        ("cg.T", 1), ("mg.W", 2), ("lu.T", 1),
    ]


def test_sections_do_not_clobber_each_other(harness):
    harness.merge_json_rows(
        "BENCH_search", {"rows": [row("cg.T", speedup=3.0)], "primary": row("cg.T")}
    )
    harness.merge_json_rows(
        "BENCH_search", {"rows": [row("cg.T", saved=7)]}, section="guided"
    )
    harness.merge_json_rows("BENCH_search", {"rows": [row("cg.T", speedup=5.0)]})
    data = _read(harness)
    assert data["rows"] == [row("cg.T", speedup=5.0)]
    assert data["guided"]["rows"] == [row("cg.T", saved=7)]
    assert data["primary"] == row("cg.T")


def test_section_rows_dedupe_too(harness):
    harness.merge_json_rows(
        "BENCH_search", {"rows": [row("cg.T", saved=7)]}, section="guided"
    )
    harness.merge_json_rows(
        "BENCH_search",
        {"rows": [row("cg.T", saved=9), row("mg.W", saved=1)]},
        section="guided",
    )
    data = _read(harness)
    assert data["guided"]["rows"] == [row("cg.T", saved=9), row("mg.W", saved=1)]


def test_non_row_keys_updated(harness):
    harness.merge_json_rows(
        "BENCH_search", {"rows": [row("cg.T")], "primary": row("cg.T")}
    )
    harness.merge_json_rows(
        "BENCH_search", {"rows": [row("mg.W")], "primary": row("mg.W")}
    )
    assert _read(harness)["primary"] == row("mg.W")


def test_unparseable_file_starts_fresh(harness):
    (harness.RESULTS_DIR / "BENCH_search.json").write_text("{not json")
    harness.merge_json_rows("BENCH_search", {"rows": [row("cg.T")]})
    assert _read(harness)["rows"] == [row("cg.T")]
