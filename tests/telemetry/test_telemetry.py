"""Unit tests for the telemetry substrate: events, sinks, metrics, hub."""

import io
import json

import pytest

from repro.telemetry import (
    EVENT_KINDS,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullSink,
    ProgressRenderer,
    Telemetry,
    validate_event,
)
from repro.telemetry.sinks import read_trace


class TestEventSchema:
    def test_known_kinds_cover_every_layer(self):
        layers = {kind.split(".")[0] for kind in EVENT_KINDS}
        assert {"search", "eval", "instr", "vm", "mpi"} <= layers

    def test_validate_accepts_complete_event(self):
        event = {"kind": "vm.trap", "ts": 0.1, "message": "boom"}
        assert validate_event(event) is event

    def test_validate_allows_extra_fields(self):
        validate_event(
            {"kind": "vm.trap", "ts": 0.1, "message": "boom", "addr": 64}
        )

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_event({"kind": "nope", "ts": 0.0})

    def test_validate_rejects_missing_ts(self):
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_event({"kind": "vm.trap", "message": "x"})

    def test_validate_rejects_missing_required_field(self):
        with pytest.raises(ValueError, match="missing required fields"):
            validate_event({"kind": "search.queue", "ts": 0.0, "depth": 3})

    def test_validate_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_event(["not", "an", "event"])


class TestSinks:
    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit({"kind": "vm.trap", "ts": 0.0, "message": "x"})
        sink.flush()
        sink.close()

    def test_list_sink_collects_and_filters(self):
        sink = ListSink()
        sink.emit({"kind": "vm.trap", "ts": 0.0, "message": "a"})
        sink.emit({"kind": "search.queue", "ts": 0.1, "depth": 1, "tested": 2})
        assert sink.kinds() == {"vm.trap", "search.queue"}
        assert len(sink.of_kind("vm.trap")) == 1

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            {"kind": "search.begin", "ts": 0.0, "workload": "cg", "candidates": 3},
            {"kind": "vm.trap", "ts": 0.5, "message": "stack overflow"},
        ]
        with JsonlSink(str(path)) as sink:
            for event in events:
                sink.emit(event)
        assert sink.count == 2
        loaded = read_trace(str(path))
        assert loaded == events
        for event in loaded:
            validate_event(event)

    def test_jsonl_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"kind": "vm.trap", "ts": 0.0, "message": "x"})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "vm.trap"

    def test_jsonl_accepts_stream(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit({"kind": "vm.trap", "ts": 0.0, "message": "x"})
        sink.close()  # must not close a stream it does not own
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["kind"] == "vm.trap"


class TestTelemetryHub:
    def test_disabled_by_default(self):
        telemetry = Telemetry()
        assert not telemetry.enabled
        telemetry.emit("vm.trap", message="never recorded")  # no-op, no error
        telemetry.count("anything")
        telemetry.observe("anything", 1.0)

    def test_null_singleton_is_disabled(self):
        assert not NULL_TELEMETRY.enabled

    def test_emit_stamps_kind_and_ts(self):
        sink = ListSink()
        telemetry = Telemetry(sinks=[sink])
        telemetry.emit("vm.trap", message="boom")
        (event,) = sink.events
        assert event["kind"] == "vm.trap"
        assert event["ts"] >= 0.0
        validate_event(event)

    def test_metrics_consume_rides_the_stream(self):
        registry = MetricsRegistry()
        telemetry = Telemetry(metrics=registry)
        assert telemetry.enabled
        telemetry.emit("vm.trap", message="boom")
        assert registry.get("events.vm.trap") == 1
        assert registry.get("vm.traps") == 1

    def test_span_emits_begin_and_end(self):
        sink = ListSink()
        telemetry = Telemetry(sinks=[sink])
        with telemetry.span("analysis.run", workload="cg"):
            pass
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["analysis.run.begin", "analysis.run.end"]
        assert "wall_s" in sink.events[1]

    def test_span_records_error_and_propagates(self):
        sink = ListSink()
        telemetry = Telemetry(sinks=[sink])
        with pytest.raises(RuntimeError):
            with telemetry.span("analysis.run", workload="cg"):
                raise RuntimeError("boom")
        assert sink.events[-1]["error"] == "RuntimeError"

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(sinks=[JsonlSink(str(path))]) as telemetry:
            telemetry.emit("vm.trap", message="x")
        assert read_trace(str(path))


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.get("a") == 5
        assert registry.get("missing") == 0

    def test_observations_track_count_total_min_max(self):
        registry = MetricsRegistry()
        for value in (3, 1, 2):
            registry.observe("x", value)
        assert registry.observations["x"] == [3, 6, 1, 3]

    def test_summary_lists_everything(self):
        registry = MetricsRegistry()
        registry.inc("eval.configs", 7)
        registry.observe("eval.cycles", 100)
        text = registry.summary()
        assert "telemetry metrics:" in text
        assert "eval.configs" in text and "7" in text
        assert "eval.cycles" in text and "100" in text

    def test_consume_eval_config(self):
        registry = MetricsRegistry()
        registry.consume(
            {
                "kind": "eval.config",
                "ts": 0.0,
                "passed": False,
                "cycles": 10,
                "trap": "bad read",
                "wall_s": 0.25,
            }
        )
        assert registry.get("eval.configs") == 1
        assert registry.get("eval.traps") == 1
        assert registry.observations["eval.wall_s"][1] == 0.25


class TestProgressRenderer:
    def test_renders_and_finishes_line(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        renderer.emit(
            {"kind": "search.begin", "ts": 0.0, "workload": "cg", "candidates": 5}
        )
        renderer.emit(
            {
                "kind": "search.eval",
                "ts": 0.1,
                "label": "MODL01",
                "passed": True,
                "cycles": 10,
                "trap": "",
                "phase": "bfs",
            }
        )
        renderer.emit(
            {
                "kind": "search.end",
                "ts": 0.2,
                "workload": "cg",
                "tested": 1,
                "final": "pass",
                "wall_s": 0.2,
            }
        )
        text = stream.getvalue()
        assert "1 tested" in text
        assert "of 5 candidates" in text
        assert text.endswith("\n")

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        renderer.close()
        renderer.close()
        assert stream.getvalue() == ""

    @staticmethod
    def _eval(label="MODL01"):
        return {
            "kind": "search.eval",
            "ts": 0.0,
            "label": label,
            "passed": True,
            "cycles": 10,
            "trap": "",
            "phase": "bfs",
        }

    def test_heartbeat_does_not_reset_eval_rate_window(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        renderer.emit(self._eval())
        renderer.emit(self._eval())
        assert len(renderer._eval_times) == 2
        # A chatty but idle cluster repaints without touching the window:
        # the displayed rate must not collapse to zero under heartbeats.
        for _ in range(10):
            renderer.emit(
                {"kind": "cluster.heartbeat", "ts": 0.0,
                 "worker": "w1", "busy": 0}
            )
        assert len(renderer._eval_times) == 2
        assert "/s" in stream.getvalue()

    def test_clear_blanks_open_line(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        renderer.emit(self._eval())
        renderer.clear()
        text = stream.getvalue()
        # The clear ends with a bare carriage return on a blanked span,
        # so the next ordinary write starts on a clean column 0.
        assert text.endswith("\r")
        assert text.rsplit("\r", 2)[-2].strip() == ""
        # Repainting after clear works; clearing a closed line is a no-op.
        renderer.clear()
        renderer.emit(self._eval())
        assert "tested" in stream.getvalue().rsplit("\r", 1)[-1]
