"""Trace toolkit tests: load/validate, replay exactness, views, diff.

The toolkit's contract is replay purity: because counters and
observations ride the event stream as ``metric.*`` events, feeding a
trace file through a fresh :class:`MetricsRegistry` reproduces the live
registry's ``summary()`` byte-for-byte.
"""

import json

import pytest

from repro.profile import collect_profile
from repro.search.bfs import SearchEngine
from repro.telemetry import JsonlSink, ListSink, MetricsRegistry, Telemetry
from repro.telemetry.tools import (
    compare,
    flame_view,
    load_events,
    profile_view,
    replay_metrics,
    summarize,
)
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def traced_search(tmp_path_factory):
    path = tmp_path_factory.mktemp("tools") / "trace.jsonl"
    registry = MetricsRegistry()
    with Telemetry(sinks=[JsonlSink(str(path))], metrics=registry) as tel:
        result = SearchEngine(make_workload("cg", "S"), telemetry=tel).run()
    return str(path), registry, result


class TestLoadEvents:
    def test_loads_and_validates(self, traced_search):
        path, _registry, result = traced_search
        events = load_events(path)
        assert events
        n_eval = sum(1 for e in events if e["kind"] == "eval.config")
        assert n_eval == result.configs_tested

    def test_unknown_kind_fails_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps({"kind": "search.begin", "ts": 0.0,
                           "workload": "x", "stop_level": "block",
                           "candidates": 1})
        bad = json.dumps({"kind": "no.such.kind", "ts": 0.1})
        path.write_text(good + "\n" + bad + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_events(str(path))

    def test_missing_field_fails_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "search.eval", "ts": 0.0}) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1"):
            load_events(str(path))


class TestReplayExactness:
    def test_replayed_summary_is_byte_identical(self, traced_search):
        path, registry, _result = traced_search
        events = load_events(path)
        assert replay_metrics(events).summary() == registry.summary()

    def test_replayed_counters_equal_live(self, traced_search):
        path, registry, _result = traced_search
        replayed = replay_metrics(load_events(path))
        assert replayed.counters == registry.counters
        assert replayed.observations == registry.observations


class TestSummarize:
    def test_summary_contains_kinds_phases_and_metrics(self, traced_search):
        path, registry, _result = traced_search
        text = summarize(load_events(path))
        assert "events by kind:" in text
        assert "search.eval" in text
        assert "search phases:" in text
        assert "bfs" in text
        # The replayed metrics table is embedded verbatim.
        assert registry.summary() in text

    def test_empty_trace_summarizes(self):
        assert "0 events" in summarize([])


class TestCompare:
    def test_identical_traces_have_zero_deltas(self, traced_search):
        path, _registry, _result = traced_search
        events = load_events(path)
        text = compare(events, events)
        assert "+0" in text
        assert "counters that differ:" not in text

    def test_differing_traces_show_delta(self, traced_search):
        path, _registry, _result = traced_search
        events = load_events(path)
        evals = [e for e in events if e["kind"] == "eval.config"]
        text = compare(events, events + evals[:1], "full", "extra")
        assert "eval.config" in text
        assert "+1" in text


class TestCycleViews:
    def test_profile_view_prefers_sites(self):
        sink = ListSink()
        with Telemetry(sinks=[sink]) as telemetry:
            collect_profile(make_workload("cg", "S"), telemetry=telemetry)
        text = profile_view(sink.events, top=5)
        assert "sites by cycles:" in text
        assert "INSN" in text

    def test_profile_view_falls_back_to_opcode_census(self, traced_search):
        path, _registry, _result = traced_search
        text = profile_view(load_events(path))
        assert "opcode census" in text
        assert "mulsd" in text

    def test_flame_view_collapsed_stacks(self):
        sink = ListSink()
        with Telemetry(sinks=[sink]) as telemetry:
            doc = collect_profile(make_workload("cg", "S"),
                                  telemetry=telemetry)
        text = flame_view(sink.events)
        lines = text.splitlines()
        assert lines
        total = 0
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert ";" in frames
            total += int(count)
        assert total == doc["attributed_cycles"]

    def test_flame_view_opcode_fallback(self, traced_search):
        path, _registry, _result = traced_search
        text = flame_view(load_events(path))
        assert text
        for line in text.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 0
