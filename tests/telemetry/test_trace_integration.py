"""End-to-end trace tests: a real search, a real VM run, a real MPI run.

The load-bearing guarantees checked here:

* a traced search emits a schema-valid JSONL file whose ``eval.config``
  count equals ``SearchResult.configs_tested`` exactly;
* the metrics registry (fed by the same stream) reconciles with both;
* attaching telemetry never changes VM cycle counts;
* the MPI scheduler's compute/comm attribution sums to each rank's clock.
"""

import json

import pytest

from repro.compiler import compile_source
from repro.mpi.runner import run_mpi_program
from repro.search.bfs import SearchEngine, SearchOptions
from repro.telemetry import (
    JsonlSink,
    ListSink,
    MetricsRegistry,
    Telemetry,
    validate_event,
)
from repro.telemetry.sinks import read_trace
from repro.vm.machine import run_program
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def traced_search(tmp_path_factory):
    """One CG class-S search traced to JSONL with metrics attached."""
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    registry = MetricsRegistry()
    workload = make_workload("cg", "S")
    with Telemetry(sinks=[JsonlSink(str(path))], metrics=registry) as telemetry:
        result = SearchEngine(workload, telemetry=telemetry).run()
    return path, registry, result


class TestSearchTrace:
    def test_every_line_is_schema_valid(self, traced_search):
        path, _registry, _result = traced_search
        events = read_trace(str(path))
        assert events
        for event in events:
            validate_event(event)

    def test_trace_has_all_layers(self, traced_search):
        path, _registry, _result = traced_search
        kinds = {event["kind"] for event in read_trace(str(path))}
        # The acceptance floor is four distinct kinds; a full search
        # produces the search span, per-config evaluations, per-program
        # instrumentation counters, and the VM opcode census.
        assert {
            "search.begin",
            "search.end",
            "search.eval",
            "search.queue",
            "eval.config",
            "instr.stats",
            "vm.opcodes",
        } <= kinds
        assert len(kinds) >= 4

    def test_eval_config_count_equals_configs_tested(self, traced_search):
        path, _registry, result = traced_search
        events = read_trace(str(path))
        n_eval = sum(1 for e in events if e["kind"] == "eval.config")
        assert n_eval == result.configs_tested

    def test_search_eval_count_equals_history(self, traced_search):
        path, _registry, result = traced_search
        events = read_trace(str(path))
        n_eval = sum(1 for e in events if e["kind"] == "search.eval")
        assert n_eval == len(result.history)

    def test_search_end_reports_result_numbers(self, traced_search):
        path, _registry, result = traced_search
        (end,) = [e for e in read_trace(str(path)) if e["kind"] == "search.end"]
        assert end["tested"] == result.configs_tested
        assert end["final"] == ("pass" if result.final_verified else "fail")

    def test_metrics_reconcile_with_trace(self, traced_search):
        path, registry, result = traced_search
        events = read_trace(str(path))
        assert registry.get("eval.configs") == result.configs_tested
        assert registry.get("events.search.eval") == len(result.history)
        pass_count = sum(
            1 for e in events if e["kind"] == "search.eval" and e["passed"]
        )
        assert registry.get("search.pass") == pass_count
        assert "telemetry metrics:" in registry.summary()

    def test_history_has_wall_times(self, traced_search):
        _path, _registry, result = traced_search
        assert all(record.wall_s > 0.0 for record in result.history)

    def test_opcode_census_is_consistent(self, traced_search):
        path, _registry, _result = traced_search
        (census,) = [e for e in read_trace(str(path)) if e["kind"] == "vm.opcodes"]
        total_execs = sum(op["execs"] for op in census["opcodes"].values())
        assert total_execs == census["steps"]
        # statically attributed cycles never exceed the true clock
        # (taken-branch extras are excluded by design)
        total_cycles = sum(op["cycles"] for op in census["opcodes"].values())
        assert 0 < total_cycles <= census["cycles"]

    def test_trace_is_line_delimited_json(self, traced_search):
        path, _registry, _result = traced_search
        for line in path.read_text().splitlines():
            json.loads(line)


class TestSearchTelemetryInvariants:
    def test_traced_search_matches_untraced(self):
        workload = make_workload("cg", "S")
        plain = SearchEngine(workload).run()
        sink = ListSink()
        with Telemetry(sinks=[sink]) as telemetry:
            traced = SearchEngine(
                make_workload("cg", "S"), telemetry=telemetry
            ).run()
        assert plain.row() == traced.row()

    def test_refine_phase_is_traced(self):
        # A function-level search of ep traps less; use refine on cg with a
        # tiny budget just to exercise the refine event path when it fires.
        sink = ListSink()
        workload = make_workload("cg", "S")
        with Telemetry(sinks=[sink]) as telemetry:
            result = SearchEngine(
                workload,
                SearchOptions(refine=True, refine_budget=4),
                telemetry=telemetry,
            ).run()
        if result.refined_config is not None:  # refinement actually ran
            assert sink.of_kind("search.refine")
            assert any(
                e["phase"] == "refine" for e in sink.of_kind("search.eval")
            )


class TestVmTelemetry:
    SRC = """
    fn main() {
        var s: real = 0.0;
        for i in 0 .. 50 { s = s + 0.25; }
        out(s);
    }
    """

    def test_cycles_identical_with_and_without_telemetry(self):
        program = compile_source(self.SRC)
        plain = run_program(program)
        sink = ListSink()
        traced = run_program(program, telemetry=Telemetry(sinks=[sink]))
        assert traced.cycles == plain.cycles
        assert traced.steps == plain.steps
        assert traced.values() == plain.values()

    def test_opcode_census_emitted(self):
        program = compile_source(self.SRC)
        sink = ListSink()
        run_program(program, telemetry=Telemetry(sinks=[sink]))
        (census,) = sink.of_kind("vm.opcodes")
        validate_event(census)
        assert census["opcodes"]["addsd"]["execs"] == 50

    def test_trap_event_emitted(self):
        program = compile_source(
            """
            var a: real[4];
            fn main() { var k: i64 = 99999999; out(a[k]); }
            """
        )
        sink = ListSink()
        from repro.vm.errors import VmTrap

        with pytest.raises(VmTrap):
            run_program(program, telemetry=Telemetry(sinks=[sink]))
        (trap,) = sink.of_kind("vm.trap")
        validate_event(trap)
        assert trap["message"]


class TestMpiTelemetry:
    def test_compute_plus_comm_equals_clock(self):
        program = compile_source(
            "fn main() { out(allreduce_sum(real(mpi_rank()) + 1.0)); }"
        )
        sink = ListSink()
        result = run_mpi_program(
            program, 4, telemetry=Telemetry(sinks=[sink])
        )
        ranks = sink.of_kind("mpi.rank")
        assert len(ranks) == 4
        for event in ranks:
            validate_event(event)
            assert (
                event["compute_cycles"] + event["comm_cycles"]
                == event["cycles"]
            )
        assert result.comm_cycles[0] > 0  # the collective cost is attributed
        (run,) = sink.of_kind("mpi.run")
        assert run["collectives"] == 1
        assert run["elapsed"] == result.elapsed

    def test_single_rank_attribution_is_zero_comm(self):
        program = compile_source("fn main() { out(1.0); }")
        sink = ListSink()
        run_mpi_program(program, 1, telemetry=Telemetry(sinks=[sink]))
        (event,) = sink.of_kind("mpi.rank")
        assert event["comm_cycles"] == 0
