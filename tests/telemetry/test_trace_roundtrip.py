"""Trace round-trips for every execution mode (satellite of the
profiling PR): serial, parallel-worker, and cluster searches of the same
workload each produce a JSONL trace in which

* every line parses and validates against ``EVENT_FIELDS``;
* replaying the trace through a fresh :class:`MetricsRegistry`
  reproduces the live registry's ``summary()`` byte-for-byte;
* the causally-load-bearing counts (``eval.config`` vs
  ``configs_tested``) reconcile exactly.

The cluster case additionally proves the tentpole property: worker-side
events arrive in the coordinator's merged trace tagged with the worker
id that produced them.
"""

import threading

import pytest

from repro.cluster import run_worker
from repro.search.bfs import SearchEngine, SearchOptions
from repro.telemetry import JsonlSink, MetricsRegistry, Telemetry
from repro.telemetry.tools import load_events, replay_metrics
from repro.workloads import make_workload


def _traced_run(tmp_path, options, workers=0):
    path = tmp_path / "trace.jsonl"
    registry = MetricsRegistry()
    workload = make_workload("cg", "S")
    with Telemetry(sinks=[JsonlSink(str(path))], metrics=registry) as tel:
        engine = SearchEngine(workload, options, telemetry=tel)
        threads = []
        if workers:
            threads = [
                threading.Thread(
                    target=run_worker,
                    args=(engine.evaluator.address,),
                    daemon=True,
                )
                for _ in range(workers)
            ]
            for thread in threads:
                thread.start()
        result = engine.run()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
    return str(path), registry, result


@pytest.fixture(
    scope="module",
    params=["serial", "parallel", "cluster"],
)
def traced_mode(request, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp(f"roundtrip_{request.param}")
    if request.param == "serial":
        path, registry, result = _traced_run(tmp_path, SearchOptions())
    elif request.param == "parallel":
        path, registry, result = _traced_run(
            tmp_path, SearchOptions(workers=2)
        )
    else:
        path, registry, result = _traced_run(
            tmp_path,
            SearchOptions(cluster="127.0.0.1:0", lease_timeout=10.0),
            workers=2,
        )
    return request.param, path, registry, result


class TestRoundTrip:
    def test_every_line_validates(self, traced_mode):
        _mode, path, _registry, _result = traced_mode
        assert load_events(path)

    def test_replay_reproduces_live_summary(self, traced_mode):
        _mode, path, registry, _result = traced_mode
        events = load_events(path)
        assert replay_metrics(events).summary() == registry.summary()

    def test_eval_config_count_reconciles(self, traced_mode):
        _mode, path, _registry, result = traced_mode
        events = load_events(path)
        n_eval = sum(1 for e in events if e["kind"] == "eval.config")
        assert n_eval == result.configs_tested

    def test_search_span_present(self, traced_mode):
        _mode, path, _registry, _result = traced_mode
        kinds = [e["kind"] for e in load_events(path)]
        assert kinds.count("search.begin") == 1
        assert kinds.count("search.end") == 1

    def test_all_modes_agree_on_final_config(self, traced_mode):
        _mode, _path, _registry, result = traced_mode
        assert result.final_config is not None
        assert result.final_verified


class TestClusterMerge:
    @pytest.fixture(scope="class")
    def cluster_trace(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("cluster_merge")
        path, registry, result = _traced_run(
            tmp_path,
            SearchOptions(cluster="127.0.0.1:0", lease_timeout=10.0),
            workers=2,
        )
        return load_events(path), registry, result

    def test_remote_evals_are_worker_tagged(self, cluster_trace):
        events, _registry, result = cluster_trace
        remote = [e for e in events if e["kind"] == "eval.remote"]
        assert len(remote) == result.configs_tested
        assert all("worker" in e and e["worker"] for e in remote)
        assert all("worker_ts" in e for e in remote)

    def test_forwarded_metric_events_are_worker_tagged(self, cluster_trace):
        events, _registry, _result = cluster_trace
        forwarded = [
            e for e in events if e["kind"] == "metric.count" and "worker" in e
        ]
        # Worker-side instrumentation cache counters ride the stream.
        assert any(
            e["name"].startswith("instr.") for e in forwarded
        ), "no forwarded instrumentation counters"

    def test_trace_is_causally_ordered(self, cluster_trace):
        events, _registry, _result = cluster_trace
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_worker_occupancy_metrics_recorded(self, cluster_trace):
        _events, registry, result = cluster_trace
        assert (
            registry.get("cluster.remote_evals") == result.configs_tested
        )
        per_worker = {
            name: value
            for name, value in registry.counters.items()
            if name.startswith("cluster.tasks.")
        }
        assert per_worker
        assert sum(per_worker.values()) == result.configs_tested
        assert "cluster.eval_wall_s" in registry.observations
