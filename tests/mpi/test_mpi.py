"""Multi-rank execution: collectives, determinism, timing model."""

import pytest

from repro.compiler import CompileOptions, compile_source
from repro.mpi import CommCostModel, MultiRankRunner, run_mpi_program
from repro.mpi.runner import MpiError
from repro.vm import run_program


def _compile(src, real_type="f64"):
    return compile_source(src, CompileOptions(real_type=real_type))


class TestScalarCollectives:
    def test_allreduce_sum(self):
        program = _compile(
            "fn main() { out(allreduce_sum(real(mpi_rank()) + 1.0)); }"
        )
        result = run_mpi_program(program, 4)
        # 1 + 2 + 3 + 4 on every rank
        for rank_result in result.per_rank:
            assert rank_result.values() == [10.0]

    def test_allreduce_min_max(self):
        program = _compile(
            """
            fn main() {
                var x: real = real(mpi_rank() * 2 + 1);
                out(allreduce_min(x));
                out(allreduce_max(x));
            }
            """
        )
        result = run_mpi_program(program, 4)
        assert result.values() == [1.0, 7.0]

    def test_serial_collectives_are_identity(self):
        program = _compile("fn main() { out(allreduce_sum(3.25)); }")
        assert run_program(program).values() == [3.25]

    def test_single_precision_allreduce(self):
        program = _compile(
            "fn main() { out(allreduce_sum(0.1)); }", real_type="f32"
        )
        result = run_mpi_program(program, 4)
        value = result.values()[0]
        import numpy as np

        f = np.float32(0.1)
        assert value == pytest.approx(float(f + f + f + f), abs=0)


class TestVectorCollectives:
    def test_allreduce_vector_assembles_partitions(self):
        program = _compile(
            """
            const N: i64 = 8;
            var v: real[8];
            fn main() {
                var rank: i64 = mpi_rank();
                var size: i64 = mpi_size();
                var lo: i64 = (rank * N) / size;
                var hi: i64 = ((rank + 1) * N) / size;
                for i in 0 .. N { v[i] = 0.0; }
                for i in lo .. hi { v[i] = real(i + 1); }
                allreduce_sum_vec(v, N);
                var s: real = 0.0;
                for i in 0 .. N { s = s + v[i]; }
                out(s);
            }
            """
        )
        for size in (1, 2, 4, 8):
            result = run_mpi_program(program, size)
            assert result.values() == [36.0], f"size={size}"

    def test_vector_collective_bounds_checked(self):
        program = _compile(
            """
            var v: real[4];
            fn main() {
                var huge: i64 = 1000000;
                allreduce_sum_vec(v, huge);
            }
            """
        )
        from repro.vm.errors import VmTrap

        with pytest.raises(VmTrap, match="out of bounds"):
            run_mpi_program(program, 2)


class TestDeterminismAndTiming:
    PI_SRC = """
    const N: i64 = 256;
    fn main() {
        var rank: i64 = mpi_rank();
        var size: i64 = mpi_size();
        var h: real = 1.0 / real(N);
        var s: real = 0.0;
        var i: i64 = rank;
        while i < N {
            var x: real = h * (real(i) + 0.5);
            s = s + 4.0 / (1.0 + x * x);
            i = i + size;
        }
        out(allreduce_sum(s * h));
    }
    """

    def test_repeatable(self):
        program = _compile(self.PI_SRC)
        a = run_mpi_program(program, 4)
        b = run_mpi_program(program, 4)
        assert a.outputs == b.outputs
        assert a.elapsed == b.elapsed

    def test_parallel_speedup(self):
        program = _compile(self.PI_SRC)
        t1 = run_mpi_program(program, 1).elapsed
        t4 = run_mpi_program(program, 4).elapsed
        assert t4 < t1

    def test_comm_cost_grows_with_ranks(self):
        model = CommCostModel()
        assert model.allreduce(2) < model.allreduce(8)
        assert model.allreduce(1) == 0
        assert model.allreduce(4, words=100) > model.allreduce(4, words=1)

    def test_makespan_is_max_rank_clock(self):
        program = _compile(self.PI_SRC)
        result = run_mpi_program(program, 4)
        assert result.elapsed == max(r.cycles for r in result.per_rank)


class TestErrors:
    def test_deadlock_detected(self):
        program = _compile(
            """
            fn main() {
                if mpi_rank() == 0 {
                    barrier();
                }
            }
            """
        )
        with pytest.raises(MpiError, match="deadlock"):
            run_mpi_program(program, 2)

    def test_mismatched_collectives_detected(self):
        program = _compile(
            """
            fn main() {
                var x: real = 1.0;
                if mpi_rank() == 0 {
                    x = allreduce_sum(x);
                } else {
                    barrier();
                }
                out(x);
            }
            """
        )
        with pytest.raises(MpiError, match="mismatched"):
            run_mpi_program(program, 2)

    def test_bad_size_rejected(self):
        program = _compile("fn main() {}")
        with pytest.raises(ValueError):
            MultiRankRunner(program, 0)


class TestRngDecorrelation:
    def test_ranks_draw_different_streams(self):
        program = _compile("fn main() { out(rand_u64()); }")
        result = run_mpi_program(program, 4)
        draws = [r.values()[0] for r in result.per_rank]
        assert len(set(draws)) == 4


class TestBroadcast:
    def test_bcast_from_root(self):
        program = _compile(
            """
            fn main() {
                var x: real = 0.0;
                if mpi_rank() == 1 {
                    x = 42.5;
                }
                out(bcast(x, 1));
            }
            """
        )
        result = run_mpi_program(program, 4)
        for rank_result in result.per_rank:
            assert rank_result.values() == [42.5]

    def test_bcast_serial_identity(self):
        program = _compile("fn main() { out(bcast(7.5, 0)); }")
        assert run_program(program).values() == [7.5]

    def test_bcast_root_must_participate(self):
        from repro.vm.errors import VmTrap

        program = _compile(
            """
            fn main() {
                var x: real = 1.0;
                out(bcast(x, 9));
            }
            """
        )
        with pytest.raises(MpiError, match="root 9"):
            run_mpi_program(program, 2)

    def test_bcast_root_literal_required(self):
        from repro.compiler import CompileError

        with pytest.raises(CompileError, match="integer literal"):
            _compile("fn main() { var r: i64 = 0; out(bcast(1.0, r)); }")
