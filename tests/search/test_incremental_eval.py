"""Incremental evaluation through the search layer.

Covers the three guarantees the substrate makes to the search:

* turning the caches off changes nothing but wall time (verdicts,
  cycles, final configuration, history all identical);
* serial and parallel evaluators report identical ``eval.cache_hits``
  and ``eval.config`` telemetry for the same search;
* semantically identical configs (different flags, same resolved
  policy map) are answered from cache without a new evaluation.
"""

from collections import Counter

import pytest

from repro.config import Config, Policy, build_tree
from repro.config.model import LEVEL_FUNCTION
from repro.search import SearchEngine, SearchOptions
from repro.search.evaluator import Evaluator, machine_eligible, semantic_key
from repro.search.parallel import ParallelEvaluator, fork_available
from repro.telemetry import ListSink, MetricsRegistry, Telemetry
from repro.workloads import make_nas


def _traced_search(workers: int, incremental: bool):
    workload = make_nas("cg", "T")
    sink = ListSink()
    metrics = MetricsRegistry()
    telemetry = Telemetry(sinks=[sink], metrics=metrics)
    options = SearchOptions(workers=workers, incremental=incremental)
    result = SearchEngine(workload, options, telemetry=telemetry).run()
    kinds = Counter(event["kind"] for event in sink.events)
    return result, kinds, metrics.counters


def _essence(result):
    return (
        result.final_config.flags,
        result.static_pct,
        result.dynamic_pct,
        result.final_verified,
        [(r.label, r.passed, r.cycles) for r in result.history],
    )


class TestOnOffEquivalence:
    def test_incremental_search_identical_to_cold(self):
        warm, warm_kinds, _ = _traced_search(workers=1, incremental=True)
        cold, cold_kinds, _ = _traced_search(workers=1, incremental=False)
        assert _essence(warm) == _essence(cold)
        # Each mode keeps the trace invariant: one eval.config per
        # actual evaluation.
        assert warm_kinds["eval.config"] == warm.configs_tested
        assert cold_kinds["eval.config"] == cold.configs_tested
        # The warm path may answer some configs semantically — it never
        # evaluates more than the cold path.
        assert warm.configs_tested <= cold.configs_tested

    def test_incremental_caches_report_activity(self):
        _, _, counters = _traced_search(workers=1, incremental=True)
        assert counters["instr.block_cache_hits"] > 0
        assert counters["vm.compile_cache_hits"] > 0

    def test_cold_path_reports_no_cache_activity(self):
        _, _, counters = _traced_search(workers=1, incremental=False)
        assert counters.get("instr.block_cache_hits", 0) == 0
        assert counters.get("vm.compile_cache_hits", 0) == 0


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestSerialParallelParity:
    def test_telemetry_and_results_match(self):
        serial, serial_kinds, serial_counters = _traced_search(1, True)
        parallel, parallel_kinds, parallel_counters = _traced_search(2, True)
        # Batch size changes the queue interleaving (a seed property), so
        # compare the *set* of evaluations plus the final verdicts.
        s_final, s_static, s_dyn, s_ok, s_hist = _essence(serial)
        p_final, p_static, p_dyn, p_ok, p_hist = _essence(parallel)
        assert (s_final, s_static, s_dyn, s_ok) == (p_final, p_static, p_dyn, p_ok)
        assert sorted(s_hist) == sorted(p_hist)
        assert serial.configs_tested == parallel.configs_tested
        assert serial_kinds["eval.config"] == parallel_kinds["eval.config"]
        assert serial_counters.get("eval.cache_hits", 0) == parallel_counters.get(
            "eval.cache_hits", 0
        )
        # Worker-side cache activity is aggregated into the parent's
        # telemetry; the totals need not equal the serial run's (work is
        # spread over several caches) but must be present.
        assert parallel_counters["instr.block_cache_misses"] > 0
        assert parallel_counters["vm.compile_cache_misses"] > 0


class TestSemanticDedup:
    @pytest.fixture
    def setup(self):
        workload = make_nas("cg", "T")
        tree = build_tree(workload.program)
        return workload, tree

    def _alias_pair(self, tree):
        """Two configs with different flags but identical policy maps:
        a function-level SINGLE vs the same function spelled out as
        per-instruction SINGLE flags."""
        func = next(
            n for n in tree.nodes_at(LEVEL_FUNCTION) if list(n.instructions())
        )
        coarse = Config.all_double(tree).set(func.node_id, Policy.SINGLE)
        fine = Config.all_double(tree)
        for insn in func.instructions():
            fine = fine.set(insn.node_id, Policy.SINGLE)
        assert coarse.flags != fine.flags
        assert semantic_key(coarse.instruction_policies()) == semantic_key(
            fine.instruction_policies()
        )
        return coarse, fine

    def test_serial_semantic_hit(self, setup):
        workload, tree = setup
        coarse, fine = self._alias_pair(tree)
        sink = ListSink()
        telemetry = Telemetry(sinks=[sink], metrics=MetricsRegistry())
        evaluator = Evaluator(workload, telemetry=telemetry)
        first = evaluator.evaluate(coarse)
        second = evaluator.evaluate(fine)
        assert first == second
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1
        assert sum(1 for e in sink.events if e["kind"] == "eval.config") == 1

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_semantic_hit_within_batch(self, setup):
        workload, tree = setup
        coarse, fine = self._alias_pair(tree)
        telemetry = Telemetry(sinks=[ListSink()], metrics=MetricsRegistry())
        with ParallelEvaluator(
            workload, tree, workers=2, telemetry=telemetry
        ) as evaluator:
            outcomes = evaluator.evaluate_batch([coarse, fine])
        assert outcomes[0] == outcomes[1]
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1

    def test_disabled_incremental_skips_semantic_cache(self, setup):
        workload, tree = setup
        coarse, fine = self._alias_pair(tree)
        evaluator = Evaluator(workload, incremental=False)
        first = evaluator.evaluate(coarse)
        second = evaluator.evaluate(fine)
        assert first == second  # same executable, same verdict
        assert evaluator.evaluations == 2
        assert evaluator.cache_hits == 0


class TestMachineEligibility:
    def test_stock_workload_is_eligible(self):
        assert machine_eligible(make_nas("cg", "T"))

    def test_custom_run_is_not(self):
        class Custom(type(make_nas("cg", "T"))):
            def run(self, program=None):  # pragma: no cover - marker only
                raise NotImplementedError

        workload = make_nas("cg", "T")
        workload.__class__ = Custom
        assert not machine_eligible(workload)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_finalizer_reaps_pool_without_close():
    workload = make_nas("cg", "T")
    tree = build_tree(workload.program)
    evaluator = ParallelEvaluator(workload, tree, workers=2)
    finalizer = evaluator._finalizer
    assert finalizer.alive
    del evaluator
    # weakref.finalize fires on collection, not interpreter exit.
    import gc

    gc.collect()
    assert not finalizer.alive
