"""Differential: analysis-guided search == unguided search, minus cost.

The guidance contract (SearchOptions.analysis): the final composed
configuration is *identical* to the unguided search's on every
workload, while the number of evaluated configurations only ever drops.
Pruned items appear in the history with ``reason="pruned"`` so the
record of the search stays complete.
"""

from __future__ import annotations

import pytest

from repro.search.bfs import SearchEngine, SearchOptions
from repro.search.results import REASON_PRUNED
from repro.workloads import make_workload

#: cg and mg are the acceptance workloads: the analysis is known to
#: prune there (strict savings asserted); the others assert identity.
WORKLOADS = ("cg", "ep", "ft", "mg", "sp")
STRICT = {("cg", "T"), ("mg", "W")}


def _pair(bench, klass, **kw):
    base = SearchEngine(
        make_workload(bench, klass),
        SearchOptions(analysis=False, **kw),
    ).run()
    guided = SearchEngine(
        make_workload(bench, klass),
        SearchOptions(analysis=True, **kw),
    ).run()
    return base, guided


@pytest.mark.parametrize("bench", WORKLOADS)
def test_guided_final_config_identical(bench):
    # incremental=False so evaluations count 1:1 with queue items: with
    # the semantic dedup cache on, a pruned item can also evict a later
    # cache hit, shifting the count by one without changing any verdict.
    base, guided = _pair(bench, "T", incremental=False)
    assert guided.final_config.flags == base.final_config.flags
    assert guided.final_verified == base.final_verified
    assert guided.static_pct == base.static_pct
    assert guided.dynamic_pct == base.dynamic_pct
    # In the pure BFS phase every prune is exactly one saved evaluation.
    assert guided.configs_tested == base.configs_tested - guided.analysis_pruned


@pytest.mark.parametrize("bench", WORKLOADS)
def test_guided_identical_with_refine(bench):
    """With the refinement phase on, the composed outcome is still
    identical; the evaluation count may shift by cache effects (refine
    can re-test a config the unguided BFS already answered) but never
    exceeds the unguided count."""
    base, guided = _pair(bench, "T", refine=True)
    assert guided.final_config.flags == base.final_config.flags
    assert guided.refined_verified == base.refined_verified
    if base.refined_config is not None:
        assert guided.refined_config.flags == base.refined_config.flags
    assert guided.configs_tested <= base.configs_tested


@pytest.mark.parametrize("bench,klass", sorted(STRICT))
def test_guided_saves_evaluations(bench, klass):
    base, guided = _pair(bench, klass, refine=True)
    assert guided.final_config.flags == base.final_config.flags
    assert guided.configs_tested < base.configs_tested
    assert guided.analysis_pruned > 0


def test_pruned_items_recorded_in_history():
    _base, guided = _pair("cg", "T")
    pruned = [r for r in guided.history if r.reason == REASON_PRUNED]
    assert len(pruned) == guided.analysis_pruned > 0
    for record in pruned:
        assert not record.passed
        # only single-instruction items are ever pruned (either a bare
        # INSN node or a partition group that narrowed to one)
        assert "INSN" in record.label
        if record.label.startswith("["):
            assert record.label.endswith("(1)")
    assert guided.analysis_used


def test_unguided_never_touches_analysis():
    result = SearchEngine(
        make_workload("cg", "T"), SearchOptions(analysis=False)
    ).run()
    assert not result.analysis_used
    assert result.analysis_pruned == 0
    assert not any(r.reason == REASON_PRUNED for r in result.history)


def test_precomputed_report_is_reused():
    from repro.analysis import analyze

    workload = make_workload("cg", "T")
    report = analyze(workload)
    engine = SearchEngine(
        make_workload("cg", "T"),
        SearchOptions(analysis=True),
        report=report,
    )
    result = engine.run()
    assert engine.analysis_report is report
    assert result.analysis_pruned > 0


def test_guided_respects_stop_level():
    """Coarser stop levels only ever see group items, which the guide
    never prunes — results must still be identical."""
    base, guided = _pair("cg", "T", stop_level="block")
    assert guided.final_config.flags == base.final_config.flags
    assert guided.configs_tested <= base.configs_tested
