"""Second-phase refinement and parallel evaluation."""

import pytest

from repro.config import Config, build_tree
from repro.search import Evaluator, SearchEngine, SearchOptions
from repro.search.parallel import ParallelEvaluator, fork_available
from repro.vm import outputs_close, run_program
from tests.conftest import compile_src

# Two structurally identical accumulations: their single-precision errors
# have the same sign and magnitude, so each part passes alone while the
# composed union doubles the error past tolerance.
SRC = """
module comp;
var acc: real;
fn part_a(n: i64) -> real {
    var s: real = 0.0;
    for i in 0 .. n { s = s + 0.123; }
    return s;
}
fn part_b(n: i64) -> real {
    var s: real = 0.0;
    for i in 0 .. n { s = s + 0.123; }
    return s;
}
fn main() {
    acc = part_a(150) + part_b(150);
    out(acc);
}
"""


class _Workload:
    name = "comp"

    def __init__(self, rel_tol):
        self.program = compile_src(SRC)
        self.rel_tol = rel_tol
        self._baseline = run_program(self.program)
        self._prof = None

    def run(self, program=None):
        return run_program(program if program is not None else self.program)

    def verify(self, result):
        return outputs_close(result.values(), self._baseline.values(),
                             rel_tol=self.rel_tol)

    def profile(self):
        if self._prof is None:
            self._prof = run_program(self.program, profile=True).exec_counts
        return self._prof

    def baseline(self):
        return self._baseline


def _tolerance_where_union_fails():
    """Pick a tolerance between one part's error and the union's error."""
    workload = _Workload(1.0)
    tree = build_tree(workload.program)
    from repro.instrument import instrument

    base = workload.baseline().values()[0]

    def err_of(config):
        run = run_program(instrument(workload.program, config).program)
        return abs(run.values()[0] - base) / abs(base)

    from repro.config.model import Policy

    fns = [n for n in tree.nodes_at("function") if "part" in n.label]
    single_errs = [
        err_of(Config(tree, {fn.node_id: Policy.SINGLE})) for fn in fns
    ]
    union_err = err_of(
        Config(tree, {fn.node_id: Policy.SINGLE for fn in fns})
    )
    assert union_err > max(single_errs), "test premise: union error dominates"
    return (max(single_errs) + union_err) / 2


class TestRefinement:
    def test_refine_recovers_composable_subset(self):
        tol = _tolerance_where_union_fails()
        workload = _Workload(tol)
        result = SearchEngine(workload, SearchOptions(refine=True)).run()
        assert not result.final_verified  # union fails by construction
        assert result.refined_config is not None
        assert result.refined_verified
        assert 0 < result.refined_static_pct < result.static_pct
        assert result.refine_drops >= 1

    def test_refine_off_by_default(self):
        tol = _tolerance_where_union_fails()
        result = SearchEngine(_Workload(tol)).run()
        assert result.refined_config is None

    def test_refine_noop_when_union_passes(self):
        result = SearchEngine(_Workload(0.5), SearchOptions(refine=True)).run()
        assert result.final_verified
        assert result.refined_config is None

    def test_refine_history_recorded(self):
        tol = _tolerance_where_union_fails()
        result = SearchEngine(_Workload(tol), SearchOptions(refine=True)).run()
        assert any(h.label.startswith("REFINE(") for h in result.history)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestParallelEvaluation:
    def test_identical_to_serial(self):
        serial = SearchEngine(_Workload(1e-9), SearchOptions(workers=1)).run()
        parallel = SearchEngine(_Workload(1e-9), SearchOptions(workers=3)).run()
        assert serial.configs_tested == parallel.configs_tested
        assert serial.static_pct == parallel.static_pct
        assert serial.dynamic_pct == parallel.dynamic_pct
        assert serial.final_verified == parallel.final_verified
        # batching may reorder evaluations, but the tested set is the same
        assert sorted(h.label for h in serial.history) == sorted(
            h.label for h in parallel.history
        )

    def test_batch_caches(self):
        workload = _Workload(1e-9)
        tree = build_tree(workload.program)
        evaluator = ParallelEvaluator(workload, tree, workers=2)
        try:
            config = Config.all_single(tree)
            first = evaluator.evaluate_batch([config, config.copy()])
            assert first[0] == first[1]
            assert evaluator.evaluations == 1
            again = evaluator.evaluate(config)
            assert again == first[0]
            assert evaluator.evaluations == 1
        finally:
            evaluator.close()

    def test_trap_propagates_as_failure(self):
        # In double, (x + 1 - x) - 1 == 0 and the index is fine; in
        # single, x absorbs the +1 and the index underflows to -1: a
        # trap, the "anything missed causes a crash" behaviour.
        src = """
        var a: real[2] = [1.0, 2.0];
        fn main() {
            var x: real = 100000000.0;
            var y: real = x + 1.0 - x;
            out(a[i64(y - 1.0)]);
        }
        """
        compiled = compile_src(src)

        class W:
            name = "trap"

            def __init__(self, program):
                self.program = program

            def run(self, p=None):
                return run_program(p if p is not None else self.program)

            def verify(self, result):
                return True

            def baseline(self):
                return self.run()

        workload = W(compiled)
        tree = build_tree(compiled)
        evaluator = ParallelEvaluator(workload, tree, workers=2)
        try:
            passed, _cycles, trap, _reason = evaluator.evaluate(
                Config.all_single(tree)
            )
            assert not passed
            assert "out of bounds" in trap
        finally:
            evaluator.close()


class TestSerialEvaluatorBatch:
    def test_evaluate_batch_matches_loop(self):
        workload = _Workload(1e-9)
        evaluator = Evaluator(workload)
        tree = build_tree(workload.program)
        configs = [Config.all_double(tree), Config.all_single(tree)]
        assert evaluator.evaluate_batch(configs) == [
            Evaluator(workload).evaluate(c) for c in configs
        ]


class TestEvaluatorLifecycle:
    def test_serial_evaluator_context_manager(self):
        workload = _Workload(1e-9)
        with Evaluator(workload) as evaluator:
            tree = build_tree(workload.program)
            passed, _cycles, _trap, _reason = evaluator.evaluate(
                Config.all_double(tree)
            )
            assert passed

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_evaluator_context_manager_closes_pool(self):
        workload = _Workload(1e-9)
        tree = build_tree(workload.program)
        with ParallelEvaluator(workload, tree, workers=2) as evaluator:
            assert evaluator._pool is not None
            evaluator.evaluate(Config.all_double(tree))
        assert evaluator._pool is None

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_engine_closes_its_own_evaluator(self):
        workload = _Workload(1e-9)
        engine = SearchEngine(workload, SearchOptions(workers=2))
        engine.run()
        assert engine.evaluator._pool is None  # pool shut down by run()

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_engine_leaves_external_evaluator_open(self):
        workload = _Workload(1e-9)
        tree = build_tree(workload.program)
        with ParallelEvaluator(workload, tree, workers=2) as evaluator:
            engine = SearchEngine(workload, evaluator=evaluator)
            engine.run()
            assert evaluator._pool is not None  # still usable by its owner

    def test_engine_closes_evaluator_when_search_raises(self):
        workload = _Workload(1e-9)

        class ClosableEvaluator(Evaluator):
            closed = False

            def close(self):
                type(self).closed = True

            def evaluate_batch(self, configs):
                raise RuntimeError("mid-search failure")

        engine = SearchEngine(workload)
        engine.evaluator = ClosableEvaluator(workload)
        with pytest.raises(RuntimeError):
            engine.run()
        assert ClosableEvaluator.closed
