"""Lattice-aware search: descent below f32, binary-lattice identity.

The central differential: a search over the explicit two-level lattice
(``"f64,f32"``, the paper's space) is *byte-identical* to the default
pre-lattice search — same configs tested, same history, same serialized
final configuration.  Deeper lattices add ``lattice:<width>`` phases
that only ever narrow sites the binary search already replaced.
"""

from __future__ import annotations

import pytest

from repro.config import Policy, dump_config
from repro.config.model import LEVEL_FUNCTION
from repro.search import SearchEngine, SearchOptions
from repro.vm import outputs_close, run_program
from repro.workloads import make_workload
from tests.conftest import compile_src

# `stable` is exact at every lattice width (1.5 and 2.0 are binary16-
# representable, and the loop returns to 1.0); `tiny` underflows
# binary16 (1e-6 < 2^-14) but fits binary32 and bfloat16; `big` works
# in powers of two — exact even at bfloat16's 8-bit significand — but
# its magnitudes overflow binary16's 65504 ceiling, so the analysis can
# *predict* the f16 failure from the observed ranges; `fragile` needs
# double.
SRC = """
module rungs;
fn stable(n: i64) -> real {
    var p: real = 1.0;
    for i in 0 .. n {
        p = p * 1.5;
        p = p / 1.5;
    }
    return p + 2.0;
}
fn tiny() -> real {
    var t: real = 0.000001;
    return t * 2.0;
}
fn big() -> real {
    var b: real = 131072.0;
    return b * 2.0;
}
fn fragile(n: i64) -> real {
    var s: real = 100000000.0;
    for i in 0 .. n {
        s = s + 0.25;
    }
    return s;
}
fn main() {
    out(stable(8));
    out(tiny());
    out(big());
    out(fragile(100));
}
"""


class _Workload:
    name = "rungs"

    def __init__(self, rel_tol=1e-9):
        self.program = compile_src(SRC)
        self.rel_tol = rel_tol
        self._baseline = run_program(self.program)
        self._profile = None

    def run(self, program=None):
        return run_program(
            program if program is not None else self.program,
            max_steps=2_000_000,
        )

    def verify(self, result):
        return outputs_close(
            result.values(), self._baseline.values(), rel_tol=self.rel_tol
        )

    def profile(self):
        if self._profile is None:
            self._profile = run_program(self.program, profile=True).exec_counts
        return self._profile

    def vm_params(self):
        return {"max_steps": 2_000_000}


class TestOptionsValidation:
    def test_default_is_the_binary_lattice(self):
        assert SearchOptions().lattice == "f64,f32"

    def test_bad_spec_rejected_at_construction(self):
        with pytest.raises(ValueError):
            SearchOptions(lattice="f64,f32,fp8")
        with pytest.raises(ValueError):
            SearchOptions(lattice="f64,f32,f16,bf16")


class TestBinaryLatticeIdentity:
    def test_explicit_binary_lattice_is_byte_identical(self):
        base = SearchEngine(_Workload()).run()
        binary = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32")
        ).run()
        assert binary.configs_tested == base.configs_tested
        assert binary.final_config.flags == base.final_config.flags
        assert [
            (r.label, r.passed, r.cycles, r.phase, r.reason)
            for r in binary.history
        ] == [
            (r.label, r.passed, r.cycles, r.phase, r.reason)
            for r in base.history
        ]
        assert dump_config(binary.final_config) == dump_config(
            base.final_config
        )

    def test_binary_history_has_no_lattice_phase(self):
        result = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32")
        ).run()
        assert not any(r.phase.startswith("lattice:") for r in result.history)


class TestLatticeDescent:
    def test_full_lattice_narrows_below_f32(self):
        result = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32,bf16,f16")
        ).run()
        assert result.final_verified
        policies = result.final_config.instruction_policies()
        narrow = {p for p in policies.values() if p.is_narrow}
        # stable() is exact at binary16; something must land there.
        assert Policy.HALF in narrow

    def test_descent_only_narrows_what_f32_replaced(self):
        base = SearchEngine(_Workload()).run()
        deep = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32,bf16,f16")
        ).run()
        base_p = base.final_config.instruction_policies()
        deep_p = deep.final_config.instruction_policies()
        assert set(base_p) == set(deep_p)
        for addr, policy in deep_p.items():
            if policy.is_narrow:
                # every narrowed site was f32 in the binary search...
                assert base_p[addr] is Policy.SINGLE
            else:
                # ...and every non-narrow verdict is unchanged.
                assert base_p[addr] is policy

    def test_lattice_phases_recorded_in_history(self):
        result = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32,bf16,f16")
        ).run()
        phases = {r.phase for r in result.history}
        assert "lattice:bf16" in phases
        assert "lattice:f16" in phases
        # Descent happens after the main loop, before the final union.
        order = [r.phase for r in result.history]
        assert order.index("lattice:bf16") > max(
            i for i, p in enumerate(order) if p == "bfs"
        )

    def test_underflowing_site_stays_above_f16(self):
        result = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32,bf16,f16")
        ).run()
        tree = result.final_config.tree
        tiny_fn = next(
            n for n in tree.nodes_at(LEVEL_FUNCTION) if "tiny" in n.label
        )
        policies = result.final_config.instruction_policies()
        for insn in tiny_fn.instructions():
            # 1e-6 underflows binary16; bf16/f32 keep it normal.
            assert policies[insn.addr] is not Policy.HALF

    def test_max_configs_budget_respected_through_descent(self):
        result = SearchEngine(
            _Workload(),
            SearchOptions(lattice="f64,f32,bf16,f16", max_configs=3),
        ).run()
        assert result.configs_tested <= 4  # budget + possibly the union

    def test_three_level_lattice_stops_at_bf16(self):
        result = SearchEngine(
            _Workload(), SearchOptions(lattice="f64,f32,bf16")
        ).run()
        policies = result.final_config.instruction_policies()
        assert Policy.HALF not in policies.values()
        assert result.final_verified


class TestWidthSeeding:
    def _pair(self, workload_factory):
        options = dict(lattice="f64,f32,bf16,f16", incremental=False)
        base = SearchEngine(
            workload_factory(), SearchOptions(analysis=False, **options)
        ).run()
        seeded = SearchEngine(
            workload_factory(), SearchOptions(analysis=True, **options)
        ).run()
        return base, seeded

    def test_range_prediction_prunes_the_f16_rung(self):
        # big() passes at bf16 but its observed magnitudes exceed
        # binary16's max finite — the predictor skips the evaluation.
        base, seeded = self._pair(_Workload)
        lattice_prunes = [
            r for r in seeded.history
            if r.reason == "pruned" and r.phase.startswith("lattice:")
        ]
        assert lattice_prunes
        assert all(r.phase == "lattice:f16" for r in lattice_prunes)
        assert seeded.configs_tested < base.configs_tested
        # Pruned or evaluated, the descent lands on the same verdicts.
        assert (seeded.final_config.instruction_policies()
                == base.final_config.instruction_policies())

    def test_seeding_reduces_totals_on_cg(self):
        base, seeded = self._pair(lambda: make_workload("cg", "T"))
        assert seeded.configs_tested < base.configs_tested
        assert (seeded.final_config.instruction_policies()
                == base.final_config.instruction_policies())
