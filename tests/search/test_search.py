"""The automatic breadth-first search."""

import pytest

from repro.config import Config, Policy, build_tree
from repro.config.model import LEVEL_BLOCK, LEVEL_FUNCTION
from repro.search import Evaluator, SearchEngine, SearchOptions
from repro.vm import run_program, outputs_close
from tests.conftest import compile_src

# One clearly insensitive function and one clearly sensitive function:
# `stable` does well-conditioned one-shot arithmetic; `fragile` adds a
# tiny increment to a huge accumulator, which single precision absorbs.
SRC = """
module probe;
fn stable(n: i64) -> real {
    var p: real = 1.0;
    for i in 0 .. n {
        p = p * 1.5;
        p = p / 1.5;
    }
    return p + 2.0;
}
fn fragile(n: i64) -> real {
    var s: real = 100000000.0;
    for i in 0 .. n {
        s = s + 0.25;
    }
    return s;
}
fn main() {
    out(stable(10));
    out(fragile(100));
}
"""


class _Workload:
    name = "probe"

    def __init__(self, rel_tol=1e-12):
        self.program = compile_src(SRC)
        self.rel_tol = rel_tol
        self._baseline = run_program(self.program)
        self._profile = None

    def run(self, program=None):
        return run_program(
            program if program is not None else self.program, max_steps=2_000_000
        )

    def verify(self, result):
        return outputs_close(
            result.values(), self._baseline.values(), rel_tol=self.rel_tol
        )

    def profile(self):
        if self._profile is None:
            self._profile = run_program(self.program, profile=True).exec_counts
        return self._profile


class TestSearchFindsSensitivity:
    def test_separates_stable_from_fragile(self):
        result = SearchEngine(_Workload()).run()
        final = result.final_config
        tree = final.tree
        stable_fn = next(n for n in tree.nodes_at(LEVEL_FUNCTION) if "stable" in n.label)
        fragile_fn = next(n for n in tree.nodes_at(LEVEL_FUNCTION) if "fragile" in n.label)
        policies = final.instruction_policies()
        # every instruction in `stable` got replaced...
        assert all(
            policies[i.addr] is Policy.SINGLE for i in stable_fn.instructions()
        )
        # ...but the fragile accumulator did not.
        fragile_policies = [policies[i.addr] for i in fragile_fn.instructions()]
        assert Policy.DOUBLE in fragile_policies

    def test_final_union_verifies_here(self):
        result = SearchEngine(_Workload()).run()
        assert result.final_verified

    def test_loose_tolerance_replaces_everything(self):
        result = SearchEngine(_Workload(rel_tol=0.5)).run()
        assert result.static_pct == 1.0
        # module config passes immediately; the union is a cache hit
        assert result.configs_tested == 1
        assert [h.label for h in result.history] == ["MODL01", "FINAL(union)"]

    def test_history_records_every_test(self):
        result = SearchEngine(_Workload()).run()
        assert len(result.history) == result.configs_tested + (
            1 if any(h.label == "FINAL(union)" for h in result.history) else 0
        ) or len(result.history) >= result.configs_tested

    def test_candidates_counted(self):
        workload = _Workload()
        result = SearchEngine(workload).run()
        assert result.candidates == build_tree(workload.program).candidate_count


class TestStopLevels:
    @pytest.mark.parametrize("level", ["module", "function", "block"])
    def test_coarser_levels_test_fewer_configs(self, level):
        fine = SearchEngine(_Workload(), SearchOptions(stop_level="instruction")).run()
        coarse = SearchEngine(_Workload(), SearchOptions(stop_level=level)).run()
        assert coarse.configs_tested <= fine.configs_tested

    def test_stop_at_function_never_descends_into_blocks(self):
        result = SearchEngine(_Workload(), SearchOptions(stop_level="function")).run()
        for record in result.history:
            assert "BBLK" not in record.label
            assert "INSN" not in record.label

    def test_bad_stop_level_rejected(self):
        with pytest.raises(ValueError):
            SearchOptions(stop_level="byte")


class TestOptimizations:
    def test_partition_reduces_tests(self):
        with_part = SearchEngine(_Workload(), SearchOptions(partition=True)).run()
        without = SearchEngine(_Workload(), SearchOptions(partition=False)).run()
        assert with_part.configs_tested <= without.configs_tested
        # identical conclusions either way
        assert with_part.static_pct == pytest.approx(without.static_pct)

    def test_prioritize_changes_order_not_result(self):
        hot = SearchEngine(_Workload(), SearchOptions(prioritize=True)).run()
        cold = SearchEngine(_Workload(), SearchOptions(prioritize=False)).run()
        assert hot.static_pct == pytest.approx(cold.static_pct)
        assert hot.dynamic_pct == pytest.approx(cold.dynamic_pct)

    def test_max_configs_budget_respected(self):
        result = SearchEngine(
            _Workload(), SearchOptions(max_configs=3)
        ).run()
        assert result.configs_tested <= 4  # budget + possibly the union


class TestEvaluator:
    def test_cache_hits_on_repeat(self):
        workload = _Workload()
        evaluator = Evaluator(workload)
        tree = build_tree(workload.program)
        config = Config.all_single(tree)
        first = evaluator.evaluate(config)
        second = evaluator.evaluate(config.copy())
        assert first == second
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1

    def test_trap_counts_as_failure(self):
        workload = _Workload()

        class Trapping:
            name = "trap"
            program = workload.program

            def run(self, program=None):
                from repro.vm.errors import VmTrap

                raise VmTrap("boom")

            def verify(self, result):  # pragma: no cover
                return True

        evaluator = Evaluator(Trapping())
        tree = build_tree(workload.program)
        passed, _cycles, trap, _reason = evaluator.evaluate(
            Config.all_single(tree)
        )
        assert not passed and "boom" in trap


class TestBaseConfig:
    def test_ignore_flags_survive_search(self):
        workload = _Workload()
        tree = build_tree(workload.program)
        base = Config(tree)
        first = next(tree.instructions())
        base.set(first.node_id, Policy.IGNORE)
        result = SearchEngine(workload, base_config=base).run()
        assert result.final_config.flags[first.node_id] is Policy.IGNORE
