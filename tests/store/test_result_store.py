"""Property tests for the durable result store (repro.store).

The store's contract: every :class:`EvalOutcome` — all verdicts, all
failure reasons including ``worker_crash`` — survives
store → reload → export bit-exactly; semantic-key collisions (a second
put that disagrees with the recorded outcome) are rejected, never
silently overwritten; and a store written by a different schema version
refuses to open.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.model import Policy
from repro.search.results import (
    REASON_PRUNED,
    REASON_TIMEOUT,
    REASON_TRAP,
    REASON_VERIFY,
    REASON_WORKER_CRASH,
    EvalOutcome,
)
from repro.store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreCollisionError,
    StoreSchemaError,
    policy_digest,
)

REASONS = ("", REASON_TRAP, REASON_TIMEOUT, REASON_VERIFY, REASON_PRUNED,
           REASON_WORKER_CRASH)

# Arbitrary text that JSON and SQLite both round-trip (no surrogates).
clean_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
)

outcomes = st.builds(
    EvalOutcome,
    passed=st.booleans(),
    cycles=st.integers(min_value=0, max_value=2**48),
    trap=clean_text,
    reason=st.sampled_from(REASONS),
)

#: (workload, key) -> (outcome, wall_s); unique keys by construction.
row_maps = st.dictionaries(
    st.tuples(clean_text.filter(bool), clean_text.filter(bool)),
    st.tuples(outcomes, st.floats(min_value=0, max_value=1e6,
                                  allow_nan=False, allow_infinity=False)),
    max_size=12,
)


def _fill(store, rows):
    for (workload, key), (outcome, wall) in rows.items():
        store.put(workload, key, outcome, wall_s=wall)


@settings(max_examples=30, deadline=None)
@given(rows=row_maps)
def test_store_reload_export_bit_exact(rows):
    """Outcomes written to disk read back and export identically after
    the store is closed and reopened."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "results.sqlite")
        with ResultStore(path) as store:
            _fill(store, rows)
            first = list(store.export_lines())
        with ResultStore(path) as store:
            assert list(store.export_lines()) == first
            for (workload, key), (outcome, _) in rows.items():
                assert store.get(workload, key) == outcome
            assert store.count() == len(rows)


@settings(max_examples=30, deadline=None)
@given(rows=row_maps)
def test_export_import_export_bit_exact(rows):
    """A JSONL export merged into a fresh store exports the same bytes
    (timestamps are provenance and carried through the exchange)."""
    with tempfile.TemporaryDirectory() as tmp:
        dump = os.path.join(tmp, "outcomes.jsonl")
        with ResultStore() as store:
            _fill(store, rows)
            assert store.export_jsonl(dump) == len(rows)
            first = list(store.export_lines())
        with ResultStore() as fresh:
            assert fresh.import_jsonl(dump) == len(rows)
            assert list(fresh.export_lines()) == first


@settings(max_examples=30, deadline=None)
@given(first=outcomes, second=outcomes)
def test_collisions_rejected_identical_reputs_ignored(first, second):
    with ResultStore() as store:
        store.put("w", "k", first, wall_s=1.0)
        # An identical re-put (even with a different wall time) no-ops.
        store.put("w", "k", first, wall_s=2.0)
        assert store.puts == 1
        assert store.get("w", "k") == first
        if second == first:
            return
        with pytest.raises(StoreCollisionError):
            store.put("w", "k", second)
        assert store.get("w", "k") == first


@settings(max_examples=30, deadline=None)
@given(outcome=outcomes)
def test_every_reason_survives_one_row(outcome):
    with ResultStore() as store:
        store.put("w", "k", outcome)
        got = store.get("w", "k")
        assert got == outcome
        assert isinstance(got.passed, bool)


def test_worker_crash_reason_round_trips_to_disk():
    crash = EvalOutcome(False, 0, "worker process died (x4 attempts)",
                        REASON_WORKER_CRASH)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "results.sqlite")
        with ResultStore(path) as store:
            store.put("cg.T@abc", "deadbeef", crash, wall_s=0.5)
        with ResultStore(path) as store:
            assert store.get("cg.T@abc", "deadbeef") == crash
            (row,) = store.rows()
            assert row.outcome.reason == REASON_WORKER_CRASH
            assert row.wall_s == 0.5


def test_schema_version_mismatch_refuses_to_open():
    import sqlite3

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "results.sqlite")
        ResultStore(path).close()
        db = sqlite3.connect(path)
        db.execute("UPDATE meta SET value = ? WHERE key = 'schema_version'",
                   (str(SCHEMA_VERSION + 1),))
        db.commit()
        db.close()
        with pytest.raises(StoreSchemaError):
            ResultStore(path)


def test_close_is_idempotent():
    store = ResultStore()
    store.put("w", "k", EvalOutcome(True, 10, "", ""))
    store.close()
    store.close()


# -- policy_digest ----------------------------------------------------------

policies_maps = st.dictionaries(
    st.integers(min_value=0, max_value=2**32),
    st.sampled_from(list(Policy)),
    max_size=16,
)


@settings(max_examples=50, deadline=None)
@given(policies=policies_maps)
def test_policy_digest_order_independent(policies):
    shuffled = dict(sorted(policies.items(), reverse=True))
    assert policy_digest(policies) == policy_digest(shuffled)


@settings(max_examples=50, deadline=None)
@given(policies=policies_maps.filter(bool), flip=st.data())
def test_policy_digest_sensitive_to_any_change(policies, flip):
    addr = flip.draw(st.sampled_from(sorted(policies)))
    changed = dict(policies)
    changed[addr] = flip.draw(
        st.sampled_from([p for p in Policy if p is not policies[addr]])
    )
    assert policy_digest(changed) != policy_digest(policies)
