"""Lattice-aware policy digests and the v1 -> v2 store migration.

Two invariants: the binary f64->f32 lattice (and None) produce exactly
the legacy schema-v1 digests, so every pre-lattice store row stays
addressable; any non-binary lattice salts the digest with its canonical
descriptor, so the same flag map searched over two different width
chains can never replay each other's outcomes.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile

import pytest
from hypothesis import given, strategies as st

from repro.config.model import Policy
from repro.lattice import BINARY_LATTICE, FULL_LATTICE
from repro.search.results import EvalOutcome
from repro.store import SCHEMA_VERSION, ResultStore, policy_digest

policies_maps = st.dictionaries(
    st.integers(min_value=0, max_value=2**20),
    st.sampled_from([Policy.SINGLE, Policy.DOUBLE, Policy.IGNORE,
                     Policy.BF16, Policy.HALF]),
    min_size=1, max_size=8,
)


class TestDigestSalting:
    @given(policies_maps)
    def test_binary_and_none_match_legacy(self, policies):
        legacy = policy_digest(policies)
        assert policy_digest(policies, None) == legacy
        assert policy_digest(policies, "f64,f32") == legacy
        assert policy_digest(policies, BINARY_LATTICE) == legacy

    @given(policies_maps)
    def test_nonbinary_lattices_never_collide(self, policies):
        digests = {
            policy_digest(policies),
            policy_digest(policies, FULL_LATTICE),
            policy_digest(policies, "f64,f32,bf16"),
            policy_digest(policies, "f64,f32,f16"),
        }
        assert len(digests) == 4

    @given(policies_maps)
    def test_spec_and_instance_agree(self, policies):
        assert policy_digest(policies, "f64,f32,bf16,f16") == policy_digest(
            policies, FULL_LATTICE
        )

    def test_narrow_policies_change_the_digest(self):
        base = {0x10: Policy.SINGLE, 0x20: Policy.DOUBLE}
        narrowed = {0x10: Policy.HALF, 0x20: Policy.DOUBLE}
        assert (policy_digest(base, FULL_LATTICE)
                != policy_digest(narrowed, FULL_LATTICE))


class TestStoreIsolationAcrossLattices:
    def test_same_flags_different_lattice_are_different_rows(self):
        policies = {0x10: Policy.SINGLE}
        store = ResultStore()
        binary_key = policy_digest(policies, BINARY_LATTICE)
        full_key = policy_digest(policies, FULL_LATTICE)
        store.put("w", binary_key, EvalOutcome(True, 100, "", ""))
        assert store.get("w", full_key) is None
        store.put("w", full_key, EvalOutcome(False, 0, "", "verify"))
        assert store.get("w", binary_key).passed
        assert not store.get("w", full_key).passed
        store.close()


class TestV1Migration:
    def _reopen_as(self, version):
        tmp = tempfile.mkdtemp()
        path = os.path.join(tmp, "results.sqlite")
        store = ResultStore(path)
        store.put("w", "k", EvalOutcome(True, 42, "", ""))
        store.close()
        db = sqlite3.connect(path)
        db.execute("UPDATE meta SET value = ? WHERE key = 'schema_version'",
                   (str(version),))
        db.commit()
        db.close()
        return path

    def test_v1_store_opens_and_migrates_in_place(self):
        path = self._reopen_as(1)
        store = ResultStore(path)
        # rows written under v1 stay addressable...
        assert store.get("w", "k") == EvalOutcome(True, 42, "", "")
        store.close()
        # ...and the version stamp was bumped on open.
        db = sqlite3.connect(path)
        row = db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        db.close()
        assert int(row[0]) == SCHEMA_VERSION == 2

    def test_future_schema_still_refuses(self):
        from repro.store import StoreSchemaError

        path = self._reopen_as(SCHEMA_VERSION + 1)
        with pytest.raises(StoreSchemaError):
            ResultStore(path)
