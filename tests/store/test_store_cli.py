"""`repro store` exit codes: missing inputs and unusable stores must be
documented non-zero exits, never tracebacks (docs/CLUSTER.md contract).
"""

import sqlite3

import pytest

from repro.cli import EXIT_STORE_MISSING, EXIT_STORE_UNAVAILABLE, main
from repro.search.results import EvalOutcome
from repro.store import ResultStore


@pytest.fixture
def store_db(tmp_path):
    db = str(tmp_path / "results.sqlite")
    with ResultStore(db) as store:
        store.put("cg-w1", "k1", EvalOutcome(True, 100, "", ""))
    return db


class TestExitCodes:
    def test_export_round_trips(self, store_db, tmp_path, capsys):
        out = str(tmp_path / "dump.jsonl")
        assert main(["store", "export", store_db, out]) == 0
        assert "exported 1" in capsys.readouterr().out
        db2 = str(tmp_path / "merged.sqlite")
        assert main(["store", "import", db2, out]) == 0
        assert "imported 1" in capsys.readouterr().out

    def test_export_missing_db_is_exit_3(self, tmp_path, capsys):
        code = main([
            "store", "export",
            str(tmp_path / "nope.sqlite"), str(tmp_path / "out.jsonl"),
        ])
        assert code == EXIT_STORE_MISSING
        assert "no such store" in capsys.readouterr().err

    def test_import_missing_file_is_exit_3(self, store_db, tmp_path, capsys):
        code = main([
            "store", "import", store_db, str(tmp_path / "nope.jsonl"),
        ])
        assert code == EXIT_STORE_MISSING
        assert "no such file" in capsys.readouterr().err

    def test_locked_db_is_exit_4(self, store_db, tmp_path, capsys):
        blocker = sqlite3.connect(store_db)
        try:
            blocker.execute("BEGIN EXCLUSIVE")
            code = main([
                "store", "export", store_db,
                str(tmp_path / "out.jsonl"), "--timeout", "0.1",
            ])
        finally:
            blocker.rollback()
            blocker.close()
        assert code == EXIT_STORE_UNAVAILABLE
        assert "locked" in capsys.readouterr().err

    def test_schema_mismatch_is_exit_4(self, store_db, tmp_path, capsys):
        db = sqlite3.connect(store_db)
        db.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        db.commit()
        db.close()
        code = main([
            "store", "export", store_db, str(tmp_path / "out.jsonl"),
        ])
        assert code == EXIT_STORE_UNAVAILABLE
        assert "schema" in capsys.readouterr().err
