"""Crash-fault tolerance: worker death must never abort a campaign.

Fault injection goes through :data:`repro.search.parallel.FAULT_HOOK` —
set parent-side before the pool forks, inherited by every worker
(including respawned pools).  The file-sentinel idiom crashes exactly
once across respawns: ``os.unlink`` is atomic, so only one worker wins
the race to die.
"""

import os

import pytest

from repro.search import SearchEngine, SearchOptions
from repro.search.parallel import ParallelEvaluator, fork_available
from repro.search.results import REASON_WORKER_CRASH
from repro.workloads import make_workload

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)


def _crash_once_hook(sentinel: str):
    """Kill the calling worker iff it wins the race for *sentinel*."""

    def hook(flags):
        try:
            os.unlink(sentinel)
        except FileNotFoundError:
            return
        os._exit(1)

    return hook


def _crash_on_module_hook(flags):
    """Kill the worker whenever a module-level flag is being tested."""
    if any(key.startswith("MODL") for key in flags):
        os._exit(1)


@pytest.fixture
def fault_hook(monkeypatch):
    """Install a FAULT_HOOK for the duration of one test."""
    from repro.search import parallel

    def install(hook):
        monkeypatch.setattr(parallel, "FAULT_HOOK", hook)

    return install


def test_single_crash_recovered_transparently(tmp_path, fault_hook):
    sentinel = tmp_path / "crash-once"
    sentinel.touch()
    reference = SearchEngine(
        make_workload("cg", "T"), SearchOptions(workers=2)
    ).run()

    fault_hook(_crash_once_hook(str(sentinel)))
    options = SearchOptions(workers=2, retry_backoff=0.001)
    engine = SearchEngine(make_workload("cg", "T"), options)
    result = engine.run()

    assert not sentinel.exists(), "the injected crash never fired"
    assert engine.evaluator.pool_respawns >= 1
    assert engine.evaluator.crashed_configs == 0
    # The crash was invisible to the search: identical outcome.
    assert result.configs_tested == reference.configs_tested
    assert [(r.label, r.passed, r.cycles) for r in result.history] == [
        (r.label, r.passed, r.cycles) for r in reference.history
    ]
    assert not any(r.reason == REASON_WORKER_CRASH for r in result.history)


def test_persistent_crash_classified_not_fatal(fault_hook):
    fault_hook(_crash_on_module_hook)
    options = SearchOptions(workers=2, retry_limit=1, retry_backoff=0.001)
    engine = SearchEngine(make_workload("cg", "T"), options)
    result = engine.run()  # must complete despite every MODL eval dying

    crashed = [r for r in result.history if r.reason == REASON_WORKER_CRASH]
    assert crashed, "no evaluation was classified worker_crash"
    assert all(not r.passed for r in crashed)
    assert all("worker process died" in r.trap for r in crashed)
    assert engine.evaluator.crashed_configs == len(crashed)
    # retry_limit=1 means one retry round per crash cohort: attempts=2.
    assert all("(x2 attempts)" in r.trap for r in crashed)
    # The search descended past the crashes and kept deciding configs.
    assert result.configs_tested > len(crashed)


def test_retry_exhaustion_outcome_shape(fault_hook):
    """Direct evaluator-level check of the bounded-retry classification."""
    from repro.config import Config, build_tree

    fault_hook(lambda flags: os._exit(1))
    workload = make_workload("cg", "T")
    tree = build_tree(workload.program)
    with ParallelEvaluator(
        workload, tree, workers=2, retry_limit=2, retry_backoff=0.001
    ) as evaluator:
        outcome = evaluator.evaluate(Config.all_single(tree))
    assert outcome.passed is False
    assert outcome.cycles == 0
    assert outcome.reason == REASON_WORKER_CRASH
    assert "x3 attempts" in outcome.trap  # 1 try + retry_limit retries
    assert evaluator.crashed_configs == 1
    assert evaluator.pool_respawns == 3


def test_crash_during_campaign_then_resume_identical(tmp_path, fault_hook):
    """The satellite integration test: a worker dies mid-campaign, the
    campaign is interrupted at the next batch boundary, and the resumed
    search still matches the uninterrupted reference exactly."""
    from repro.campaign import Campaign

    reference = SearchEngine(
        make_workload("cg", "T"), SearchOptions(workers=2)
    ).run()

    sentinel = tmp_path / "crash-once"
    sentinel.touch()
    fault_hook(_crash_once_hook(str(sentinel)))
    options = SearchOptions(workers=2, retry_backoff=0.001)
    workdir = tmp_path / "campaign"
    campaign = Campaign.create(workdir, "cg", "T", options)
    campaign.interrupt_after = 1
    with pytest.raises(KeyboardInterrupt):
        SearchEngine(
            make_workload("cg", "T"), options, campaign=campaign
        ).run()
    campaign.close()
    assert not sentinel.exists(), "the injected crash never fired"

    fault_hook(None)  # the fault is gone; only the journal+store remain
    resumed_campaign = Campaign.open(workdir)
    try:
        resumed = SearchEngine(
            make_workload("cg", "T"),
            resumed_campaign.options,
            campaign=resumed_campaign,
        ).run()
    finally:
        resumed_campaign.close()

    assert resumed.resumed
    assert resumed.configs_tested == reference.configs_tested
    assert resumed.final_config.flags == reference.final_config.flags
    assert [(r.label, r.passed, r.cycles, r.reason) for r in resumed.history] == [
        (r.label, r.passed, r.cycles, r.reason) for r in reference.history
    ]
