"""Durable campaigns: journal lifecycle and the resume differential.

The contract under test (the tentpole's acceptance): a search that is
interrupted mid-campaign and resumed produces a final configuration —
and an evaluation history — *identical* to the same search run
uninterrupted, with every previously decided outcome replayed from the
result store instead of re-executed.
"""

import json
import os

import pytest

from repro.campaign import CAMPAIGN_VERSION, Campaign, CampaignError
from repro.experiments.resume import compare
from repro.search import SearchOptions
from repro.search.parallel import fork_available


class TestCampaignLifecycle:
    def test_create_then_open_round_trips_metadata(self, tmp_path):
        options = SearchOptions(workers=2, analysis=True, refine=True)
        with Campaign.create(tmp_path, "cg", "T", options) as campaign:
            assert campaign.status == "running"
        with Campaign.open(tmp_path) as campaign:
            assert campaign.workload == "cg"
            assert campaign.klass == "T"
            assert campaign.options == options

    def test_create_refuses_existing_campaign(self, tmp_path):
        Campaign.create(tmp_path, "cg", "T", SearchOptions()).close()
        with pytest.raises(CampaignError, match="already exists"):
            Campaign.create(tmp_path, "mg", "W", SearchOptions())

    def test_open_requires_campaign_json(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign.json"):
            Campaign.open(tmp_path)

    def test_open_rejects_version_mismatch(self, tmp_path):
        Campaign.create(tmp_path, "cg", "T", SearchOptions()).close()
        meta_path = tmp_path / "campaign.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = CAMPAIGN_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CampaignError, match="version"):
            Campaign.open(tmp_path)

    def test_latest_checkpoint_skips_truncated_tail(self, tmp_path):
        with Campaign.create(tmp_path, "cg", "T", SearchOptions()) as campaign:
            campaign.checkpoint({"batch": 1})
            campaign.checkpoint({"batch": 2})
        # Simulate a SIGKILL mid-write: a garbage, unterminated tail.
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write('{"batch": 3, "queue": [truncat')
        with Campaign.open(tmp_path) as campaign:
            assert campaign.latest_checkpoint() == {"batch": 2}

    def test_latest_checkpoint_none_when_journal_empty(self, tmp_path):
        with Campaign.create(tmp_path, "cg", "T", SearchOptions()) as campaign:
            assert campaign.latest_checkpoint() is None

    def test_latest_checkpoint_none_on_zero_length_journal(self, tmp_path):
        """A zero-length journal (killed before the first checkpoint's
        write ever hit the disk) is a fresh start, not an error — unlike
        a truncated *tail*, which still yields the previous snapshot."""
        with Campaign.create(tmp_path, "cg", "T", SearchOptions()) as campaign:
            campaign.checkpoint({"batch": 1})
        open(tmp_path / "journal.jsonl", "w").close()  # truncate to nothing
        with Campaign.open(tmp_path) as campaign:
            assert campaign.latest_checkpoint() is None

    def test_resume_from_zero_length_journal_restarts_via_store(self, tmp_path):
        """Resuming with an empty journal restarts the search from the
        roots, but the campaign's result store still replays every
        decided outcome — nothing re-executes and the final
        configuration is unchanged."""
        from repro.config.fileformat import dump_config
        from repro.search import SearchEngine
        from repro.workloads import make_workload

        options = SearchOptions()
        reference = SearchEngine(make_workload("mg", "T"), options).run()

        with Campaign.create(tmp_path, "mg", "T", options) as campaign:
            first = SearchEngine(
                make_workload("mg", "T"), options, campaign=campaign
            ).run()
        open(tmp_path / "journal.jsonl", "w").close()
        with Campaign.open(tmp_path) as campaign:
            engine = SearchEngine(
                make_workload("mg", "T"), options, campaign=campaign
            )
            rerun = engine.run()
            assert engine.evaluator.executions == 0
        assert not rerun.resumed  # no checkpoint to restore
        assert rerun.store_replays >= 1
        assert rerun.configs_tested == first.configs_tested
        assert dump_config(rerun.final_config) == dump_config(
            reference.final_config
        )

    def test_status_transitions(self, tmp_path):
        campaign = Campaign.create(tmp_path, "cg", "T", SearchOptions())
        campaign.mark_interrupted()
        assert campaign.status == "interrupted"
        campaign.mark_complete({"final": "pass"})
        assert campaign.status == "complete"
        # A late interrupt (cleanup racing completion) must not regress
        # a finished campaign.
        campaign.mark_interrupted()
        assert campaign.status == "complete"
        campaign.close()
        assert Campaign.open(tmp_path).meta["result"] == {"final": "pass"}

    def test_close_idempotent(self, tmp_path):
        campaign = Campaign.create(tmp_path, "cg", "T", SearchOptions())
        campaign.checkpoint({"batch": 1})
        campaign.close()
        campaign.close()

    def test_interrupt_hook_raises_keyboard_interrupt(self, tmp_path):
        with Campaign.create(tmp_path, "cg", "T", SearchOptions()) as campaign:
            campaign.interrupt_after = 2
            campaign.checkpoint({"batch": 1})
            with pytest.raises(KeyboardInterrupt):
                campaign.checkpoint({"batch": 2})
            # The interrupting checkpoint itself is durable.
            assert campaign.latest_checkpoint() == {"batch": 2}


class TestResumeDifferential:
    """Interrupt → resume → warm start on real NAS workloads."""

    def test_serial_resume_identical_on_cg(self, tmp_path):
        c = compare("cg", "T", interrupt_after=2, workdir=str(tmp_path))
        assert c.identical_final, "resumed search composed a different config"
        assert c.identical_history
        assert c.resumed_tested == c.base_tested
        assert c.store_replays >= 1
        # Warm start: the second search re-executes nothing.
        assert c.warm_tested == c.base_tested
        assert c.warm_executions == 0
        # The campaign directory records the finished run.
        meta = json.loads((tmp_path / "campaign.json").read_text())
        assert meta["status"] == "complete"

    def test_serial_resume_identical_on_mg(self, tmp_path):
        c = compare("mg", "W", interrupt_after=2, workdir=str(tmp_path))
        assert c.identical_final
        assert c.identical_history
        assert c.resumed_tested == c.base_tested
        assert c.warm_executions == 0

    def test_resume_with_analysis_guidance(self, tmp_path):
        options = SearchOptions(analysis=True)
        c = compare("cg", "T", interrupt_after=2, options=options,
                    workdir=str(tmp_path))
        assert c.identical_final
        assert c.identical_history
        assert c.resumed_tested == c.base_tested
        assert c.warm_executions == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_resume_identical_on_cg(self, tmp_path):
        options = SearchOptions(workers=2)
        c = compare("cg", "T", interrupt_after=1, options=options,
                    workdir=str(tmp_path))
        assert c.identical_final
        assert c.identical_history
        assert c.resumed_tested == c.base_tested
        assert c.warm_executions == 0

    def test_interrupted_campaign_marked_and_journaled(self, tmp_path):
        from repro.search import SearchEngine
        from repro.workloads import make_workload

        campaign = Campaign.create(tmp_path, "cg", "T", SearchOptions())
        campaign.interrupt_after = 1
        with pytest.raises(KeyboardInterrupt):
            SearchEngine(
                make_workload("cg", "T"), SearchOptions(), campaign=campaign
            ).run()
        campaign.close()
        meta = json.loads((tmp_path / "campaign.json").read_text())
        assert meta["status"] == "interrupted"
        # The journal holds exactly the checkpoints written before the
        # interrupt, each a complete JSON line (satellite: a mid-batch
        # KeyboardInterrupt never truncates the journal).
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 1
        snap = json.loads(lines[0])
        assert snap["batch"] == 1
        assert os.path.exists(tmp_path / "results.sqlite")
