"""Instrumentation of bfloat16/binary16 policies (the lattice widths).

The guard chains generalize the paper's single-in-double scheme: each
narrow width has its own high-word sentinel, every upcast check tests
all live sentinels, and a program whose policies stay within f64/f32
compiles byte-identically to the pre-lattice instrumenter (covered by
the incremental-cache differential suite; here we exercise the new
widths end to end).
"""

from __future__ import annotations

import pytest

from repro.asm import assemble_text
from repro.config import Config, Policy, build_tree
from repro.fpbits.narrow import bits_to_bf16, bits_to_f16
from repro.fpbits.replace import replaced_width
from repro.instrument import instrument
from repro.instrument.engine import InstrumentError
from repro.instrument.snippets import DEFAULT_WIDTHS, live_widths
from repro.vm import run_program
from tests.conftest import compile_src

# Arithmetic that is exact even in binary16: 1.5 and 2.0 are
# representable at every lattice width, and the loop returns to 1.0.
SRC = """
module narrowp;
fn main() {
    var p: real = 1.0;
    for i in 0 .. 8 {
        p = p * 1.5;
        p = p / 1.5;
    }
    out(p + 2.0);
}
"""

PACKED = """
.global vec 4 0x3ff0000000000000 0x4000000000000000 0x4008000000000000 0x4010000000000000
.func _start
    movapd %x0, [vec]
    movapd %x1, [vec+2]
    addpd %x0, %x1
    outsd %x0
    halt
.endfunc
"""


def _all_at(tree, policy):
    config = Config(tree)
    for root in tree.roots:
        config.set(root.node_id, policy)
    return config


class TestLiveWidths:
    def test_empty_and_all_double_default_to_f32(self):
        assert live_widths({}) == DEFAULT_WIDTHS == ("f32",)
        assert live_widths({0x10: Policy.DOUBLE}) == ("f32",)
        assert live_widths({0x10: Policy.IGNORE}) == ("f32",)

    def test_widths_listed_in_lattice_order(self):
        policies = {0x10: Policy.HALF, 0x20: Policy.SINGLE,
                    0x30: Policy.BF16}
        assert live_widths(policies) == ("f32", "bf16", "f16")

    def test_single_narrow_width(self):
        assert live_widths({0x10: Policy.BF16}) == ("bf16",)
        assert live_widths({0x10: Policy.HALF}) == ("f16",)


class TestNarrowExecution:
    @pytest.mark.parametrize("policy,width,decode", [
        (Policy.BF16, "bf16", bits_to_bf16),
        (Policy.HALF, "f16", bits_to_f16),
    ])
    def test_exact_arithmetic_survives_at_width(self, policy, width, decode):
        program = compile_src(SRC)
        tree = build_tree(program)
        instrumented = instrument(program, _all_at(tree, policy))
        run = run_program(instrumented.program, max_steps=2_000_000)
        bits = run.outputs[0][1]
        assert replaced_width(bits) == width
        assert decode(bits & 0xFFFF) == 3.0

    def test_narrow_matches_double_on_exact_values(self):
        program = compile_src(SRC)
        base = run_program(program)
        tree = build_tree(program)
        instrumented = instrument(program, _all_at(tree, Policy.HALF))
        run = run_program(instrumented.program, max_steps=2_000_000)
        from repro.fpbits.replace import read_operand_as_double_any

        got = [read_operand_as_double_any(bits) for _, bits in run.outputs]
        want = [read_operand_as_double_any(bits) for _, bits in base.outputs]
        assert got == want

    def test_mixed_widths_coexist(self):
        # Half the program at f16, the rest at f32: downcast guards must
        # rehydrate each other's sentinels before re-narrowing.
        program = compile_src(SRC)
        tree = build_tree(program)
        config = Config.all_single(tree)
        insns = list(tree.instructions())
        for insn in insns[: len(insns) // 2]:
            config.set(insn.node_id, Policy.HALF)
        instrumented = instrument(program, config)
        run = run_program(instrumented.program, max_steps=2_000_000)
        bits = run.outputs[0][1]
        assert replaced_width(bits) in ("f32", "f16")
        from repro.fpbits.replace import read_operand_as_double_any

        assert read_operand_as_double_any(bits) == 3.0


class TestPackedNarrowRejected:
    def test_packed_site_at_narrow_width_is_an_instrument_error(self):
        # The 16-bit families carry no packed equivalents: narrowing a
        # packed site must fail loudly, never emit a wrong snippet.
        program = assemble_text(PACKED)
        tree = build_tree(program)
        with pytest.raises(InstrumentError, match="no bf16 equivalent"):
            instrument(program, _all_at(tree, Policy.BF16))
