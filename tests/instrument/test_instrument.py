"""Instrumentation engine: snippets, rewriting, semantics preservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Config, Policy, build_tree
from repro.fpbits.ieee import bits_to_double, bits_to_single
from repro.fpbits.replace import is_replaced, replaced_single_bits
from repro.instrument import InstrumentError, instrument
from repro.vm import run_program
from repro.vm.errors import VmTrap
from tests.conftest import compile_src

SRC = """
module kern;
var data: real[16];
fn fill() {
    for i in 0 .. 16 {
        data[i] = real(i) * 0.3 + 1.0;
    }
}
fn work() -> real {
    var s: real = 0.0;
    var p: real = 1.0;
    for i in 0 .. 16 {
        s = s + data[i] * data[i];
        if i % 3 == 0 {
            p = p * sqrt(data[i]);
        }
    }
    return s / p;
}
fn main() {
    fill();
    out(work());
}
"""


@pytest.fixture
def program():
    return compile_src(SRC)


@pytest.fixture
def tree(program):
    return build_tree(program)


class TestModes:
    def test_none_mode_roundtrips_layout(self, program, tree):
        # Rewriting with no snippets must preserve behaviour exactly even
        # though every address changes.
        result = instrument(program, Config.all_double(tree), mode="none")
        assert not result.snippeted
        assert run_program(result.program).outputs == run_program(program).outputs

    def test_auto_mode_skips_snippets_when_all_double(self, program, tree):
        result = instrument(program, Config.all_double(tree), mode="auto")
        assert not result.snippeted

    def test_auto_mode_snippets_when_any_single(self, program, tree):
        config = Config.all_double(tree)
        config.set(next(tree.instructions()).node_id, Policy.SINGLE)
        result = instrument(program, config, mode="auto")
        assert result.snippeted
        assert result.stats.replaced_single == 1
        assert result.stats.wrapped_double == tree.candidate_count - 1

    def test_all_mode_is_bit_identical(self, program, tree):
        result = instrument(program, Config.all_double(tree), mode="all")
        assert run_program(result.program).outputs == run_program(program).outputs
        assert result.growth > 1.0

    def test_bad_mode_rejected(self, program, tree):
        with pytest.raises(InstrumentError):
            instrument(program, Config.all_double(tree), mode="bogus")


class TestSingleReplacement:
    def test_all_single_flags_outputs(self, program, tree):
        result = instrument(program, Config.all_single(tree))
        run = run_program(result.program)
        (kind, bits), = run.outputs
        assert kind == "d" and is_replaced(bits)

    def test_all_single_matches_f32_build(self, tree):
        # The paper's core correctness claim, on this kernel.
        program = compile_src(SRC)
        program32 = compile_src(SRC, real_type="f32")
        instrumented = instrument(program, Config.all_single(build_tree(program)))
        got = run_program(instrumented.program).outputs
        want = run_program(program32).outputs
        assert len(got) == len(want)
        for (gk, gb), (wk, wb) in zip(got, want):
            assert gk == "d" and wk == "s"
            assert replaced_single_bits(gb) == wb

    def test_single_result_differs_from_double(self, program, tree):
        base = run_program(program).values()[0]
        mixed = run_program(instrument(program, Config.all_single(tree)).program)
        got = mixed.values()[0]
        assert got != base
        assert abs(got - base) / abs(base) < 1e-5

    def test_function_level_replacement(self, program, tree):
        from repro.config.model import LEVEL_FUNCTION

        fill_fn = next(
            n for n in tree.nodes_at(LEVEL_FUNCTION) if "fill" in n.label
        )
        config = Config(tree).set(fill_fn.node_id, Policy.SINGLE)
        result = run_program(instrument(program, config).program)
        base = run_program(program).values()[0]
        got = result.values()[0]
        assert got != base  # fill rounded to single
        assert abs(got - base) / abs(base) < 1e-5


class TestIgnore:
    def test_ignored_instruction_left_verbatim(self, program, tree):
        # IGNORE everything => snippets only if some single exists; an
        # all-ignore config with one single still must not touch the
        # ignored instructions.
        nodes = list(tree.instructions())
        config = Config(tree)
        config.set(nodes[0].node_id, Policy.SINGLE)
        for node in nodes[1:]:
            config.set(node.node_id, Policy.IGNORE)
        result = instrument(program, config)
        assert result.stats.ignored == len(nodes) - 1

    def test_ignored_consumer_of_flagged_value_sees_nan(self):
        src = """
        fn main() {
            var a: real = 1.5;
            var b: real = a * 2.0;
            out(b + 1.0);
        }
        """
        program = compile_src(src)
        tree = build_tree(program)
        nodes = list(tree.instructions())
        config = Config(tree)
        config.set(nodes[0].node_id, Policy.SINGLE)  # the multiply: flags b
        config.set(nodes[1].node_id, Policy.IGNORE)  # the add: raw addsd
        run = run_program(instrument(program, config).program)
        value = run.values()[0]
        assert value != value  # NaN reaches the output: loud failure


class TestMixedConfigs:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_configs_never_nan_when_guarded(self, data):
        """Any single/double mix over candidates must produce a clean
        (non-NaN, close-to-baseline) result: the guards upcast whatever
        the replacements flag."""
        program = compile_src(SRC)
        tree = build_tree(program)
        base = run_program(program).values()[0]
        config = Config(tree)
        for node in tree.instructions():
            if data.draw(st.booleans()):
                config.set(node.node_id, Policy.SINGLE)
        result = run_program(instrument(program, config).program)
        got = result.values()[0]
        assert got == got, "guarded mixed config produced NaN"
        assert abs(got - base) / abs(base) < 1e-4

    def test_growth_reported(self, program, tree):
        config = Config.all_single(tree)
        result = instrument(program, config)
        assert result.growth == len(result.program.text) / len(program.text)


class TestDataflowOptimization:
    def test_optimized_program_identical_outputs(self, program, tree):
        config = Config(tree)
        for index, node in enumerate(tree.instructions()):
            if index % 2 == 0:
                config.set(node.node_id, Policy.SINGLE)
        plain = instrument(program, config, optimize_checks=False)
        optimized = instrument(program, config, optimize_checks=True)
        run_a = run_program(plain.program)
        run_b = run_program(optimized.program)
        assert run_a.outputs == run_b.outputs
        assert run_b.cycles <= run_a.cycles

    def test_checks_actually_skipped(self, program, tree):
        config = Config(tree)
        # all-double in 'all' mode: consecutive guards on the same register
        # within a block are redundant.
        plain = instrument(program, Config.all_double(tree), mode="all")
        assert plain.stats.checks_skipped == 0
        optimized = instrument(
            program, Config.all_double(tree), mode="all", optimize_checks=True
        )
        assert optimized.stats.checks_skipped > 0


class TestTranscendentalsAndConversions:
    def test_transcendental_replacement(self):
        src = "fn main() { out(sin(1.0) + exp(0.5)); }"
        program = compile_src(src)
        tree = build_tree(program)
        base = run_program(program).values()[0]
        mixed = run_program(instrument(program, Config.all_single(tree)).program)
        got = mixed.values()[0]
        import math

        want32 = float(__import__("numpy").float32(math.sin(1.0)) + __import__("numpy").float32(math.exp(0.5)))
        assert abs(got - want32) < 1e-6
        assert got != base

    def test_int_conversion_chain(self):
        src = """
        fn main() {
            var x: real = 7.9;
            var k: i64 = i64(x * 2.0);
            out(k);
            out(real(k) / 4.0);
        }
        """
        program = compile_src(src)
        tree = build_tree(program)
        run = run_program(instrument(program, Config.all_single(tree)).program)
        assert run.values() == [15, 3.75]


class TestCrashSemantics:
    def test_corrupted_index_traps_not_silent(self):
        # If a flagged value flows into address arithmetic via an ignored
        # conversion, the VM traps (or produces the indefinite), which the
        # evaluator counts as failed verification.
        src = """
        var a: real[4] = [1.0, 2.0, 3.0, 4.0];
        fn main() {
            var x: real = 3.0;
            var y: real = x * 1.0;
            var k: i64 = i64(y);
            out(a[k]);
        }
        """
        program = compile_src(src)
        tree = build_tree(program)
        nodes = list(tree.instructions())
        config = Config(tree)
        # single-replace the multiply, ignore the conversion: it reads the
        # flagged slot as a NaN double -> integer indefinite -> huge index.
        mul = next(n for n in nodes if "mulsd" in n.text)
        cvt = next(n for n in nodes if "cvttsd2si" in n.text)
        config.set(mul.node_id, Policy.SINGLE)
        config.set(cvt.node_id, Policy.IGNORE)
        with pytest.raises(VmTrap):
            run_program(instrument(program, config).program)


class TestStreamlining:
    def test_streamlined_results_identical(self, program, tree):
        config = Config.all_single(tree)
        plain = run_program(instrument(program, config).program)
        lean = run_program(instrument(program, config, streamline=True).program)
        assert plain.outputs == lean.outputs

    def test_streamlined_is_cheaper(self, program, tree):
        config = Config.all_double(tree)
        plain = instrument(program, config, mode="all")
        lean = instrument(program, config, mode="all", streamline=True)
        assert lean.stats.saves_elided > 0
        assert run_program(lean.program).cycles < run_program(plain.program).cycles

    def test_streamline_rejected_when_scratch_used(self):
        from repro.asm import assemble_text

        hand_written = assemble_text(
            """
.func _start
    mov %r12, $1
    mov %r1, $d:1.0
    movqxr %x0, %r1
    addsd %x0, %x0
    halt
.endfunc
"""
        )
        config = Config.all_single(build_tree(hand_written))
        with pytest.raises(InstrumentError, match="reserved"):
            instrument(hand_written, config, streamline=True)
