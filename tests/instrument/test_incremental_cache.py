"""Differential tests for the incremental instrumentation cache.

The cache is only allowed to be faster — never different.  For every
NAS workload, under both ``optimize_checks`` settings, the program a
cache-backed ``instrument()`` assembles must be byte-identical to the
cold rewriter's output, and executing it must reproduce outputs, cycle
counts, and step counts bit-for-bit.
"""

import pytest

from repro.config import Config, Policy, build_tree
from repro.config.model import LEVEL_FUNCTION
from repro.instrument import InstrumentCache, InstrumentError, instrument
from repro.vm import run_program
from repro.workloads import make_nas
from tests.conftest import compile_src

NAS = ["cg", "bt", "ep", "ft", "lu", "mg", "sp"]


def _configs(tree):
    """All-double, all-single, and a mixed function-level config."""
    yield Config.all_double(tree)
    yield Config.all_single(tree)
    mixed = Config.all_double(tree)
    for k, node in enumerate(tree.nodes_at(LEVEL_FUNCTION)):
        if k % 2 == 0:
            mixed = mixed.set(node.node_id, Policy.SINGLE)
    yield mixed


@pytest.mark.parametrize("optimize_checks", [False, True])
@pytest.mark.parametrize("bench", NAS)
def test_cached_instrument_is_byte_identical(bench, optimize_checks):
    workload = make_nas(bench, "T")
    program = workload.program
    tree = build_tree(program)
    cache = InstrumentCache(program)
    for config in _configs(tree):
        cold = instrument(program, config, optimize_checks=optimize_checks)
        warm = instrument(
            program, config, optimize_checks=optimize_checks, cache=cache
        )
        assert warm.program.text == cold.program.text
        assert warm.program.entry == cold.program.entry
        assert warm.program.data_image == cold.program.data_image
        assert warm.program.debug_lines == cold.program.debug_lines
        assert warm.stats.replaced_single == cold.stats.replaced_single
        assert warm.stats.checks_skipped == cold.stats.checks_skipped

        ran_cold = workload.run(cold.program)
        ran_warm = workload.run(warm.program)
        assert ran_warm.outputs == ran_cold.outputs
        assert ran_warm.cycles == ran_cold.cycles
        assert ran_warm.steps == ran_cold.steps


def test_repeat_instrument_hits_every_block():
    workload = make_nas("cg", "T")
    tree = build_tree(workload.program)
    cache = InstrumentCache(workload.program)
    config = Config.all_single(tree)

    instrument(workload.program, config, cache=cache)
    misses_after_first = cache.misses
    assert misses_after_first > 0 and cache.hits == 0

    instrument(workload.program, config, cache=cache)
    assert cache.misses == misses_after_first  # nothing re-snippeted
    assert cache.hits == misses_after_first


def test_single_flag_change_rebuilds_one_block():
    workload = make_nas("cg", "T")
    tree = build_tree(workload.program)
    cache = InstrumentCache(workload.program)

    # Two candidate instructions in different basic blocks; both configs
    # snippet every block (flag resolution is outermost-wins, so the
    # base flag must sit on an instruction, not the root).
    insns = list(tree.instructions())
    first = insns[0]
    other = next(n for n in insns if n.parent is not first.parent)

    base = Config.all_double(tree).set(first.node_id, Policy.SINGLE)
    instrument(workload.program, base, cache=cache)
    misses_before = cache.misses

    changed = base.copy().set(other.node_id, Policy.SINGLE)
    instrument(workload.program, changed, cache=cache)
    # Only the block containing the newly flipped instruction rebuilds.
    assert cache.misses == misses_before + 1


def test_cache_rejects_foreign_program():
    cache = InstrumentCache(make_nas("cg", "T").program)
    other = compile_src("fn main() { out(1.0); }")
    tree = build_tree(other)
    with pytest.raises(InstrumentError):
        instrument(other, Config.all_double(tree), cache=cache)


def test_segments_tile_the_text_section():
    workload = make_nas("mg", "T")
    tree = build_tree(workload.program)
    cache = InstrumentCache(workload.program)
    result = instrument(workload.program, Config.all_single(tree), cache=cache)
    assert result.segments is not None
    expect = 0
    for seg_bytes, base in result.segments:
        assert base == expect
        expect += len(seg_bytes)
    assert expect == len(result.program.text)


def test_cached_program_runs_without_cfg():
    # Cache-assembled programs defer CFG construction; running them (and
    # rebuilding the CFG on demand) must both work.
    workload = make_nas("lu", "T")
    tree = build_tree(workload.program)
    cache = InstrumentCache(workload.program)
    result = instrument(workload.program, Config.all_single(tree), cache=cache)
    assert all(not fn.blocks for fn in result.program.functions if fn.entry < fn.end)
    run_program(result.program)
    result.program.ensure_cfg()
    assert any(fn.blocks for fn in result.program.functions)


def test_replay_cache_is_byte_identical_and_stat_exact():
    # The rewriter memoizes each instruction site's expansion and replays
    # it on later rewrites of the same program (rewriter._REPLAY).  A
    # replayed rewrite must be indistinguishable from a fresh one: same
    # bytes, same debug info, same statistics to the last counter.
    import dataclasses

    from repro.instrument import rewriter

    workload = make_nas("mg", "T")
    program = workload.program
    tree = build_tree(program)
    rewriter._REPLAY.clear()
    for config in _configs(tree):
        fresh = instrument(program, config)     # populates the site cache
        replayed = instrument(program, config)  # replays every site
        assert replayed.program.text == fresh.program.text
        assert replayed.program.entry == fresh.program.entry
        assert replayed.program.debug_lines == fresh.program.debug_lines
        assert dataclasses.asdict(replayed.stats) == dataclasses.asdict(
            fresh.stats
        )


def test_replay_cache_evicts_fifo_and_pins_programs():
    from repro.instrument import rewriter

    rewriter._REPLAY.clear()
    programs = [make_nas(bench, "T").program for bench in NAS] + [
        make_nas(bench, "S").program for bench in ("cg", "ep")
    ]
    for program in programs:
        instrument(program, Config.all_double(build_tree(program)))
    assert len(rewriter._REPLAY) <= rewriter._REPLAY_MAX
    # Each surviving entry holds a strong reference to its program, so
    # the id() key cannot be recycled by a newly allocated program.
    for key, (pinned, _sites) in rewriter._REPLAY.items():
        assert id(pinned) == key
