"""Instrumentation of packed SSE code and interaction with MPI."""

import pytest

from repro.asm import assemble_text
from repro.binary import build_cfg
from repro.config import Config, Policy, build_tree
from repro.fpbits.ieee import bits_to_double, bits_to_single, double_to_bits
from repro.fpbits.replace import is_replaced, replaced_single_bits
from repro.instrument import instrument
from repro.mpi import run_mpi_program
from repro.vm import run_program
from tests.conftest import compile_src

PACKED = """
.global vec 6 0x3ff0000000000000 0x4000000000000000 0x4008000000000000 0x4010000000000000 0 0
.func _start
    movapd %x0, [vec]          ; (1.0, 2.0)
    movapd %x1, [vec+2]        ; (3.0, 4.0)
    addpd %x0, %x1             ; (4.0, 6.0)
    mulpd %x0, %x1             ; (12.0, 24.0)
    movapd [vec+4], %x0
    outsd %x0
    pextr %r0, %x0, $1
    outi %r0
    halt
.endfunc
"""


def _packed_program():
    return assemble_text(PACKED)


class TestPackedInstrumentation:
    def test_packed_all_double_identical(self):
        program = _packed_program()
        base = run_program(program)
        instrumented = instrument(
            program, Config.all_double(build_tree(program)), mode="all"
        )
        run = run_program(instrumented.program)
        assert run.outputs == base.outputs

    def test_packed_all_single_flags_both_lanes(self):
        program = _packed_program()
        instrumented = instrument(program, Config.all_single(build_tree(program)))
        run = run_program(instrumented.program)
        low = run.outputs[0][1]
        high = run.outputs[1][1]
        assert is_replaced(low) and is_replaced(high)
        assert bits_to_single(replaced_single_bits(low)) == 12.0
        assert bits_to_single(replaced_single_bits(high)) == 24.0

    def test_packed_memory_store_carries_flags(self):
        program = _packed_program()
        instrumented = instrument(program, Config.all_single(build_tree(program)))
        from repro.vm.machine import VM

        vm = VM(instrumented.program)
        vm.run()
        base = instrumented.program.globals["vec"].addr
        assert is_replaced(vm.mem[base + 4])
        assert is_replaced(vm.mem[base + 5])

    def test_packed_mixed_lanes_upcast_correctly(self):
        # addpd single, mulpd double: the guard on mulpd must upcast both
        # flagged lanes before multiplying in double.
        program = _packed_program()
        tree = build_tree(program)
        nodes = list(tree.instructions())
        addpd = next(n for n in nodes if "addpd" in n.text)
        config = Config(tree).set(addpd.node_id, Policy.SINGLE)
        run = run_program(instrument(program, config).program)
        assert run.values()[0] == 12.0  # exact: small integers survive f32
        assert bits_to_double(run.outputs[1][1]) == 24.0


MPI_SRC = """
fn main() {
    var x: real = 0.1 * real(mpi_rank() + 1);
    var y: real = x * 3.0;
    out(allreduce_sum(y));
}
"""


class TestMpiInteraction:
    def test_flagged_value_through_allreduce_is_nan(self):
        # A replaced (flagged) register fed to an uninstrumented
        # allreduce is a NaN double: the collective sums NaN on every
        # rank and verification fails loudly — faithful to the design.
        program = compile_src(MPI_SRC)
        tree = build_tree(program)
        nodes = list(tree.instructions())
        config = Config(tree)
        for node in nodes:
            config.set(node.node_id, Policy.SINGLE)
        instrumented = instrument(program, config)
        result = run_mpi_program(instrumented.program, 2)
        value = result.values()[0]
        assert value != value  # NaN

    def test_all_double_instrumentation_preserves_mpi_results(self):
        program = compile_src(MPI_SRC)
        instrumented = instrument(
            program, Config.all_double(build_tree(program)), mode="all"
        )
        base = run_mpi_program(program, 4)
        run = run_mpi_program(instrumented.program, 4)
        assert run.outputs == base.outputs

    def test_serial_single_before_allreduce_identity(self):
        # At one rank the collective is a no-op pass-through, so a flagged
        # value survives it and decodes transparently.
        program = compile_src(MPI_SRC)
        tree = build_tree(program)
        instrumented = instrument(program, Config.all_single(tree))
        run = run_program(instrumented.program)
        (kind, bits), = run.outputs
        assert kind == "d" and is_replaced(bits)
        import numpy as np

        want = np.float32(np.float32(0.1) * np.float32(1.0)) * np.float32(3.0)
        assert bits_to_single(replaced_single_bits(bits)) == float(want)


class TestRewriterInvariants:
    @pytest.mark.parametrize("bench", ("ep", "cg", "mg"))
    def test_rewritten_program_has_valid_cfg(self, bench):
        from repro.workloads import make_nas

        workload = make_nas(bench, "S")
        tree = build_tree(workload.program)
        instrumented = instrument(workload.program, Config.all_single(tree))
        # build_cfg raises on any branch that escapes its function
        build_cfg(instrumented.program)
        stats = instrumented.program.stats()
        assert stats["functions"] == workload.program.stats()["functions"]

    def test_double_instrumentation_idempotent_semantics(self):
        # Instrumenting an already-instrumented binary must still preserve
        # behaviour (checks on checks are wasteful but correct).
        program = compile_src("fn main() { out(0.1 + 0.2); }")
        tree = build_tree(program)
        once = instrument(program, Config.all_double(tree), mode="all").program
        twice = instrument(once, Config.all_double(build_tree(once)), mode="all").program
        assert run_program(twice).outputs == run_program(program).outputs

    def test_data_addresses_stable_across_rewrite(self):
        from repro.workloads import make_nas

        workload = make_nas("cg", "S")
        tree = build_tree(workload.program)
        instrumented = instrument(workload.program, Config.all_single(tree))
        for name, symbol in workload.program.globals.items():
            assert instrumented.program.globals[name].addr == symbol.addr
