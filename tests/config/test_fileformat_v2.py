"""Exchange format v2: the additive ``# lattice:`` header.

The compatibility contract: every v1 (binary-lattice) file is a valid
v2 file, serializes byte-identically whether or not the writer is
lattice-aware, and the narrow flags ``b``/``h`` round-trip exactly like
the original ``s``/``d``/``i``.
"""

from __future__ import annotations

import pytest

from repro.config import Config, Policy, build_tree, dump_config, load_config
from repro.config.fileformat import ConfigFormatError, read_lattice_header
from repro.lattice import BINARY_LATTICE, FULL_LATTICE
from tests.conftest import compile_src

SRC = """
module vtwo;
fn scale(x: real) -> real {
    return x * 0.5 + 1.0;
}
fn main() {
    var s: real = 0.0;
    for i in 0 .. 4 {
        s = s + scale(real(i));
    }
    out(s);
}
"""


@pytest.fixture
def tree():
    return build_tree(compile_src(SRC))


def _mixed_config(tree):
    """One node at each policy the lattice knows about."""
    config = Config(tree)
    insns = list(tree.instructions())
    assert len(insns) >= 4
    config.set(insns[0].node_id, Policy.SINGLE)
    config.set(insns[1].node_id, Policy.BF16)
    config.set(insns[2].node_id, Policy.HALF)
    config.set(insns[3].node_id, Policy.DOUBLE)
    return config


class TestBinaryStaysV1:
    def test_no_lattice_matches_legacy_bytes(self, tree):
        config = Config.all_single(tree)
        legacy = dump_config(config)
        assert dump_config(config, lattice=None) == legacy
        assert dump_config(config, lattice="f64,f32") == legacy
        assert dump_config(config, lattice=BINARY_LATTICE) == legacy
        assert "# lattice:" not in legacy

    def test_legacy_text_roundtrips_byte_identically(self, tree):
        config = Config.all_single(tree)
        text = dump_config(config)
        back = load_config(tree, text)
        assert back.flags == config.flags
        assert dump_config(back) == text

    def test_v1_reader_result_has_no_header(self, tree):
        text = dump_config(Config.all_single(tree))
        assert read_lattice_header(text) is None


class TestLatticeHeader:
    def test_nonbinary_lattice_adds_header(self, tree):
        text = dump_config(Config(tree), lattice=FULL_LATTICE)
        assert "# lattice: f64,f32,bf16,f16\n" in text
        assert read_lattice_header(text) == "f64,f32,bf16,f16"

    def test_spec_string_accepted(self, tree):
        text = dump_config(Config(tree), lattice="f64,f32,f16")
        assert read_lattice_header(text) == "f64,f32,f16"

    def test_header_precedes_structure_and_survives_load(self, tree):
        config = _mixed_config(tree)
        text = dump_config(config, header="extra note", lattice=FULL_LATTICE)
        lines = text.splitlines()
        first_structure = next(
            i for i, line in enumerate(lines)
            if line.strip() and not line.strip().startswith("#")
        )
        assert any("# lattice:" in line for line in lines[:first_structure])
        # The header is a comment: v2 text loads through the v1 parser.
        assert load_config(tree, text).flags == config.flags

    def test_header_after_structure_is_ignored(self, tree):
        text = dump_config(Config(tree)) + "# lattice: f64,f32,f16\n"
        assert read_lattice_header(text) is None


class TestNarrowFlags:
    def test_narrow_flags_render_in_first_column(self, tree):
        text = dump_config(_mixed_config(tree), lattice=FULL_LATTICE)
        cols = {line[0] for line in text.splitlines() if line and line[0] != "#"}
        assert {"s", "b", "h", "d"} <= cols

    def test_narrow_flags_roundtrip(self, tree):
        config = _mixed_config(tree)
        text = dump_config(config, lattice=FULL_LATTICE)
        back = load_config(tree, text)
        assert back.flags == config.flags
        assert dump_config(back, lattice=FULL_LATTICE) == text

    def test_narrow_flags_resolve_in_policy_map(self, tree):
        config = _mixed_config(tree)
        policies = load_config(
            tree, dump_config(config, lattice=FULL_LATTICE)
        ).instruction_policies()
        assert Policy.BF16 in policies.values()
        assert Policy.HALF in policies.values()

    def test_bad_flag_message_names_all_five(self, tree):
        text = dump_config(Config(tree)).splitlines()
        structure = next(l for l in text if l and not l.startswith("#"))
        with pytest.raises(ConfigFormatError, match="s/d/i/b/h"):
            load_config(tree, "x" + structure[1:])
