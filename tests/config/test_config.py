"""Configuration model, override resolution, exchange file format."""

import pytest
from hypothesis import given, strategies as st

from repro.config import Config, Policy, build_tree, dump_config, load_config
from repro.config.fileformat import ConfigFormatError
from repro.config.model import LEVEL_BLOCK, LEVEL_FUNCTION, LEVEL_INSN, LEVEL_MODULE
from tests.conftest import compile_src

SRC = """
module alpha;
fn helper(x: real) -> real {
    if x > 0.0 {
        return x * 2.0;
    }
    return x / 2.0;
}
fn main() {
    var s: real = 0.0;
    for i in 0 .. 5 {
        s = s + helper(real(i) - 2.0);
    }
    out(s);
}
"""


@pytest.fixture
def tree():
    return build_tree(compile_src(SRC))


class TestTreeStructure:
    def test_levels_nest_properly(self, tree):
        for module in tree.roots:
            assert module.level == LEVEL_MODULE
            for fn in module.children:
                assert fn.level == LEVEL_FUNCTION
                for block in fn.children:
                    assert block.level == LEVEL_BLOCK
                    for insn in block.children:
                        assert insn.level == LEVEL_INSN
                        assert insn.children == []

    def test_only_candidates_appear(self, tree):
        # every leaf is a real candidate address
        program = compile_src(SRC)
        candidate_addrs = {i.addr for i in program.candidate_instructions()}
        leaf_addrs = {n.addr for n in tree.instructions()}
        assert leaf_addrs == candidate_addrs

    def test_ids_unique_and_ordered(self, tree):
        ids = [n.node_id for n in tree.walk()]
        assert len(ids) == len(set(ids))
        insns = [n for n in tree.walk() if n.level == LEVEL_INSN]
        addrs = [n.addr for n in insns]
        assert addrs == sorted(addrs)

    def test_parents_linked(self, tree):
        for node in tree.walk():
            for child in node.children:
                assert child.parent is node

    def test_deterministic_rebuild(self):
        t1 = build_tree(compile_src(SRC))
        t2 = build_tree(compile_src(SRC))
        assert [n.node_id for n in t1.walk()] == [n.node_id for n in t2.walk()]


class TestResolution:
    def test_default_is_double(self, tree):
        config = Config.all_double(tree)
        assert all(p is Policy.DOUBLE for p in config.instruction_policies().values())

    def test_all_single_flags_roots(self, tree):
        config = Config.all_single(tree)
        assert all(p is Policy.SINGLE for p in config.instruction_policies().values())

    def test_instruction_flag_applies(self, tree):
        insn = next(tree.instructions())
        config = Config(tree).set(insn.node_id, Policy.SINGLE)
        assert config.instruction_policies()[insn.addr] is Policy.SINGLE

    def test_aggregate_overrides_children(self, tree):
        # Paper: an aggregate's flag overrides flags on its children.
        fn = tree.nodes_at(LEVEL_FUNCTION)[0]
        insn = next(fn.instructions())
        config = Config(tree)
        config.set(insn.node_id, Policy.SINGLE)
        config.set(fn.node_id, Policy.DOUBLE)
        assert config.instruction_policies()[insn.addr] is Policy.DOUBLE

    def test_outermost_flag_wins(self, tree):
        module = tree.roots[0]
        fn = module.children[0]
        config = Config(tree)
        config.set(module.node_id, Policy.IGNORE)
        config.set(fn.node_id, Policy.SINGLE)
        insn = next(fn.instructions())
        assert config.effective_policy(insn) is Policy.IGNORE

    def test_unflagged_siblings_keep_default(self, tree):
        fns = tree.nodes_at(LEVEL_FUNCTION)
        assert len(fns) >= 2
        config = Config(tree).set(fns[0].node_id, Policy.SINGLE)
        policies = config.instruction_policies()
        for insn in fns[1].instructions():
            assert policies[insn.addr] is Policy.DOUBLE


class TestUnion:
    def test_union_prefers_single(self, tree):
        fns = tree.nodes_at(LEVEL_FUNCTION)
        a = Config(tree).set(fns[0].node_id, Policy.SINGLE)
        b = Config(tree).set(fns[1].node_id, Policy.SINGLE)
        merged = a.union(b)
        assert merged.flags[fns[0].node_id] is Policy.SINGLE
        assert merged.flags[fns[1].node_id] is Policy.SINGLE

    def test_union_preserves_ignore(self, tree):
        fn = tree.nodes_at(LEVEL_FUNCTION)[0]
        a = Config(tree).set(fn.node_id, Policy.IGNORE)
        b = Config(tree).set(fn.node_id, Policy.SINGLE)
        assert a.union(b).flags[fn.node_id] is Policy.IGNORE
        assert b.union(a).flags[fn.node_id] is Policy.IGNORE

    def test_union_requires_same_tree(self, tree):
        other = build_tree(compile_src(SRC))
        with pytest.raises(ValueError):
            Config(tree).union(Config(other))


class TestMetrics:
    def test_static_fraction(self, tree):
        config = Config(tree)
        insns = list(tree.instructions())
        config.set(insns[0].node_id, Policy.SINGLE)
        assert config.static_replaced_fraction() == pytest.approx(1 / len(insns))

    def test_dynamic_fraction_weighted(self, tree):
        insns = list(tree.instructions())
        profile = {insns[0].addr: 90, insns[1].addr: 10}
        config = Config(tree).set(insns[0].node_id, Policy.SINGLE)
        assert config.dynamic_replaced_fraction(profile) == pytest.approx(0.9)

    def test_dynamic_fraction_empty_profile(self, tree):
        assert Config.all_single(tree).dynamic_replaced_fraction({}) == 0.0


class TestFileFormat:
    def test_dump_contains_paper_columns(self, tree):
        config = Config.all_double(tree)
        insn = next(tree.instructions())
        config.set(insn.node_id, Policy.SINGLE)
        text = dump_config(config)
        assert text.startswith("# program:")
        assert f"s " in text
        assert insn.node_id in text
        assert '"' in text  # quoted disassembly

    def test_roundtrip_preserves_flags(self, tree):
        config = Config(tree)
        nodes = list(tree.walk())
        config.set(nodes[1].node_id, Policy.SINGLE)
        config.set(nodes[2].node_id, Policy.IGNORE)
        loaded = load_config(tree, dump_config(config))
        assert loaded.flags == config.flags

    @given(st.data())
    def test_roundtrip_random_flags(self, data):
        tree = build_tree(compile_src(SRC))
        config = Config(tree)
        for node in tree.walk():
            flag = data.draw(
                st.sampled_from([None, Policy.SINGLE, Policy.DOUBLE, Policy.IGNORE])
            )
            if flag is not None:
                config.set(node.node_id, flag)
        assert load_config(tree, dump_config(config)).flags == config.flags

    def test_unknown_id_rejected(self, tree):
        with pytest.raises(ConfigFormatError, match="unknown structure"):
            load_config(tree, "s FUNC99: ghost()\n")

    def test_bad_flag_rejected(self, tree):
        node_id = tree.roots[0].node_id
        with pytest.raises(ConfigFormatError, match="bad flag"):
            load_config(tree, f"x {node_id}: m\n")

    def test_comments_and_blanks_ignored(self, tree):
        node_id = tree.roots[0].node_id
        config = load_config(tree, f"# comment\n\ns {node_id}: m\n")
        assert config.flags[node_id] is Policy.SINGLE

    def test_set_unknown_node_raises(self, tree):
        with pytest.raises(KeyError):
            Config(tree).set("INSN99", Policy.SINGLE)
