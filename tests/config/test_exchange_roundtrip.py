"""Exchange-file round-trip property: dump → parse → identical tree.

Property-based (hypothesis): any reachable flag assignment — every
policy including ``ignore``, at every granularity from module down to
single instructions — survives the Figure-3 exchange format exactly:
the parsed configuration carries identical explicit flags *and*
resolves to identical effective per-instruction policies.

The virtual ISA is scalar (the NAS programs carry no packed lanes, and
the config tree's finest granularity is the instruction), so lane-level
flags collapse to instruction flags; the per-instruction cases below
are the lane-granular coverage for this ISA.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import Config, Policy, build_tree, dump_config, load_config
from repro.workloads import make_workload
from tests.conftest import compile_src

MULTI_SRC = """
module linalg;
fn dot(n: i64) -> real {
    var s: real = 0.0;
    for i in 0 .. n {
        s = s + real(i) * 0.5;
    }
    return s;
}
fn scale(x: real) -> real {
    if x > 10.0 {
        return x / 2.0;
    }
    return x * 2.0;
}
fn main() {
    var a: real = dot(8);
    var b: real = scale(a);
    out(a);
    out(b);
    out(sqrt(a + b));
}
"""

POLICIES = [None, Policy.SINGLE, Policy.DOUBLE, Policy.IGNORE]


def _tree():
    return build_tree(compile_src(MULTI_SRC))


def _assert_roundtrip(tree, config):
    loaded = load_config(tree, dump_config(config))
    assert loaded.flags == config.flags
    for insn in tree.instructions():
        assert loaded.effective_policy(insn) is config.effective_policy(insn)


@given(st.data())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_roundtrip_any_flag_assignment(data):
    tree = _tree()
    config = Config(tree)
    for node in tree.walk():
        flag = data.draw(st.sampled_from(POLICIES))
        if flag is not None:
            config.set(node.node_id, flag)
    _assert_roundtrip(tree, config)


@given(st.data())
@settings(
    suppress_health_check=[HealthCheck.too_slow], deadline=None,
    max_examples=20,
)
def test_roundtrip_instruction_flags_nas_tree(data):
    """Lane-granular coverage on a real workload tree: random flags on
    the instruction level only (the finest the scalar ISA has)."""
    tree = build_tree(make_workload("cg", "T").program)
    config = Config(tree)
    for insn in tree.instructions():
        flag = data.draw(st.sampled_from(POLICIES))
        if flag is not None:
            config.set(insn.node_id, flag)
    _assert_roundtrip(tree, config)


@given(st.data())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_roundtrip_ignore_overrides(data):
    """`ignore` at an aggregate with single/double leaves beneath —
    the paper's RNG escape hatch — resolves identically after a trip
    through the exchange file."""
    tree = _tree()
    config = Config(tree)
    aggregates = [n for n in tree.walk() if n.children]
    target = data.draw(st.sampled_from(aggregates))
    config.set(target.node_id, Policy.IGNORE)
    for insn in tree.instructions():
        flag = data.draw(st.sampled_from(POLICIES))
        if flag is not None:
            config.set(insn.node_id, flag)
    assert any(
        config.effective_policy(i) is Policy.IGNORE
        for i in target.instructions()
    )
    _assert_roundtrip(tree, config)


def test_dump_is_deterministic():
    tree = _tree()
    config = Config.all_single(tree)
    assert dump_config(config) == dump_config(config)


def test_parse_rejects_truncated_file():
    tree = _tree()
    text = dump_config(Config.all_single(tree))
    lines = text.splitlines()
    # cutting a quoted disassembly line mid-way must not parse silently
    broken = "\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]])
    try:
        config = load_config(tree, broken)
    except Exception:
        return
    # if it parsed, the flags must still be a subset of the original's
    original = load_config(tree, text)
    assert set(config.flags) <= set(original.flags)
