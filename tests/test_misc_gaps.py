"""Coverage for assorted edge cases across packages."""

import pytest

from repro.config import Config, Policy, build_tree
from repro.instrument import instrument
from repro.vm import run_program
from repro.vm.outputs import decode_output
from repro.workloads.base import Workload
from tests.conftest import compile_src


class TestOutputsEdge:
    def test_unknown_record_kind(self):
        with pytest.raises(ValueError, match="unknown output record"):
            decode_output(("x", 0))

    def test_signed_integer_decoding(self):
        assert decode_output(("i", 2**64 - 5)) == -5
        assert decode_output(("i", 5)) == 5


class TestPerOutputTolerances:
    def _workload(self, tolerances):
        return Workload(
            name="tol",
            sources=[
                "fn main() { out(1.0); out(100.0); }"
            ],
            tolerances=tolerances,
        )

    def test_per_output_tolerance_positions(self):
        workload = self._workload([(0.0, 0.5), (0.0, 1e-12)])
        base = workload.baseline()

        class Fake:
            def __init__(self, values):
                self._values = values

            def values(self):
                return self._values

        # first output tolerant, second strict
        assert workload.verify(Fake([1.2, 100.0]))
        assert not workload.verify(Fake([1.2, 100.1]))

    def test_missing_tolerance_entries_fall_back(self):
        workload = self._workload([(0.0, 0.5)])  # only one entry
        workload.rel_tol = 0.0
        workload.abs_tol = 1e-12

        class Fake:
            def __init__(self, values):
                self._values = values

            def values(self):
                return self._values

        workload.baseline()
        assert not workload.verify(Fake([1.0, 100.0 + 1e-6]))

    def test_length_mismatch_fails(self):
        workload = self._workload([(0.0, 1.0), (0.0, 1.0)])
        workload.baseline()

        class Fake:
            def values(self):
                return [1.0]

        assert not workload.verify(Fake())


class TestModuleLevelIgnore:
    def test_ignore_module_freezes_everything(self):
        program = compile_src(
            """
            fn main() {
                var s: real = 0.0;
                for i in 0 .. 10 { s = s + 0.1; }
                out(s);
            }
            """
        )
        tree = build_tree(program)
        config = Config(tree)
        config.set(tree.roots[0].node_id, Policy.IGNORE)
        result = instrument(program, config, mode="all")
        # every candidate ignored: copied verbatim even in mode=all
        assert result.stats.ignored == tree.candidate_count
        assert run_program(result.program).outputs == run_program(program).outputs


class TestDisassemblerAddresses:
    def test_listing_addresses_monotone(self):
        from repro.asm import disassemble_program

        program = compile_src("fn main() { out(1.0 + 2.0); }")
        listing = disassemble_program(program)
        addrs = [
            int(line.strip().split(":")[0], 16)
            for line in listing.splitlines()
            if line.strip().startswith("0x")
        ]
        assert addrs == sorted(addrs)


class TestConfigHashEq:
    def test_config_equality_and_hash(self):
        program = compile_src("fn main() { out(1.0 + 2.0); }")
        tree = build_tree(program)
        a = Config.all_single(tree)
        b = Config.all_single(tree)
        assert a == b and hash(a) == hash(b)
        b.set(next(tree.instructions()).node_id, Policy.DOUBLE)
        assert a != b

    def test_config_not_equal_across_trees(self):
        p1 = compile_src("fn main() { out(1.0 + 2.0); }")
        p2 = compile_src("fn main() { out(1.0 + 2.0); }")
        assert Config.all_single(build_tree(p1)) != Config.all_single(build_tree(p2))


class TestCostModelTableCache:
    def test_distinct_models_distinct_costs(self):
        from repro.isa import Op
        from repro.vm.costs import CostModel

        slow = CostModel(fp64=100)
        fast = CostModel(fp64=10)
        assert slow.op_cost(Op.ADDSD) == 100
        assert fast.op_cost(Op.ADDSD) == 10
        # cache returns consistent tables on repeat lookups
        assert slow.op_cost(Op.ADDSD) == 100
