"""End-to-end language semantics: compile and execute MH programs."""

import math

import pytest

from repro.compiler import CompileOptions, compile_program, compile_source, CompileError
from repro.vm import run_program
from tests.conftest import run_src


class TestExpressions:
    def test_integer_arithmetic(self):
        assert run_src("fn main() { out(2 + 3 * 4 - 10 / 2); }") == [9]

    def test_precedence_and_parens(self):
        assert run_src("fn main() { out((2 + 3) * 4); }") == [20]

    def test_modulo_and_shifts(self):
        assert run_src("fn main() { out(17 % 5); out(1 << 10); out(1024 >> 3); }") == [2, 1024, 128]

    def test_bitwise(self):
        assert run_src("fn main() { out(12 & 10); out(12 | 3); out(12 ^ 10); }") == [8, 15, 6]

    def test_unary_minus(self):
        assert run_src("fn main() { out(-5); out(- -7); }") == [-5, 7]

    def test_float_arithmetic(self):
        values = run_src("fn main() { out(0.5 * 4.0 + 1.0 / 8.0); }")
        assert values == [2.125]

    def test_float_literal_forms(self):
        values = run_src("fn main() { out(1e3); out(2.5e-2); out(.5 + 0.5); }")
        assert values == [1000.0, 0.025, 1.0]

    def test_hex_literals(self):
        assert run_src("fn main() { out(0xff); }") == [255]

    def test_deep_expression(self):
        assert run_src(
            "fn main() { out(((1+2)*(3+4)) + ((5+6)*(7+8)) - ((1*2)+(3*4))); }"
        ) == [21 + 165 - 14]


class TestCasts:
    def test_i64_of_float_truncates(self):
        assert run_src("fn main() { out(i64(3.99)); out(i64(-3.99)); }") == [3, -3]

    def test_f64_of_int(self):
        assert run_src("fn main() { out(f64(7) / 2.0); }") == [3.5]

    def test_f32_roundtrip(self):
        values = run_src("fn main() { var x: f32 = f32(0.1); out(f64(x)); }")
        assert abs(values[0] - 0.1) < 1e-7 and values[0] != 0.1

    def test_mixed_types_require_cast(self):
        with pytest.raises(CompileError, match="cast"):
            compile_source("fn main() { out(1 + 2.0); }")


class TestControlFlow:
    def test_if_else_chain(self):
        src = """
        fn classify(x: i64) -> i64 {
            if x < 0 { return -1; }
            else if x == 0 { return 0; }
            else { return 1; }
        }
        fn main() { out(classify(-5)); out(classify(0)); out(classify(9)); }
        """
        assert run_src(src) == [-1, 0, 1]

    def test_while_with_break_continue(self):
        src = """
        fn main() {
            var i: i64 = 0;
            var s: i64 = 0;
            while i < 100 {
                i = i + 1;
                if i % 2 == 0 { continue; }
                if i > 10 { break; }
                s = s + i;
            }
            out(s);
        }
        """
        assert run_src(src) == [1 + 3 + 5 + 7 + 9]

    def test_for_range_halfopen(self):
        assert run_src(
            "fn main() { var s: i64 = 0; for i in 2 .. 6 { s = s + i; } out(s); }"
        ) == [2 + 3 + 4 + 5]

    def test_for_empty_range(self):
        assert run_src(
            "fn main() { var s: i64 = 0; for i in 5 .. 5 { s = s + 1; } out(s); }"
        ) == [0]

    def test_nested_loops(self):
        src = """
        fn main() {
            var s: i64 = 0;
            for i in 0 .. 4 {
                for j in 0 .. 4 {
                    if i == j { continue; }
                    s = s + i * j;
                }
            }
            out(s);
        }
        """
        expected = sum(i * j for i in range(4) for j in range(4) if i != j)
        assert run_src(src) == [expected]

    def test_boolean_combinations(self):
        src = """
        fn check(a: i64, b: i64) -> i64 {
            if a > 0 and b > 0 or a == b { return 1; }
            return 0;
        }
        fn main() { out(check(1,1)); out(check(1,-1)); out(check(-2,-2)); out(check(0,1)); }
        """
        assert run_src(src) == [1, 0, 1, 0]

    def test_not_operator(self):
        assert run_src(
            "fn main() { var x: i64 = 3; if not (x == 4) { out(1); } else { out(0); } }"
        ) == [1]

    def test_fp_nan_comparisons_are_false(self):
        src = """
        fn main() {
            var nan: f64 = 0.0 / 0.0;
            if nan < 1.0 { out(1); } else { out(0); }
            if nan == nan { out(1); } else { out(0); }
            if nan != nan { out(1); } else { out(0); }
            if nan >= 0.0 { out(1); } else { out(0); }
        }
        """
        assert run_src(src) == [0, 0, 1, 0]


class TestFunctions:
    def test_recursion(self):
        src = """
        fn fact(n: i64) -> i64 {
            if n <= 1 { return 1; }
            return n * fact(n - 1);
        }
        fn main() { out(fact(10)); }
        """
        assert run_src(src) == [math.factorial(10)]

    def test_mutual_recursion(self):
        src = """
        fn is_even(n: i64) -> i64 {
            if n == 0 { return 1; }
            return is_odd(n - 1);
        }
        fn is_odd(n: i64) -> i64 {
            if n == 0 { return 0; }
            return is_even(n - 1);
        }
        fn main() { out(is_even(10)); out(is_odd(10)); }
        """
        assert run_src(src) == [1, 0]

    def test_many_arguments(self):
        src = """
        fn f(a: i64, b: i64, c: i64, d: i64, e: i64, g: real) -> real {
            return real(a + 2*b + 3*c + 4*d + 5*e) * g;
        }
        fn main() { out(f(1, 2, 3, 4, 5, 0.5)); }
        """
        assert run_src(src) == [(1 + 4 + 9 + 16 + 25) * 0.5]

    def test_calls_inside_expressions_save_temps(self):
        src = """
        fn two() -> real { return 2.0; }
        fn three() -> real { return 3.0; }
        fn main() { out(1.0 + two() * three() + two()); }
        """
        assert run_src(src) == [9.0]

    def test_void_function_statement(self):
        src = """
        var g: i64;
        fn bump() { g = g + 1; }
        fn main() { bump(); bump(); out(g); }
        """
        assert run_src(src) == [2]

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError, match="expects"):
            compile_source("fn f(a: i64) -> i64 { return a; } fn main() { out(f()); }")

    def test_undefined_function_rejected(self):
        with pytest.raises(CompileError, match="undefined function"):
            compile_source("fn main() { out(ghost(1)); }")


class TestArrays:
    def test_global_array_readwrite(self):
        src = """
        var a: i64[5];
        fn main() {
            for i in 0 .. 5 { a[i] = i * i; }
            out(a[0] + a[1] + a[2] + a[3] + a[4]);
        }
        """
        assert run_src(src) == [0 + 1 + 4 + 9 + 16]

    def test_array_initializers(self):
        src = """
        var w: real[3] = [0.25, 0.5, 0.25];
        fn main() { out(w[0] + w[1] + w[2]); }
        """
        assert run_src(src) == [1.0]

    def test_array_parameters(self):
        src = """
        var data: real[4] = [1.0, 2.0, 3.0, 4.0];
        fn total(a: real[], n: i64) -> real {
            var s: real = 0.0;
            for i in 0 .. n { s = s + a[i]; }
            return s;
        }
        fn main() { out(total(data, 4)); }
        """
        assert run_src(src) == [10.0]

    def test_array_offset_arithmetic(self):
        src = """
        var data: real[6] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        fn first(a: real[]) -> real { return a[0]; }
        fn main() {
            out(first(data + 3));
            var tail: real[] = data + 4;
            out(tail[1]);
        }
        """
        assert run_src(src) == [4.0, 6.0]

    def test_indexing_scalar_rejected(self):
        with pytest.raises(CompileError, match="cannot index"):
            compile_source("fn main() { var x: i64 = 1; out(x[0]); }")


class TestConstsAndGlobals:
    def test_const_folding_in_sizes(self):
        src = """
        const N: i64 = 4;
        var a: real[N * 2];
        fn main() { a[7] = 3.5; out(a[7]); }
        """
        assert run_src(src) == [3.5]

    def test_const_in_expressions(self):
        src = """
        const SCALE: f64 = 2.5;
        const K: i64 = 3;
        fn main() { out(SCALE * f64(K)); }
        """
        assert run_src(src) == [7.5]

    def test_global_scalar_init(self):
        assert run_src("var g: real = 4.5; fn main() { out(g); }") == [4.5]

    def test_assign_to_const_rejected(self):
        with pytest.raises(CompileError, match="const"):
            compile_source("const N: i64 = 1; fn main() { N = 2; }")


class TestBuiltins:
    def test_math_builtins(self):
        values = run_src(
            "fn main() { out(sqrt(16.0)); out(abs(-3.5)); out(min(2.0, -1.0)); out(max(2.0, -1.0)); }"
        )
        assert values == [4.0, 3.5, -1.0, 2.0]

    def test_transcendentals_instruction_mode(self):
        values = run_src("fn main() { out(sin(0.0)); out(cos(0.0)); out(exp(0.0)); out(log(1.0)); }")
        assert values == [0.0, 1.0, 1.0, 0.0]

    def test_frand_range_and_determinism(self):
        src = "fn main() { for i in 0 .. 50 { var u: real = frand(); if u < 0.0 or u >= 1.0 { out(-1); } } out(1); }"
        assert run_src(src) == [1]

    def test_rand_u64_changes(self):
        values = run_src("fn main() { out(rand_u64()); out(rand_u64()); }")
        assert values[0] != values[1]

    def test_mpi_intrinsics_serial(self):
        values = run_src(
            "fn main() { out(mpi_rank()); out(mpi_size()); out(allreduce_sum(5.0)); barrier(); }"
        )
        assert values == [0, 1, 5.0]


class TestPrecisionGenericity:
    SRC = """
    fn main() {
        var s: real = 0.0;
        for i in 0 .. 10 { s = s + 0.1; }
        out(s);
    }
    """

    def test_real_as_f64(self):
        value = run_src(self.SRC, real_type="f64")[0]
        assert abs(value - 1.0) < 1e-14 and value != 1.0

    def test_real_as_f32(self):
        value = run_src(self.SRC, real_type="f32")[0]
        assert abs(value - 1.0) < 1e-6
        assert abs(value - 1.0) > 1e-9  # visibly single precision

    def test_builds_differ_only_in_fp(self):
        p64 = compile_source(self.SRC, CompileOptions(real_type="f64"))
        p32 = compile_source(self.SRC, CompileOptions(real_type="f32"))
        assert p64.stats()["candidates"] > 0
        assert p32.stats()["candidates"] == 0  # single ops aren't candidates


class TestModules:
    def test_multi_module_program(self):
        main = """
        module main;
        fn main() { out(helper(20)); }
        """
        lib = """
        module lib;
        fn helper(x: i64) -> i64 { return x * 2 + 2; }
        """
        program = compile_program([main, lib])
        assert run_program(program).values() == [42]
        assert program.modules == ["main", "lib"]

    def test_duplicate_module_rejected(self):
        with pytest.raises(CompileError, match="duplicate module"):
            compile_program(["module m; fn main() {}", "module m; fn g() {}"])

    def test_duplicate_function_across_modules_rejected(self):
        with pytest.raises(CompileError, match="duplicate function"):
            compile_program(
                ["module a; fn main() {} fn f() {}", "module b; fn f() {}"]
            )


class TestDiagnostics:
    @pytest.mark.parametrize(
        "src,msg",
        [
            ("fn main() { out(x); }", "undefined name"),
            ("fn main() { var x: i64 = 1; var x: i64 = 2; }", "duplicate variable"),
            ("fn main() { return 1; }", "returns no value"),
            ("fn f() -> i64 { return; } fn main() {}", "missing return value"),
            ("fn main() { break; }", "break outside"),
            ("fn main() { continue; }", "continue outside"),
            ("fn main() { out(1 < 2); }", "only allowed in conditions"),
            ("fn main() { if 1 { out(1); } }", "condition must be"),
            ("fn main() { var a: real[] = 1.0; }", "cast|array"),
        ],
    )
    def test_error_messages(self, src, msg):
        with pytest.raises(CompileError):
            compile_source(src)

    def test_missing_main(self):
        with pytest.raises(CompileError, match="main"):
            compile_source("fn helper() {}")

    def test_main_with_params_rejected(self):
        with pytest.raises(CompileError, match="no parameters"):
            compile_source("fn main(x: i64) {}")

    def test_lexer_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            compile_source("fn main() { out(`); }")

    def test_parse_error_has_line(self):
        with pytest.raises(CompileError, match="2"):
            compile_source("fn main() {\n    out(;\n}")


class TestScoping:
    def test_block_scoped_variables(self):
        src = """
        fn main() {
            var x: i64 = 1;
            if x == 1 {
                var y: i64 = 10;
                x = x + y;
            }
            out(x);
        }
        """
        assert run_src(src) == [11]

    def test_for_variable_scoped_to_loop(self):
        with pytest.raises(CompileError, match="undefined name"):
            compile_source("fn main() { for i in 0 .. 3 {} out(i); }")

    def test_shadowing_in_inner_scope(self):
        src = """
        fn main() {
            var x: i64 = 1;
            for i in 0 .. 1 {
                var x2: i64 = 100;
                x = x + x2;
            }
            out(x);
        }
        """
        assert run_src(src) == [101]
