"""Differential testing: compiler + VM vs a Python reference evaluation.

Hypothesis generates random expression trees; both the MH program (via
the full compile -> encode -> decode -> interpret pipeline) and a direct
Python evaluation must produce the identical IEEE double — any mismatch
in codegen, operand order, temp allocation, or VM arithmetic shows up
here.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from tests.conftest import run_src

# -- expression tree generation -------------------------------------------------

_FP_LEAVES = st.sampled_from(
    [0.5, 1.0, -2.25, 3.75, 0.1, -0.3, 7.0, 100.0, 1e-3]
)
_INT_LEAVES = st.integers(min_value=-50, max_value=50)


def _fp_exprs(depth: int):
    if depth == 0:
        return st.builds(lambda v: (repr(v), v), _FP_LEAVES)
    sub = _fp_exprs(depth - 1)

    def binop(op):
        def build(a, b):
            text = f"({a[0]} {op} {b[0]})"
            if op == "+":
                value = a[1] + b[1]
            elif op == "-":
                value = a[1] - b[1]
            elif op == "*":
                value = a[1] * b[1]
            elif b[1] != 0:
                value = a[1] / b[1]
            elif a[1] == 0 or a[1] != a[1]:
                value = math.nan  # 0/0, nan/0
            else:
                value = math.copysign(math.inf, a[1]) * math.copysign(1.0, b[1])
            return (text, value)

        return st.builds(build, sub, sub)

    def unop():
        def build(a):
            return (f"(-{a[0]})", -a[1])

        return st.builds(build, sub)

    def call(name, fn, guard):
        def build(a):
            if not guard(a[1]):
                return a
            return (f"{name}({a[0]})", fn(a[1]))

        return st.builds(build, sub)

    return st.one_of(
        binop("+"),
        binop("-"),
        binop("*"),
        binop("/"),
        unop(),
        call("abs", abs, lambda v: v == v),
        call("sqrt", lambda v: math.sqrt(v), lambda v: v == v and 0 <= v < 1e300),
        sub,
    )


def _int_exprs(depth: int):
    if depth == 0:
        return st.builds(lambda v: (str(v), v), _INT_LEAVES)
    sub = _int_exprs(depth - 1)

    def c_div(a, b):
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q

    def c_rem(a, b):
        return a - b * c_div(a, b)

    ops = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
    }

    def binop(op, fn):
        return st.builds(
            lambda a, b: (f"({a[0]} {op} {b[0]})", fn(a[1], b[1])), sub, sub
        )

    def division(op, fn):
        return st.builds(
            lambda a, b: (
                (f"({a[0]} {op} {b[0]})", fn(a[1], b[1])) if b[1] != 0 else a
            ),
            sub,
            sub,
        )

    return st.one_of(
        *[binop(op, fn) for op, fn in ops.items()],
        division("/", c_div),
        division("%", c_rem),
        sub,
    )


class TestFloatDifferential:
    @settings(max_examples=120, deadline=None)
    @given(_fp_exprs(4))
    def test_fp_expression_matches_python(self, expr):
        text, expected = expr
        got = run_src(f"fn main() {{ out({text}); }}")[0]
        if expected != expected:
            assert got != got
        else:
            assert got == expected, f"{text}: {got!r} != {expected!r}"

    @settings(max_examples=60, deadline=None)
    @given(_fp_exprs(3), _fp_exprs(3))
    def test_fp_via_locals_matches_inline(self, a, b):
        # The same computation through stack locals must agree exactly.
        text_a, _ = a
        text_b, _ = b
        inline = run_src(f"fn main() {{ out({text_a} + {text_b}); }}")[0]
        via_locals = run_src(
            "fn main() {"
            f" var x: real = {text_a};"
            f" var y: real = {text_b};"
            " out(x + y); }"
        )[0]
        assert inline == via_locals or (inline != inline and via_locals != via_locals)

    @settings(max_examples=60, deadline=None)
    @given(_fp_exprs(3))
    def test_fp_via_function_call_matches(self, expr):
        text, expected = expr
        got = run_src(
            "fn id(v: real) -> real { return v; }"
            f"fn main() {{ out(id({text})); }}"
        )[0]
        assert got == expected or (got != got and expected != expected)


class TestIntDifferential:
    @settings(max_examples=120, deadline=None)
    @given(_int_exprs(4))
    def test_int_expression_matches_python(self, expr):
        text, expected = expr
        got = run_src(f"fn main() {{ out({text}); }}")[0]
        masked = expected & 0xFFFFFFFFFFFFFFFF
        if masked >= 2**63:
            masked -= 2**64
        assert got == masked, f"{text}: {got} != {masked}"

    @settings(max_examples=60, deadline=None)
    @given(_int_exprs(3), st.integers(min_value=-10, max_value=10))
    def test_int_comparisons_match_python(self, expr, pivot):
        text, value = expr
        got = run_src(
            f"fn main() {{ if {text} < {pivot} {{ out(1); }} else {{ out(0); }} }}"
        )[0]
        assert got == (1 if value < pivot else 0)
