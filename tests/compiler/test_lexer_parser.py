"""Lexer and parser units (the end-to-end suite lives in test_language)."""

import pytest

from repro.compiler.errors import CompileError
from repro.compiler.lexer import Token, tokenize
from repro.compiler.parser import parse_source


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("fn main var x reality")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("kw", "fn"), ("kw", "main") if False else ("ident", "main"),
            ("kw", "var"), ("ident", "x"), ("ident", "reality"),
        ]

    def test_numbers(self):
        tokens = tokenize("42 0x1F 3.5 1e9 2.5e-3 .75")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("int", "42"), ("int", "0x1F"), ("float", "3.5"),
            ("float", "1e9"), ("float", "2.5e-3"), ("float", ".75"),
        ]

    def test_range_not_lexed_as_float(self):
        # "0..n" must be int, op(..), ident — not a malformed float.
        tokens = tokenize("0..n")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("int", "0"), ("op", ".."), ("ident", "n"),
        ]

    def test_multichar_operators_longest_match(self):
        tokens = tokenize("<< <= < == = != ->")
        assert [t.value for t in tokens[:-1]] == [
            "<<", "<=", "<", "==", "=", "!=", "->",
        ]

    def test_comments_stripped_and_lines_counted(self):
        tokens = tokenize("a # comment\nb")
        assert tokens[0].line == 1 and tokens[1].line == 2

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a ` b")


class TestParser:
    def test_module_header(self):
        mod = parse_source("module zap; fn f() {}", "default")
        assert mod.name == "zap"

    def test_default_module_name(self):
        assert parse_source("fn f() {}", "fallback").name == "fallback"

    def test_real_resolution(self):
        mod64 = parse_source("var x: real = 1.0;", "m", real_type="f64")
        mod32 = parse_source("var x: real = 1.0;", "m", real_type="f32")
        assert mod64.globals[0].type == "f64"
        assert mod32.globals[0].type == "f32"
        # cell init is width-dependent
        assert mod64.globals[0].init != mod32.globals[0].init

    def test_const_folding_in_array_sizes(self):
        mod = parse_source("const N: i64 = 3; var a: i64[N * N + 1];", "m")
        assert mod.globals[0].size == 10

    def test_negative_array_size_rejected(self):
        with pytest.raises(CompileError, match="positive constant"):
            parse_source("var a: i64[0];", "m")

    def test_non_constant_size_rejected(self):
        with pytest.raises(CompileError, match="constant"):
            parse_source("fn f() -> i64 { return 1; } var a: i64[f()];", "m")

    def test_too_many_initializers_rejected(self):
        with pytest.raises(CompileError, match="too many"):
            parse_source("var a: i64[2] = [1, 2, 3];", "m")

    def test_duplicate_const_rejected(self):
        with pytest.raises(CompileError, match="duplicate const"):
            parse_source("const N: i64 = 1; const N: i64 = 2;", "m")

    def test_else_if_chains(self):
        mod = parse_source(
            "fn f(x: i64) -> i64 {"
            " if x == 0 { return 0; } else if x == 1 { return 1; }"
            " else { return 2; } }",
            "m",
        )
        fn = mod.functions[0]
        outer = fn.body[0]
        assert outer.else_body and outer.else_body[0].__class__.__name__ == "If"

    def test_float_const_usable_in_folding(self):
        mod = parse_source(
            "const H: f64 = 0.5; const H2: f64 = H * H;", "m"
        )
        assert mod.consts["H2"] == ("f64", 0.25)

    def test_missing_semicolon_reports_location(self):
        # The error is noticed at the '}' on line 3; what matters is that
        # module and line reach the message.
        with pytest.raises(CompileError, match=r"m:3: expected ';'"):
            parse_source("fn f() {\n    var x: i64 = 1\n}", "m")
