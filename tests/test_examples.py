"""Smoke tests for the runnable examples (the fast ones; the heavier
searches and sweeps are exercised through benchmarks/)."""

import runpy
import sys

import pytest


def _run_example(name, capsys):
    module = runpy.run_path(f"examples/{name}.py")
    module["main"]()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "original (double)" in out
        assert "instrumented all-single" in out
        assert "configuration exchange file" in out

    def test_third_party_binary(self, capsys):
        out = _run_example("third_party_binary", capsys)
        assert "conformance vendor-kernel.W: PASS" in out
        assert "vendor binary" in out
        assert "recommended configuration" in out
        assert "final pass" in out

    def test_plugin_workload(self, capsys):
        out = _run_example("plugin_workload", capsys)
        assert "conformance wave.T: PASS" in out
        assert "final pass" in out

    def test_resume_search(self, capsys):
        out = _run_example("resume_search", capsys)
        assert "interrupted after 2 checkpoints" in out
        assert "identical final configuration: True" in out
        assert "0 actually executed" in out

    def test_cluster_search(self, capsys):
        out = _run_example("cluster_search", capsys)
        assert "identical final configuration: True" in out
        assert "crashed worker exit code 1" in out
        assert "identical final configuration after crash: True" in out
