"""Durable search campaigns: interrupt, resume, warm-start.

A campaign directory makes the automatic search restartable: the engine
journals its frontier after every batch (``journal.jsonl``) and records
every decided outcome in a content-addressed SQLite store
(``results.sqlite``).  Kill the process at any point — Ctrl-C, SIGKILL,
a dead worker — and ``--resume`` continues from the exact batch
boundary, replaying decided configurations from the store instead of
re-executing them.  The resumed search provably composes the same final
configuration as an uninterrupted one, and a *second* search sharing the
store re-executes nothing at all.

This script demonstrates all three on the CG analogue (class T), using
the same ``interrupt_after`` hook the integration tests and CI use to
simulate a mid-campaign Ctrl-C.

Run:  python examples/resume_search.py

CLI equivalent::

    python -m repro search cg T --campaign camp/   # ^C at any point
    python -m repro search --resume camp/

See docs/CAMPAIGNS.md for the store schema and resume semantics.
"""

import tempfile

from repro.campaign import Campaign
from repro.config import dump_config
from repro.search import SearchEngine, SearchOptions
from repro.store import ResultStore
from repro.workloads import make_nas


def main() -> None:
    options = SearchOptions()

    # The reference: one uninterrupted in-memory search.
    reference = SearchEngine(make_nas("cg", "T"), options).run()
    print(f"uninterrupted: {reference.configs_tested} configurations tested")

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as workdir:
        # A campaign that we "Ctrl-C" after its second batch checkpoint.
        campaign = Campaign.create(workdir, "cg", "T", options)
        campaign.interrupt_after = 2
        try:
            SearchEngine(make_nas("cg", "T"), options, campaign=campaign).run()
        except KeyboardInterrupt:
            print(f"interrupted after {campaign.checkpoints_written} checkpoints "
                  f"({campaign.store.count()} outcomes already durable)")
        finally:
            campaign.close()

        # Resume: restores the journaled frontier, replays the store.
        with Campaign.open(workdir) as resumed_campaign:
            resumed = SearchEngine(
                make_nas("cg", "T"),
                resumed_campaign.options,
                campaign=resumed_campaign,
            ).run()
        print(f"resumed:       {resumed.configs_tested} configurations tested, "
              f"{resumed.store_replays} replayed from the store")

        same = dump_config(resumed.final_config) == dump_config(
            reference.final_config
        )
        print(f"identical final configuration: {same}")

        # Warm start: a fresh search over the same store runs nothing.
        with ResultStore(f"{workdir}/results.sqlite") as store:
            engine = SearchEngine(make_nas("cg", "T"), options, store=store)
            warm = engine.run()
            print(f"warm start:    {warm.configs_tested} configurations tested, "
                  f"{engine.evaluator.executions} actually executed")


if __name__ == "__main__":
    main()
