"""A workload plugin: register a new program with zero edits to repro.

The SDK makes external workloads first-class search tenants.  This file
never touches ``repro.workloads`` — it defines a leapfrog wave-equation
kernel in the MH mini-language, wraps it in a :class:`WorkloadSpec`, and
exports the spec as ``WORKLOADS``, which is all the plugin protocol
asks.  Point any workload-taking command at it:

    repro workloads --check --plugin examples/plugin_workload.py
    repro search wave --class T --plugin examples/plugin_workload.py
    repro submit HOST:PORT wave --plugin examples/plugin_workload.py

(for ``submit``, the serving side and its workers need the same flag so
they can validate and build the workload:
``repro serve ... --service ROOT --plugin examples/plugin_workload.py``
and ``repro worker ... --plugin examples/plugin_workload.py``).

A package would ship the same spec on the ``repro.workloads`` entry
point group instead of a ``--plugin`` flag:

    [project.entry-points."repro.workloads"]
    wave = "mypkg.wave:WORKLOADS"

Run directly for a self-test:  python examples/plugin_workload.py
"""

from string import Template

from repro.sdk import WorkloadSpec, assert_conformant
from repro.workloads.base import Workload

# The second-order wave equation u_tt = c^2 u_xx, marched with the
# classic leapfrog scheme (fixed Dirichlet ends).  Deliberately distinct
# from the built-in stencil family: leapfrog is non-dissipative, so
# rounding errors are carried, not damped — a harder mixed-precision
# target than the heat solver.
_WAVE = Template("""
module wave;

const N: i64 = $n;
const NSTEP: i64 = $nstep;

var up: real[$n];
var uc: real[$n];
var un: real[$n];

fn setup(dx: real, c2: real) {
    for i in 0 .. N {
        var x: real = real(i) * dx;
        uc[i] = sin(3.141592653589793 * x) + 0.3 * sin(9.42477796076938 * x);
    }
    uc[0] = 0.0;
    uc[N - 1] = 0.0;
    # First step from rest (u_t = 0): Taylor start.
    up[0] = 0.0;
    up[N - 1] = 0.0;
    for i in 1 .. N - 1 {
        var lap: real = uc[i + 1] - 2.0 * uc[i] + uc[i - 1];
        up[i] = uc[i] + 0.5 * c2 * lap;
    }
}

fn step(c2: real) {
    un[0] = 0.0;
    un[N - 1] = 0.0;
    for i in 1 .. N - 1 {
        var lap: real = uc[i + 1] - 2.0 * uc[i] + uc[i - 1];
        un[i] = 2.0 * uc[i] - up[i] + c2 * lap;
    }
    for i in 0 .. N {
        up[i] = uc[i];
        uc[i] = un[i];
    }
}

fn main() {
    var dx: real = 1.0 / real(N - 1);
    # Courant number 0.5: stable, and rounding (not truncation)
    # dominates the double/single difference.
    var c2: real = 0.25;

    setup(dx, c2);
    for s in 0 .. NSTEP {
        step(c2);
    }

    var norm: real = 0.0;
    var csum: real = 0.0;
    for i in 0 .. N {
        norm = norm + uc[i] * uc[i];
        csum = csum + uc[i] * cos(real(i) * 0.13);
    }
    out(sqrt(norm * dx));
    out(csum);
    out(uc[N / 2]);
}
""")

CLASSES = {
    "T": dict(n=16, nstep=8),
    "S": dict(n=32, nstep=16),
    "W": dict(n=64, nstep=32),
    "A": dict(n=128, nstep=64),
}


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    return Workload(
        name=f"wave.{klass}",
        sources=[_WAVE.substitute(**params)],
        klass=klass,
        verify_mode="baseline",
        # Leapfrog conserves (discrete) energy, so the norm must match
        # tightly; the pointwise probe and phase checksum a bit looser.
        tolerances=[(1e-6, 1e-7), (1e-4, 1e-5), (1e-4, 1e-5)],
    )


#: what the plugin loader (and the entry-point group) looks for.
WORKLOADS = [
    WorkloadSpec(
        name="wave",
        factory=make,
        classes=tuple(CLASSES),
        description="leapfrog wave equation (plugin example)",
    ),
]


def main() -> None:
    spec = WORKLOADS[0]
    report = assert_conformant(spec)
    print(report.summary())

    from repro import SearchEngine

    result = SearchEngine(spec.make("T")).run()
    row = result.row()
    print(f"\nsearch wave.T: {row['tested']} configurations over "
          f"{row['candidates']} candidates -> static {row['static_pct']}%, "
          f"dynamic {row['dynamic_pct']}%, final {row['final']}")


if __name__ == "__main__":
    main()
