"""Analyzing a binary without source (paper Section 2.4).

"The rewriter can also output modified shared libraries, allowing us to
instrument and to modify functions in external dependencies.  Thus, we
can analyze third-party libraries even if the source code is not
available."

This example plays the third-party scenario: the 'vendor' ships only a
binary — here, a hand-written assembly kernel (a dot product with a
Kahan-style correction) that never existed as MH source.  We disassemble
it, generate its configuration template, and search it for replaceable
instructions, all from the binary alone.

The workload registers through the SDK (:mod:`repro.sdk`) like any
built-in: a :class:`WorkloadSpec` with ``single_build=False`` (a binary
has no "manually converted" f32 twin), checked by the conformance
harness before the search touches it.  Because the spec is exported as
``WORKLOADS``, the same file doubles as a CLI plugin:

    repro search vendor-kernel --plugin examples/third_party_binary.py

Run:  python examples/third_party_binary.py
"""

from repro import SearchEngine, assemble_text, run_program
from repro.asm import disassemble_program
from repro.config import dump_config
from repro.sdk import WorkloadSpec, assert_conformant
from repro.vm import outputs_close

# The "vendor binary": assembled once; imagine only the bytes survive.
VENDOR_ASM = """
.global xs 64
.global ys 64
.entry _start
.func _start
    call fill
    call dot_kahan
    outsd %x0
    halt
.endfunc

.func fill
    mov %r1, $0
floop:
    cvtsi2sd %x0, %r1
    mov %r3, $d:0.37
    movqxr %x1, %r3
    mulsd %x0, %x1          ; x = 0.37 * i
    sinsd %x1, %x0
    movsd 0(%r1), %x1       ; xs[i] = sin(0.37 i)
    cossd %x2, %x0
    movsd 64(%r1), %x2      ; ys[i] = cos(0.37 i)
    inc %r1
    cmp %r1, $64
    jl floop
    ret
.endfunc

.func dot_kahan
    mov %r1, $0
    mov %r2, $0
    movqxr %x0, %r2         ; sum = 0
    movqxr %x3, %r2         ; c = 0
kloop:
    movsd %x1, 0(%r1)
    mulsd %x1, 64(%r1)      ; term = xs[i] * ys[i]
    subsd %x1, %x3          ; y = term - c
    movsd %x2, %x0
    addsd %x2, %x1          ; t = sum + y
    movsd %x4, %x2
    subsd %x4, %x0          ; (t - sum)
    movsd %x3, %x4
    subsd %x3, %x1          ; c = (t - sum) - y
    movsd %x0, %x2          ; sum = t
    inc %r1
    cmp %r1, $64
    jl kloop
    ret
.endfunc
"""


class BinaryWorkload:
    """A workload defined over a binary alone — no source, no compiler."""

    name = "vendor-kernel"
    klass = "W"
    verify_mode = "baseline"

    def __init__(self) -> None:
        self.program = assemble_text(VENDOR_ASM, name="libvendor")
        self._baseline = run_program(self.program)
        self._profile = None

    def run(self, program=None):
        return run_program(program if program is not None else self.program)

    def verify(self, result):
        return outputs_close(
            result.values(), self._baseline.values(), rel_tol=1e-7, abs_tol=1e-7
        )

    def profile(self):
        if self._profile is None:
            self._profile = run_program(self.program, profile=True).exec_counts
        return self._profile


#: SDK registration: picked up by ``repro --plugin examples/third_party_binary.py``
#: and by the explicit ``REGISTRY.register`` below.  A binary-only workload
#: declares ``single_build=False``; everything else is checked as usual.
WORKLOADS = [
    WorkloadSpec(
        name="vendor-kernel",
        factory=lambda klass: BinaryWorkload(),
        classes=("W",),
        description="vendor-shipped Kahan dot-product binary (no source)",
        single_build=False,
    ),
]


def main() -> None:
    spec = WORKLOADS[0]
    report = assert_conformant(spec)
    print(f"{report.summary()}\n")

    workload = spec.make()
    print("vendor binary (no source available):")
    print(f"  {workload.program.stats()}")
    print(f"  result: {workload.run().values()[0]!r}\n")

    print("--- disassembly (what the analyst sees) ---")
    print("\n".join(disassemble_program(workload.program).splitlines()[:18]))
    print("    ...\n")

    result = SearchEngine(workload).run()
    row = result.row()
    print(f"search: {row['tested']} configurations over {row['candidates']} "
          f"candidates -> static {row['static_pct']}%, dynamic "
          f"{row['dynamic_pct']}%, final {row['final']}\n")
    print("--- recommended configuration ---")
    print(dump_config(result.final_config))


if __name__ == "__main__":
    main()
