"""Distributed search: a coordinator, network workers, and a crash.

The search engine can serve its evaluations to stateless TCP workers
instead of running them locally (``repro.cluster``).  The coordinator
owns the frontier and leases one configuration at a time to whichever
workers are connected; workers may join late, leave early, or die
mid-task — lost leases are requeued, and the final configuration is
byte-identical to a serial search.

This script runs the CG analogue (class T) three ways:

1. the serial reference;
2. a cluster search served by two in-process worker threads;
3. a cluster search where one worker is a real subprocess that crashes
   (``os._exit``) while holding a lease — the surviving worker picks up
   the requeued configuration and the result is still identical.

Run:  python examples/cluster_search.py

CLI equivalent::

    python -m repro serve 127.0.0.1:7070 cg T     # terminal 1
    python -m repro worker 127.0.0.1:7070         # terminals 2..N

See docs/CLUSTER.md for the wire protocol and the failure matrix.
"""

import os
import subprocess
import sys
import tempfile
import threading

import repro
from repro.cluster import run_worker
from repro.config import dump_config
from repro.search import SearchEngine, SearchOptions
from repro.workloads import make_nas

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def main() -> None:
    # 1. The serial reference.
    reference = SearchEngine(make_nas("cg", "T"), SearchOptions()).run()
    print(f"serial:    {reference.configs_tested} configurations tested")

    options = SearchOptions(cluster="127.0.0.1:0", workers=4, lease_timeout=5.0)

    # 2. Two worker threads serve the whole search.
    engine = SearchEngine(make_nas("cg", "T"), options)
    address = engine.evaluator.address
    threads = [
        threading.Thread(target=run_worker, args=(address,), daemon=True)
        for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    clustered = engine.run()
    for thread in threads:
        thread.join(timeout=30)
    print(f"cluster:   {clustered.configs_tested} configurations tested "
          f"across {engine.evaluator.workers_seen} workers")
    same = dump_config(clustered.final_config) == dump_config(
        reference.final_config
    )
    print(f"identical final configuration: {same}")

    # 3. One subprocess worker crashes while holding a lease (the
    #    sentinel file makes it os._exit exactly once); a second worker
    #    finishes the search.
    sentinel = tempfile.mktemp(prefix="repro-crash-")
    open(sentinel, "w").close()
    engine = SearchEngine(make_nas("cg", "T"), options)
    address = engine.evaluator.address
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    doomed = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", address, "--quiet"],
        env=dict(env, REPRO_WORKER_EXIT_SENTINEL=sentinel),
    )

    def survivor_when_doomed_is_in() -> None:
        # Let the doomed worker connect (and take the first lease)
        # before the survivor joins, so the crash actually happens.
        import time

        deadline = time.monotonic() + 30
        while (engine.evaluator.workers_seen < 1
               and time.monotonic() < deadline):
            time.sleep(0.05)
        run_worker(address)

    survivor = threading.Thread(target=survivor_when_doomed_is_in, daemon=True)
    survivor.start()
    crashed = engine.run()
    doomed.wait(timeout=30)
    survivor.join(timeout=30)
    print(f"crashed worker exit code {doomed.returncode}; "
          f"{engine.evaluator.requeues} lease(s) requeued")
    same = dump_config(crashed.final_config) == dump_config(
        reference.final_config
    )
    print(f"identical final configuration after crash: {same}")


if __name__ == "__main__":
    main()
