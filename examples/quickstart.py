"""Quickstart: the whole pipeline on a small program.

1. compile a double-precision program for the virtual ISA;
2. build precision configurations (all-double / all-single / mixed);
3. instrument the binary: selected instructions execute in single
   precision *in place*, flagged with 0x7FF4DEAD in the high word;
4. run and compare results and machine-model cycles;
5. write the configuration exchange file (paper Figure 3) and show the
   structure-tree view (the paper's GUI, as text).

Run:  python examples/quickstart.py
"""

from repro import (
    Config,
    build_tree,
    compile_source,
    dump_config,
    instrument,
    run_program,
)
from repro.config import Policy
from repro.viewer import render_config_tree

SOURCE = """
module quickstart;

var table: real[64];

fn fill() {
    for i in 0 .. 64 {
        table[i] = sin(real(i) * 0.1) + 1.5;
    }
}

fn reduce() -> real {
    var s: real = 0.0;
    for i in 0 .. 64 {
        s = s + table[i] * table[i];
    }
    return sqrt(s);
}

fn main() {
    fill();
    out(reduce());
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    print(f"compiled: {program.stats()}")

    baseline = run_program(program)
    print(f"\noriginal (double):        {baseline.values()[0]!r}"
          f"   [{baseline.cycles} cycles]")

    tree = build_tree(program)

    # Whole-program single precision.
    all_single = instrument(program, Config.all_single(tree))
    single_run = run_program(all_single.program)
    print(f"instrumented all-single:  {single_run.values()[0]!r}"
          f"   [{single_run.cycles} cycles]")

    # Mixed: only the fill() function in single precision.
    fill_fn = next(n for n in tree.nodes_at("function") if "fill" in n.label)
    mixed_config = Config(tree).set(fill_fn.node_id, Policy.SINGLE)
    mixed = instrument(program, mixed_config)
    mixed_run = run_program(mixed.program)
    print(f"mixed (fill single):      {mixed_run.values()[0]!r}"
          f"   [{mixed_run.cycles} cycles]")

    print(f"\nsnippets: {mixed.stats.replaced_single} single, "
          f"{mixed.stats.wrapped_double} double guards; "
          f"text grew {mixed.growth:.2f}x")

    print("\n--- configuration exchange file (paper Figure 3) ---")
    print(dump_config(mixed_config))

    print("--- structure tree (paper Figure 4, as text) ---")
    print(render_config_tree(mixed_config, max_instructions=8))


if __name__ == "__main__":
    main()
