"""The `ignore` flag on RNG code (paper Section 2.1).

The configuration maps instructions to single, double, **or ignore** —
"useful for flagging unusual constructs like random number generation
routines".  This example shows why on the EP analogue: the uniform-draw
scaling arithmetic is bitwise-sensitive (rounding it differently changes
*which* samples pass the acceptance test, flipping integer counts), so
the search can never replace it — but with `ignore` it is taken out of
the configuration space entirely and the search converges faster.

Run:  python examples/ignore_rng.py
"""

from repro import Config, Policy, SearchEngine, build_tree
from repro.workloads import make_nas


def rng_instruction_nodes(tree):
    """The frand() scaling arithmetic: cvtsi2sd + mulsd fed by rand."""
    return [
        node
        for node in tree.instructions()
        if "cvtsi2sd" in node.text or ("mulsd" in node.text and node.line
            and node.line in {n.line for n in tree.instructions() if "cvtsi2sd" in n.text})
    ]


def main() -> None:
    workload = make_nas("ep", "W")
    tree = build_tree(workload.program)

    print("=== search without ignore flags ===")
    plain = SearchEngine(workload).run()
    print(f"tested {plain.configs_tested} configurations; "
          f"static {plain.static_pct * 100:.1f}%, "
          f"dynamic {plain.dynamic_pct * 100:.1f}%, "
          f"final {'pass' if plain.final_verified else 'fail'}")

    rng_nodes = rng_instruction_nodes(tree)
    print(f"\nflagging {len(rng_nodes)} RNG-scaling instruction(s) as ignore:")
    for node in rng_nodes:
        print(f"  i {node.node_id}: {node.text}  (line {node.line})")

    base = Config(tree)
    for node in rng_nodes:
        base.set(node.node_id, Policy.IGNORE)

    print("\n=== search with RNG ignored ===")
    workload2 = make_nas("ep", "W")
    ignored = SearchEngine(workload2, base_config=base).run()
    print(f"tested {ignored.configs_tested} configurations; "
          f"static {ignored.static_pct * 100:.1f}%, "
          f"dynamic {ignored.dynamic_pct * 100:.1f}%, "
          f"final {'pass' if ignored.final_verified else 'fail'}")
    print("\nignored instructions execute untouched in every configuration, "
          "so the search neither tests nor replaces them.")


if __name__ == "__main__":
    main()
