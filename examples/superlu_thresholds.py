"""SuperLU threshold sweep (paper Section 3.3, Figure 11).

"To run an automated search on the linear solver program, we wrote a
driver script that ran the program and compared the reported error
against a predefined threshold error bound."  This example *is* that
driver script for the SuperLU analogue: it sweeps the bound and shows
how the replaceable fraction collapses as the bound tightens.

Run:  python examples/superlu_thresholds.py
"""

from repro.experiments import fig11
from repro.experiments.tables import format_table


def main() -> None:
    meta = fig11.solver_errors("W")
    print("SuperLU analogue on the synthetic memplus-like system:")
    print(f"  double-build reported error: {meta['double_error']:.2e}"
          "   (paper memplus: 2.16e-12)")
    print(f"  single-build reported error: {meta['single_error']:.2e}"
          "   (paper memplus: 5.86e-04)")
    print(f"  single-build speedup:        {meta['single_speedup']:.2f}X"
          "   (paper: 1.16X)\n")

    thresholds = (1e-3, 1e-4, 1e-5, 3e-6, 1e-6, 1e-7)
    rows = fig11.run(klass="W", thresholds=thresholds)
    print(format_table(
        rows,
        columns=[
            ("threshold", "threshold"),
            ("static_pct", "static %"),
            ("dynamic_pct", "dynamic %"),
            ("final_error", "final error"),
            ("final", "final"),
            ("tested", "configs tested"),
        ],
        title="Figure 11 — threshold sweep (ours)",
    ))
    print("paper (memplus): 99.1/99.9 @1e-3 ... 72.6/1.6 @1e-6; the final "
          "error stays below the search threshold whenever the union verifies.")


if __name__ == "__main__":
    main()
