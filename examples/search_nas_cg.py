"""Automatic mixed-precision search on the CG analogue (paper Section 3.1).

Runs the breadth-first search on NAS-analogue CG: module -> function ->
basic block -> instruction, with binary partitioning and profile
prioritization, then prints the Figure-10-style row, the search history,
the final configuration tree, and the annotated source view showing
which source lines survived in single precision.

Run:  python examples/search_nas_cg.py
"""

from repro import SearchEngine, SearchOptions
from repro.viewer import render_config_tree, render_search_summary, render_source_view
from repro.workloads import make_nas


def main() -> None:
    workload = make_nas("cg", "W")
    print(f"workload: {workload.name}")
    print(f"program:  {workload.program.stats()}")
    baseline = workload.baseline()
    print(f"baseline: residual={baseline.values()[0]:.3e} "
          f"checksum={baseline.values()[2]:.6f}  [{baseline.cycles} cycles]\n")

    engine = SearchEngine(workload, SearchOptions())
    result = engine.run()

    print(render_search_summary(result))
    row = result.row()
    print(f"Figure-10 row: candidates={row['candidates']} tested={row['tested']} "
          f"static={row['static_pct']}% dynamic={row['dynamic_pct']}% "
          f"final={row['final']}")
    print("(paper cg.W: candidates=940 tested=270 static=93.7% dynamic=6.4% final=pass)\n")

    print("--- final configuration (profile-weighted tree) ---")
    print(render_config_tree(result.final_config, profile=workload.profile()))

    print("--- annotated source (main module) ---")
    print(render_source_view(result.final_config, workload.sources[0], "cg"))


if __name__ == "__main__":
    main()
