"""AMG microkernel end-to-end conversion (paper Section 3.2).

The paper's workflow on the ASC Sequoia AMG microkernel:

1. the automatic analysis verifies the *whole kernel* can run in single
   precision (the adaptive multigrid iteration corrects rounding);
2. a developer then converts the source manually ("recompiling" — here,
   the compiler's ``real = f32`` build) and gets a ~2X speedup.

Run:  python examples/amg_conversion.py
"""

from repro import Config, SearchEngine, build_tree, instrument
from repro.workloads import amg


def main() -> None:
    workload = amg.make("A")
    base = workload.baseline()
    print(f"workload: {workload.name}")
    print(f"double build: residual={base.values()[0]:.3e} in "
          f"{base.values()[1]} V-cycles  [{base.cycles} cycles]\n")

    # Step 1: the analysis — whole-kernel single configuration.
    tree = build_tree(workload.program)
    instrumented = instrument(workload.program, Config.all_single(tree))
    analysis = workload.run(instrumented.program)
    print("analysis (instrumented, everything single):")
    print(f"  residual={analysis.values()[0]:.3e} in {analysis.values()[1]} cycles"
          f" -> verification {'PASSES' if workload.verify(analysis) else 'fails'}")
    print(f"  analysis overhead: {analysis.cycles / base.cycles:.2f}X"
          "   (paper: 1.2X)\n")

    # The search reaches the same conclusion at module granularity.
    result = SearchEngine(workload).run()
    print(f"automatic search: {result.configs_tested} configuration(s) tested, "
          f"static {result.static_pct * 100:.0f}% replaced, "
          f"final {'pass' if result.final_verified else 'fail'}\n")

    # Step 2: the manual conversion (the f32 build of the same source).
    manual = workload.run(workload.program_single)
    print("manually converted (real = f32) build:")
    print(f"  residual={manual.values()[0]:.3e} in {manual.values()[1]} V-cycles")
    print(f"  verification {'PASSES' if workload.verify(manual) else 'fails'}"
          " (the convergence check self-corrects, as the paper exploits)")
    print(f"  speedup: {base.cycles / manual.cycles:.2f}X"
          "   (paper: 175.48s -> 95.25s, 1.84X)")


if __name__ == "__main__":
    main()
