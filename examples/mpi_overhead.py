"""Instrumentation overhead under MPI scaling (paper Figure 8).

Instruments the CG analogue with base-case (all-double) snippets and
runs original vs instrumented at 1..8 ranks: communication is never
instrumented, so its growing share dilutes the overhead — the downward
trend of the paper's Figure 8.

Run:  python examples/mpi_overhead.py
"""

from repro import Config, build_tree, instrument
from repro.workloads import make_nas


def main() -> None:
    workload = make_nas("cg", "A")
    instrumented = instrument(
        workload.program, Config.all_double(build_tree(workload.program)), mode="all"
    )
    print(f"workload: {workload.name}  "
          f"(candidates: {workload.program.stats()['candidates']})")
    print(f"{'ranks':>6} {'original':>12} {'instrumented':>13} {'overhead':>9}")
    for size in (1, 2, 4, 8):
        base = workload.run_mpi(size)
        instr = workload.run_mpi(size, instrumented.program)
        print(f"{size:>6} {base.elapsed:>12} {instr.elapsed:>13} "
              f"{instr.elapsed / base.elapsed:>8.2f}X")
    print("\npaper Figure 8: the same downward trend — 'the overall overhead "
          "decreases as the number of threads increases'.")


if __name__ == "__main__":
    main()
