"""Listing generation: Program -> human-readable assembly text."""

from __future__ import annotations

from repro.binary.model import FunctionInfo, Program


def disassemble_function(program: Program, fn: FunctionInfo, show_blocks: bool = True) -> str:
    """Disassemble one function as a text listing."""
    program.ensure_cfg()
    lines = [f".func {fn.name}  ; module {fn.module}  [{fn.entry:#x},{fn.end:#x})"]
    blocks = fn.blocks
    for bi, block in enumerate(blocks):
        if show_blocks:
            succs = ", ".join(f"{s:#x}" for s in block.successors)
            lines.append(f"  ; block {bi} @ {block.start:#x} -> [{succs}]")
        for instr in block.instructions:
            src = f"  ; line {instr.line}" if instr.line else ""
            lines.append(f"    {instr.addr:#08x}: {instr.render()}{src}")
    lines.append(".endfunc")
    return "\n".join(lines)


def disassemble_program(program: Program) -> str:
    """Full listing of *program*, grouped by module and function."""
    parts = [f"; program {program.name}: {len(program.text)} text bytes, "
             f"{program.data_words} data words, entry {program.entry:#x}"]
    for module in program.modules:
        parts.append(f"\n.module {module}")
        for fn in program.functions:
            if fn.module == module:
                parts.append(disassemble_function(program, fn))
    return "\n".join(parts)
