"""Assembler and disassembler for the virtual ISA.

:class:`~repro.asm.builder.AsmBuilder` is the programmatic assembler used
by the compiler back end and by the instrumentation snippet generator; it
handles label resolution, function extents, global data allocation, and
final layout into a :class:`~repro.binary.model.Program`.

:mod:`repro.asm.parser` assembles human-written text, and
:mod:`repro.asm.disassembler` produces listings; together they give the
same round-trip capability the paper gets from XED plus Dyninst's
instruction API.
"""

from repro.asm.builder import AsmBuilder, AsmError, LabelRef
from repro.asm.disassembler import disassemble_program, disassemble_function
from repro.asm.parser import assemble_text

__all__ = [
    "AsmBuilder",
    "AsmError",
    "LabelRef",
    "disassemble_program",
    "disassemble_function",
    "assemble_text",
]
