"""Programmatic assembler: emit instructions, resolve labels, lay out a Program.

The builder is the single point where code becomes bytes.  Both the
mini-language compiler and the instrumentation rewriter funnel through it,
so layout rules (function extents, label resolution, debug info) live in
exactly one place.

Labels
------
Two namespaces:

* **function names** — global; ``call`` targets.
* **local labels** — scoped to the function being built; branch targets.

Both are written as :class:`LabelRef` pseudo-operands and resolved to
absolute byte addresses at :meth:`AsmBuilder.link` time.  A ``LabelRef``
encodes to the same width as an ``Imm`` so layout needs only one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binary.cfg import build_cfg
from repro.binary.model import FunctionInfo, GlobalSymbol, Program
from repro.isa.encode import encode_body, encode_instruction
from repro.isa.instruction import Instruction, validate_signature
from repro.isa.opcodes import Op, OPCODE_INFO
from repro.isa.operands import Imm, KIND_IMM, KIND_MEM, Operand


class AsmError(Exception):
    """Assembly-time error: duplicate/undefined label, bad structure."""


@dataclass(frozen=True, slots=True)
class LabelRef:
    """Placeholder operand naming a label; resolved to an ``Imm`` at link."""

    name: str

    kind = KIND_IMM  # takes an Imm slot in signatures and layout

    def render(self) -> str:
        return self.name


@dataclass(slots=True)
class _PendingInstr:
    opcode: Op
    operands: tuple
    line: int
    raw: bytes | None  # final encoding, known at emit time unless a label is involved
    size: int


@dataclass(slots=True)
class _PendingFunc:
    name: str
    module: str
    items: list  # _PendingInstr | str (label name)


class AsmBuilder:
    """Accumulates functions and globals, then links them into a Program."""

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self._module = "main"
        self._modules: list[str] = []
        self._funcs: list[_PendingFunc] = []
        self._current: _PendingFunc | None = None
        self._globals: dict[str, GlobalSymbol] = {}
        self._data_image: list[int] = []
        self._label_counter = 0

    # -- modules ------------------------------------------------------------

    def module(self, name: str) -> None:
        """Switch the module that subsequent functions are attributed to."""
        self._module = name
        if name not in self._modules:
            self._modules.append(name)

    # -- data ---------------------------------------------------------------

    def global_(self, name: str, words: int, init: list[int] | None = None) -> int:
        """Reserve *words* 64-bit cells for a named global; returns its address."""
        if name in self._globals:
            raise AsmError(f"duplicate global {name!r}")
        if words <= 0:
            raise AsmError(f"global {name!r} has non-positive size {words}")
        addr = len(self._data_image)
        if init is None:
            cells = [0] * words
        else:
            if len(init) > words:
                raise AsmError(f"global {name!r}: {len(init)} initializers > {words} words")
            cells = list(init) + [0] * (words - len(init))
        self._data_image.extend(c & 0xFFFFFFFFFFFFFFFF for c in cells)
        self._globals[name] = GlobalSymbol(name, addr, words)
        return addr

    def global_addr(self, name: str) -> int:
        return self._globals[name].addr

    # -- code ---------------------------------------------------------------

    def func(self, name: str) -> None:
        if self._current is not None:
            raise AsmError(f"func {name!r} opened inside {self._current.name!r}")
        if any(f.name == name for f in self._funcs):
            raise AsmError(f"duplicate function {name!r}")
        self._current = _PendingFunc(name, self._module, [])
        if self._module not in self._modules:
            self._modules.append(self._module)

    def endfunc(self) -> None:
        if self._current is None:
            raise AsmError("endfunc outside a function")
        if not self._current.items:
            raise AsmError(f"function {self._current.name!r} is empty")
        self._funcs.append(self._current)
        self._current = None

    def emit(self, opcode: Op, *operands, line: int = 0) -> None:
        """Append one instruction to the current function."""
        if self._current is None:
            raise AsmError("emit outside a function")
        # Validate against the opcode signature now (LabelRef counts as Imm
        # — it carries KIND_IMM, so no placeholder substitution is needed).
        validate_signature(opcode, operands)
        size = 3
        has_label = False
        for o in operands:
            kind = o.kind  # LabelRef carries KIND_IMM
            size += 12 if kind == KIND_MEM else 9 if kind == KIND_IMM else 2
            if o.__class__ is LabelRef:
                has_label = True
        # Encodings are address-independent, so label-free instructions can
        # be encoded once here instead of again at every link.
        raw = None if has_label else encode_body(opcode, operands)
        self._current.items.append(_PendingInstr(opcode, tuple(operands), line, raw, size))

    def mark(self, label: str) -> None:
        """Define a local label at the current position."""
        if self._current is None:
            raise AsmError("label outside a function")
        self._current.items.append(label)

    def fresh_label(self, stem: str = "L") -> str:
        """Return a unique local label name."""
        self._label_counter += 1
        return f".{stem}{self._label_counter}"

    # -- replay (caching clients) -------------------------------------------

    def checkpoint(self) -> int:
        """Position marker in the current function's item stream."""
        if self._current is None:
            raise AsmError("checkpoint outside a function")
        return len(self._current.items)

    def emitted_since(self, pos: int) -> list:
        """The instructions and label marks appended after *pos*.

        The returned items are shared, not copied: linking never mutates
        them, so a caller may cache the list and :meth:`replay` it into a
        later build of the same program.
        """
        return self._current.items[pos:]

    def replay(self, items: list) -> None:
        """Append previously captured items verbatim (label names included,
        so they must be deterministic for the emission site)."""
        if self._current is None:
            raise AsmError("replay outside a function")
        self._current.items.extend(items)

    # -- link ---------------------------------------------------------------

    def link(self, entry: str = "_start") -> Program:
        """Resolve labels, lay out text, and build the final Program."""
        if self._current is not None:
            raise AsmError(f"function {self._current.name!r} left open")
        if not self._funcs:
            raise AsmError("no functions to link")

        # Pass 1: assign addresses.  LabelRef has the same width as Imm, so
        # instruction sizes are final before resolution.
        func_addrs: dict[str, int] = {}
        local_addrs: dict[tuple[str, str], int] = {}
        placed: list[tuple[_PendingFunc, int, int]] = []  # (func, entry, end)
        offset = 0
        for fn in self._funcs:
            func_addrs[fn.name] = offset
            start = offset
            for item in fn.items:
                if isinstance(item, str):
                    key = (fn.name, item)
                    if key in local_addrs:
                        raise AsmError(f"duplicate label {item!r} in {fn.name!r}")
                    local_addrs[key] = offset
                else:
                    offset += item.size
            placed.append((fn, start, offset))

        # Pass 2: resolve and encode.
        def resolve(fn_name: str, operand):
            if isinstance(operand, LabelRef):
                key = (fn_name, operand.name)
                if key in local_addrs:
                    return Imm(local_addrs[key])
                if operand.name in func_addrs:
                    return Imm(func_addrs[operand.name])
                raise AsmError(f"undefined label {operand.name!r} in {fn_name!r}")
            return operand

        chunks: list[bytes] = []
        debug_lines: dict[int, int] = {}
        functions: list[FunctionInfo] = []
        decoded: list[list[Instruction]] = []
        offset = 0
        for fn, start, end in placed:
            fn_instrs: list[Instruction] = []
            for item in fn.items:
                if isinstance(item, str):
                    continue
                raw = item.raw
                if raw is None:
                    ops = tuple(resolve(fn.name, o) for o in item.operands)
                    instr = Instruction(item.opcode, ops, addr=offset, line=item.line)
                    raw = encode_instruction(instr)
                else:
                    instr = Instruction(
                        item.opcode, item.operands, addr=offset, line=item.line
                    )
                if item.line:
                    debug_lines[offset] = item.line
                chunks.append(raw)
                fn_instrs.append(instr)
                offset += item.size
            functions.append(FunctionInfo(fn.name, fn.module, start, end))
            decoded.append(fn_instrs)

        if entry not in func_addrs:
            raise AsmError(f"entry function {entry!r} not defined")

        program = Program(
            text=b"".join(chunks),
            entry=func_addrs[entry],
            functions=functions,
            data_image=list(self._data_image),
            globals=dict(self._globals),
            modules=list(self._modules) or ["main"],
            debug_lines=debug_lines,
            name=self.name,
        )
        build_cfg(program, decoded)
        return program


