"""Text assembler: parse human-written assembly into a Program.

Directives::

    .module NAME                 ; attribution for following functions
    .global NAME WORDS [v ...]   ; reserve data, optional init cell values
    .entry NAME                  ; entry function (default _start)
    .func NAME / .endfunc        ; function extent
    LABEL:                       ; local label

Operands (Intel order, destination first)::

    %r0 .. %r15, %sp, %fp        ; GPRs
    %x0 .. %x15                  ; XMM registers
    $123, $-5, $0x7ff4dead       ; integer immediates
    $d:1.5                       ; immediate = binary64 bit pattern of 1.5
    $s:1.5                       ; immediate = binary32 bit pattern of 1.5
    @name                        ; immediate = address of global `name`
    8(%r1), (%r1,%r2), 4(%r1,%r2,8), (100)   ; memory
    [name], [name+4]             ; memory at a global (+word offset)
    identifier                   ; label reference (branch/call targets)

Comments start with ``;`` or ``#``.
"""

from __future__ import annotations

import re

from repro.asm.builder import AsmBuilder, AsmError, LabelRef
from repro.binary.model import Program
from repro.fpbits.ieee import double_to_bits, single_to_bits
from repro.isa.opcodes import MNEMONIC_TO_OP
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.isa.registers import GPR_BY_NAME, XMM_BY_NAME

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):$")
_MEM_RE = re.compile(
    r"^(-?\d+|0x[0-9a-fA-F]+)?\(\s*(%[\w]+)?\s*(?:,\s*(%[\w]+)\s*(?:,\s*(\d+)\s*)?)?\)$"
)
_GLOBAL_MEM_RE = re.compile(r"^\[([A-Za-z_]\w*)(?:\s*\+\s*(\d+))?\]$")


class _ParserState:
    def __init__(self, name: str) -> None:
        self.builder = AsmBuilder(name)
        self.entry = "_start"
        self.pending_globals: dict[str, int] = {}


def _parse_int(text: str) -> int:
    return int(text, 0)


def _parse_reg(token: str):
    name = token[1:].lower()
    if name in GPR_BY_NAME:
        return Reg(GPR_BY_NAME[name])
    if name in XMM_BY_NAME:
        return Xmm(XMM_BY_NAME[name])
    raise AsmError(f"unknown register {token!r}")


def _parse_operand(token: str, builder: AsmBuilder):
    token = token.strip()
    if not token:
        raise AsmError("empty operand")
    if token.startswith("%"):
        return _parse_reg(token)
    if token.startswith("$d:"):
        return Imm(double_to_bits(float(token[3:])))
    if token.startswith("$s:"):
        return Imm(single_to_bits(float(token[3:])))
    if token.startswith("$"):
        return Imm(_parse_int(token[1:]))
    if token.startswith("@"):
        return Imm(builder.global_addr(token[1:]))
    m = _GLOBAL_MEM_RE.match(token)
    if m:
        addr = builder.global_addr(m.group(1))
        offset = int(m.group(2)) if m.group(2) else 0
        return Mem(disp=addr + offset)
    m = _MEM_RE.match(token)
    if m:
        disp = _parse_int(m.group(1)) if m.group(1) else 0
        base = index = None
        if m.group(2):
            reg = _parse_reg(m.group(2))
            if not isinstance(reg, Reg):
                raise AsmError(f"memory base must be a GPR: {token!r}")
            base = reg.index
        if m.group(3):
            reg = _parse_reg(m.group(3))
            if not isinstance(reg, Reg):
                raise AsmError(f"memory index must be a GPR: {token!r}")
            index = reg.index
        scale = int(m.group(4)) if m.group(4) else 1
        return Mem(base=base, index=index, scale=scale, disp=disp)
    if re.fullmatch(r"[A-Za-z_.][\w.]*", token):
        return LabelRef(token)
    raise AsmError(f"cannot parse operand {token!r}")


def _split_operands(rest: str) -> list[str]:
    """Split on commas not inside parentheses/brackets."""
    parts, depth, current = [], 0, []
    for ch in rest:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def assemble_text(source: str, name: str = "a.out") -> Program:
    """Assemble *source* and return the linked Program."""
    state = _ParserState(name)
    builder = state.builder
    in_func = False

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        try:
            if line.startswith(".module"):
                builder.module(line.split()[1])
                continue
            if line.startswith(".entry"):
                state.entry = line.split()[1]
                continue
            if line.startswith(".global"):
                parts = line.split()
                if len(parts) < 3:
                    raise AsmError(".global needs NAME WORDS")
                init = [_parse_int(p) for p in parts[3:]] or None
                builder.global_(parts[1], int(parts[2]), init)
                continue
            if line.startswith(".func"):
                builder.func(line.split()[1])
                in_func = True
                continue
            if line.startswith(".endfunc"):
                builder.endfunc()
                in_func = False
                continue
            m = _LABEL_RE.match(line)
            if m:
                builder.mark(m.group(1))
                continue
            if not in_func:
                raise AsmError(f"instruction outside .func: {line!r}")
            fields = line.split(None, 1)
            mnemonic = fields[0].lower()
            if mnemonic not in MNEMONIC_TO_OP:
                raise AsmError(f"unknown mnemonic {mnemonic!r}")
            operands = (
                [_parse_operand(t, builder) for t in _split_operands(fields[1])]
                if len(fields) > 1
                else []
            )
            builder.emit(MNEMONIC_TO_OP[mnemonic], *operands, line=lineno)
        except AsmError as exc:
            raise AsmError(f"line {lineno}: {exc}") from exc
        except (KeyError, ValueError, IndexError) as exc:
            raise AsmError(f"line {lineno}: {exc}") from exc

    return builder.link(entry=state.entry)
