"""The program model: text, data, symbols, functions, blocks, debug info.

Memory layout convention (word = 64-bit cell, word-addressed)::

    0 .. data_words-1      globals (initialized from ``data_image``)
    data_words .. top-1    free / heap (zero-initialized)
    top-1 downwards        stack (stack pointer starts at ``top``)

The text section lives in a separate address space (Harvard style): code
addresses are byte offsets into ``text`` and never alias data addresses.
This removes self-modification concerns and makes binary rewriting a pure
text-section transplant, which is also how Dyninst's rewriter treats
well-behaved binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encode import decode_instruction
from repro.isa.instruction import Instruction


@dataclass(frozen=True, slots=True)
class GlobalSymbol:
    """A named object in the data section."""

    name: str
    addr: int
    words: int


@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line run of instructions inside one function."""

    start: int
    instructions: list[Instruction]
    successors: tuple[int, ...] = ()

    @property
    def end(self) -> int:
        """Byte address one past the last instruction."""
        if not self.instructions:
            return self.start
        last = self.instructions[-1]
        from repro.isa.encode import encoded_length

        return last.addr + encoded_length(last)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass(slots=True)
class FunctionInfo:
    """Extent and attribution of one function in the text section."""

    name: str
    module: str
    entry: int
    end: int
    blocks: list[BasicBlock] = field(default_factory=list)

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions


@dataclass(slots=True)
class Program:
    """A complete executable for the virtual machine."""

    text: bytes
    entry: int
    functions: list[FunctionInfo]
    data_image: list[int]
    globals: dict[str, GlobalSymbol]
    modules: list[str]
    #: byte address -> source line (debug info; empty when stripped)
    debug_lines: dict[int, int] = field(default_factory=dict)
    #: human-readable name, used in reports
    name: str = "a.out"

    def decode_all(self) -> list[Instruction]:
        """Decode the whole text section in address order."""
        out = []
        offset = 0
        text = self.text
        n = len(text)
        while offset < n:
            instr, size = decode_instruction(text, offset)
            out.append(instr)
            offset += size
        return out

    def ensure_cfg(self) -> "Program":
        """Build per-function basic blocks if not yet present.

        Programs assembled by the incremental instrumentation cache defer
        CFG construction (the evaluation pipeline never needs blocks);
        consumers that do — the configuration generator, the disassembler
        — call this first.  Idempotent and cheap when blocks exist.
        """
        if any(not fn.blocks and fn.entry < fn.end for fn in self.functions):
            from repro.binary.cfg import build_cfg

            build_cfg(self)
        return self

    def function_at(self, addr: int) -> FunctionInfo | None:
        for fn in self.functions:
            if fn.entry <= addr < fn.end:
                return fn
        return None

    def function_named(self, name: str) -> FunctionInfo:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    @property
    def data_words(self) -> int:
        return len(self.data_image)

    def candidate_instructions(self) -> list[Instruction]:
        """All replacement-candidate instructions, in address order."""
        return [i for i in self.decode_all() if i.is_candidate]

    def stats(self) -> dict[str, int]:
        instrs = self.decode_all()
        return {
            "functions": len(self.functions),
            "instructions": len(instrs),
            "candidates": sum(1 for i in instrs if i.is_candidate),
            "text_bytes": len(self.text),
            "data_words": self.data_words,
        }
