"""Program container and control-flow analysis.

A :class:`~repro.binary.model.Program` is the unit everything else
operates on: the instrumentation engine patches it, the VM executes it,
the search instruments-and-runs many variants of it.  It plays the role
of the ELF binary in the paper: a text section of encoded instructions,
an initialized data image, a symbol table, function extents, per-module
attribution, and debug line information.
"""

from repro.binary.model import (
    BasicBlock,
    FunctionInfo,
    GlobalSymbol,
    Program,
)
from repro.binary.cfg import build_cfg, function_blocks

__all__ = [
    "BasicBlock",
    "FunctionInfo",
    "GlobalSymbol",
    "Program",
    "build_cfg",
    "function_blocks",
]
