"""Intra-procedural control-flow graph construction.

This is the parsing half of what the paper gets from Dyninst: given a
function's extent in the text section, decode it, find basic-block
leaders, and connect blocks by their branch/fallthrough edges.  Calls are
*not* block terminators (the CFG is intra-procedural); unconditional
jumps, conditional jumps, returns and halts are.

Leaders are: the function entry, every branch target inside the function,
and every instruction following a terminator or conditional branch.
"""

from __future__ import annotations

from repro.isa.encode import decode_instruction, encoded_length
from repro.isa.instruction import Instruction

from repro.binary.model import BasicBlock, FunctionInfo, Program


class CfgError(Exception):
    """Ill-formed control flow (e.g. a branch into another function)."""


def _decode_range(text: bytes, start: int, end: int) -> list[Instruction]:
    out = []
    offset = start
    while offset < end:
        instr, size = decode_instruction(text, offset)
        out.append(instr)
        offset += size
    if offset != end:
        raise CfgError(f"function extent [{start:#x},{end:#x}) splits an instruction")
    return out


def function_blocks(
    program: Program, fn: FunctionInfo, instrs: list[Instruction] | None = None
) -> list[BasicBlock]:
    """Build and return the basic blocks of *fn* (does not mutate *fn*).

    *instrs* may supply the function's already-decoded instructions (the
    assembler has them in hand at link time); they must carry final
    addresses.  When omitted the extent is decoded from the text.
    """
    if instrs is None:
        instrs = _decode_range(program.text, fn.entry, fn.end)
    if not instrs:
        return []

    leaders: set[int] = {fn.entry}
    for instr in instrs:
        inf = instr.info
        target = instr.branch_target()
        if target is not None and not inf.is_call:
            if not (fn.entry <= target < fn.end):
                raise CfgError(
                    f"{fn.name}: branch at {instr.addr:#x} targets {target:#x} "
                    f"outside the function"
                )
            leaders.add(target)
        if inf.is_terminator or inf.is_cond_branch:
            next_addr = instr.addr + encoded_length(instr)
            if next_addr < fn.end:
                leaders.add(next_addr)

    ordered = sorted(leaders)
    leader_set = set(ordered)

    blocks: list[BasicBlock] = []
    current: list[Instruction] = []
    for instr in instrs:
        if instr.addr in leader_set and current:
            blocks.append(BasicBlock(current[0].addr, current))
            current = []
        current.append(instr)
    if current:
        blocks.append(BasicBlock(current[0].addr, current))

    # Successor edges.
    for i, block in enumerate(blocks):
        last = block.instructions[-1]
        inf = last.info
        succs: list[int] = []
        target = last.branch_target()
        if inf.is_cond_branch:
            assert target is not None
            succs.append(target)
            if i + 1 < len(blocks):
                succs.append(blocks[i + 1].start)
        elif inf.is_branch:  # unconditional jmp
            assert target is not None
            succs.append(target)
        elif inf.is_terminator:  # ret / halt
            pass
        else:  # fallthrough (includes calls)
            if i + 1 < len(blocks):
                succs.append(blocks[i + 1].start)
        block.successors = tuple(succs)

    return blocks


def build_cfg(
    program: Program, decoded: list[list[Instruction]] | None = None
) -> None:
    """Populate ``fn.blocks`` for every function in *program* (idempotent).

    *decoded* optionally provides each function's instructions (parallel
    to ``program.functions``), skipping the re-decode of bytes the caller
    just encoded.
    """
    for i, fn in enumerate(program.functions):
        fn.blocks = function_blocks(
            program, fn, decoded[i] if decoded is not None else None
        )
