"""Precision configurations (paper Section 2.1).

A configuration maps every double-precision (candidate) instruction to
``single``, ``double``, or ``ignore``.  Decisions can also be made at
aggregate levels — module, function, basic block — and an aggregate's
flag *overrides* flags on its children, exactly as in the paper's
exchange file format (its Figure 3).
"""

from repro.config.model import (
    Policy,
    ConfigNode,
    ProgramTree,
    Config,
    narrowest,
)
from repro.config.generator import build_tree
from repro.config.fileformat import dump_config, load_config, read_lattice_header

__all__ = [
    "Policy",
    "narrowest",
    "ConfigNode",
    "ProgramTree",
    "Config",
    "build_tree",
    "dump_config",
    "load_config",
    "read_lattice_header",
]
