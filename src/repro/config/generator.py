"""Initial configuration generation by static analysis (paper Section 2.1:
"The initial list of these structures is easily generated using a simple
static analysis that traverses the program's control flow graph").

Builds the :class:`~repro.config.model.ProgramTree` for a program:
modules -> functions -> basic blocks -> candidate instructions.  IDs are
assigned in program (address) order with the paper's naming scheme
(``FUNC01``, ``BBLK01``, ``INSN01`` ... plus ``MODL01`` for modules,
which the paper's search starts from).

Structures that contain no replacement candidates are omitted: the
configuration space is defined over the double-precision instructions.
"""

from __future__ import annotations

from repro.binary.model import Program
from repro.config.model import (
    Config,
    ConfigNode,
    LEVEL_BLOCK,
    LEVEL_FUNCTION,
    LEVEL_INSN,
    LEVEL_MODULE,
    ProgramTree,
)


def build_tree(program: Program) -> ProgramTree:
    """Derive the structure tree of *program* (builds the CFG if needed)."""
    program.ensure_cfg()
    counters = {"MODL": 0, "FUNC": 0, "BBLK": 0, "INSN": 0}

    def next_id(prefix: str) -> str:
        counters[prefix] += 1
        return f"{prefix}{counters[prefix]:02d}"

    by_id: dict[str, ConfigNode] = {}
    by_addr: dict[int, ConfigNode] = {}
    roots: list[ConfigNode] = []

    for module in program.modules:
        module_node = ConfigNode(next_id("MODL"), LEVEL_MODULE, module)
        for fn in program.functions:
            if fn.module != module:
                continue
            if not fn.blocks:
                continue
            fn_node = ConfigNode(
                next_id("FUNC"), LEVEL_FUNCTION, f"{fn.name}()", parent=module_node
            )
            for block in fn.blocks:
                block_node = ConfigNode(
                    next_id("BBLK"), LEVEL_BLOCK, f"{block.start:#x}", parent=fn_node
                )
                for instr in block.instructions:
                    if not instr.is_candidate:
                        continue
                    insn_node = ConfigNode(
                        next_id("INSN"),
                        LEVEL_INSN,
                        instr.render(),
                        parent=block_node,
                        addr=instr.addr,
                        text=instr.render(),
                        line=program.debug_lines.get(instr.addr, instr.line),
                    )
                    block_node.children.append(insn_node)
                    by_addr[instr.addr] = insn_node
                    by_id[insn_node.node_id] = insn_node
                if block_node.children:
                    fn_node.children.append(block_node)
                    by_id[block_node.node_id] = block_node
            if fn_node.children:
                module_node.children.append(fn_node)
                by_id[fn_node.node_id] = fn_node
        if module_node.children:
            roots.append(module_node)
            by_id[module_node.node_id] = module_node

    return ProgramTree(
        program_name=program.name, roots=roots, by_id=by_id, by_addr=by_addr
    )


def initial_config(program: Program) -> Config:
    """All-double configuration over a freshly built tree."""
    return Config.all_double(build_tree(program))
