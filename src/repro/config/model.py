"""Configuration data model: structure tree + flag assignment.

The *structure tree* (``ProgramTree``) is derived once from a program by
static CFG analysis: modules contain functions contain basic blocks
contain candidate instructions.  Only structures that contain at least
one replacement candidate appear — the configuration space is defined
over ``Pd``, the set of double-precision instructions.

A ``Config`` is a sparse mapping ``node id -> Policy`` over that tree.
Resolution follows the paper's override rule: walking from the root down
to an instruction, the *first* (outermost) explicit flag wins; if no node
on the path has a flag, the instruction defaults to ``double``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Policy(str, Enum):
    """Per-structure precision decision.

    The paper's model is binary (single/double/ignore); the precision
    lattice (:mod:`repro.lattice`) adds two narrower rungs below single.
    Policies are ordered by *narrowness*: ``d < s < b < h`` — see
    :meth:`rank` and :func:`narrowest`.
    """

    SINGLE = "s"
    DOUBLE = "d"
    IGNORE = "i"
    BF16 = "b"
    HALF = "h"

    @classmethod
    def from_flag(cls, flag: str) -> "Policy":
        return cls(flag)

    @property
    def is_narrow(self) -> bool:
        """True for any replacement policy (anything below double)."""
        return self in _NARROW_RANK

    def rank(self) -> int:
        """Narrowness rank: DOUBLE=0, SINGLE=1, BF16=2, HALF=3.

        IGNORE has no rank (it is not a precision level).
        """
        if self is Policy.DOUBLE:
            return 0
        return _NARROW_RANK[self]


_NARROW_RANK = {Policy.SINGLE: 1, Policy.BF16: 2, Policy.HALF: 3}


def narrowest(a: Policy, b: Policy) -> Policy:
    """The narrower of two non-IGNORE policies (lattice meet)."""
    return a if a.rank() >= b.rank() else b


LEVEL_MODULE = "module"
LEVEL_FUNCTION = "function"
LEVEL_BLOCK = "block"
LEVEL_INSN = "instruction"

_LEVEL_PREFIX = {
    LEVEL_MODULE: "MODL",
    LEVEL_FUNCTION: "FUNC",
    LEVEL_BLOCK: "BBLK",
    LEVEL_INSN: "INSN",
}


@dataclass(slots=True)
class ConfigNode:
    """One structure in the tree (module / function / block / instruction)."""

    node_id: str
    level: str
    label: str
    children: list["ConfigNode"] = field(default_factory=list)
    parent: "ConfigNode | None" = None
    #: for instruction nodes: the text-section address
    addr: int = -1
    #: for instruction nodes: disassembly text (informational)
    text: str = ""
    #: source line from debug info, 0 if unknown
    line: int = 0

    def instructions(self):
        """All instruction nodes in this subtree, in address order."""
        if self.level == LEVEL_INSN:
            yield self
        else:
            for child in self.children:
                yield from child.instructions()

    def walk(self):
        """All nodes in this subtree, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.node_id} {self.level} {self.label!r}>"


@dataclass(slots=True)
class ProgramTree:
    """The full structure tree of one program."""

    program_name: str
    roots: list[ConfigNode]
    by_id: dict[str, ConfigNode]
    #: instruction address -> node
    by_addr: dict[int, ConfigNode]

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def instructions(self):
        for root in self.roots:
            yield from root.instructions()

    def node(self, node_id: str) -> ConfigNode:
        return self.by_id[node_id]

    @property
    def candidate_count(self) -> int:
        return len(self.by_addr)

    def nodes_at(self, level: str):
        return [n for n in self.walk() if n.level == level]


class Config:
    """A precision configuration: sparse flags over a ProgramTree."""

    def __init__(self, tree: ProgramTree, flags: dict[str, Policy] | None = None):
        self.tree = tree
        self.flags: dict[str, Policy] = dict(flags or {})

    # -- construction helpers -------------------------------------------------

    def copy(self) -> "Config":
        return Config(self.tree, self.flags)

    def set(self, node_id: str, policy: Policy | None) -> "Config":
        """Set (or clear, with None) a flag; returns self for chaining."""
        if node_id not in self.tree.by_id:
            raise KeyError(f"unknown node id {node_id!r}")
        if policy is None:
            self.flags.pop(node_id, None)
        else:
            self.flags[node_id] = Policy(policy)
        return self

    @classmethod
    def all_double(cls, tree: ProgramTree) -> "Config":
        return cls(tree)

    @classmethod
    def all_single(cls, tree: ProgramTree) -> "Config":
        cfg = cls(tree)
        for root in tree.roots:
            cfg.flags[root.node_id] = Policy.SINGLE
        return cfg

    def union(self, other: "Config") -> "Config":
        """Compose two configs: each node takes the narrowest flag of either.

        This implements the paper's "final configuration": the union of all
        individually passing replacements.  With only SINGLE flags in play
        this is exactly the paper's "any SINGLE wins" rule; lattice flags
        generalize it to narrowest-wins.  IGNORE flags are preserved;
        conflicting narrow/IGNORE resolves to IGNORE (safety).
        """
        if other.tree is not self.tree:
            raise ValueError("configs must share a ProgramTree")
        merged = dict(self.flags)
        for node_id, policy in other.flags.items():
            current = merged.get(node_id)
            if current is Policy.IGNORE or policy is Policy.IGNORE:
                merged[node_id] = Policy.IGNORE
            elif current is None:
                merged[node_id] = policy
            else:
                merged[node_id] = narrowest(current, policy)
        return Config(self.tree, merged)

    # -- resolution -------------------------------------------------------------

    def effective_policy(self, node: ConfigNode) -> Policy:
        """Resolve the policy for an instruction node (outermost flag wins)."""
        path = []
        cursor: ConfigNode | None = node
        while cursor is not None:
            path.append(cursor)
            cursor = cursor.parent
        for ancestor in reversed(path):  # root first
            flag = self.flags.get(ancestor.node_id)
            if flag is not None:
                return flag
        return Policy.DOUBLE

    def instruction_policies(self) -> dict[int, Policy]:
        """Resolved policy for every candidate instruction address."""
        out: dict[int, Policy] = {}
        for root in self.tree.roots:
            self._resolve_into(root, None, out)
        return out

    def _resolve_into(
        self, node: ConfigNode, inherited: Policy | None, out: dict[int, Policy]
    ) -> None:
        effective = inherited if inherited is not None else self.flags.get(node.node_id)
        if node.level == LEVEL_INSN:
            out[node.addr] = effective if effective is not None else Policy.DOUBLE
            return
        for child in node.children:
            self._resolve_into(child, effective, out)

    # -- metrics ------------------------------------------------------------------

    def has_any_single(self) -> bool:
        """True if any candidate resolves to a narrow (replaced) policy."""
        return any(p.is_narrow for p in self.instruction_policies().values())

    def static_replaced_fraction(self) -> float:
        """Fraction of candidate instructions resolved narrow (static %)."""
        policies = self.instruction_policies()
        if not policies:
            return 0.0
        narrowed = sum(1 for p in policies.values() if p.is_narrow)
        return narrowed / len(policies)

    def dynamic_replaced_fraction(self, exec_counts: dict[int, int]) -> float:
        """Fraction of candidate instruction *executions* resolved narrow,
        weighted by a profile of the original program."""
        policies = self.instruction_policies()
        total = 0
        narrowed = 0
        for addr, policy in policies.items():
            count = exec_counts.get(addr, 0)
            total += count
            if policy.is_narrow:
                narrowed += count
        return narrowed / total if total else 0.0

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Config)
            and other.tree is self.tree
            and other.flags == self.flags
        )

    def __hash__(self) -> int:
        return hash(frozenset(self.flags.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {}
        for p in self.flags.values():
            counts[p.value] = counts.get(p.value, 0) + 1
        return f"<Config {len(self.flags)} flags {counts}>"


def level_prefix(level: str) -> str:
    return _LEVEL_PREFIX[level]
