"""The human-readable configuration exchange file format (paper Figure 3).

Example::

    # program: cg.A   candidates: 934
    MODL01: main
      FUNC01: main()
        BBLK01: 0x0f
     s      INSN01: 0x0031 "addsd %x0, %x1"
     d      INSN02: 0x0038 "mulsd %x1, %x2"
      FUNC02: solve()
     s   BBLK02: 0x54
            INSN03: 0x0054 "addsd %x0, %x1"

The first column holds the precision flag — ``s`` (single), ``d``
(double), ``i`` (ignore), or the lattice widths ``b`` (bfloat16) and
``h`` (binary16) — or a space when the entry has no explicit flag.
Indentation shows containment; an aggregate's flag overrides its
children's flags.  Lines beginning with ``#`` are comments.

**Format v2 (lattice-aware):** configs searched over a non-binary
precision lattice carry a ``# lattice: <spec>`` header comment recording
the width chain the flags refer to.  Legacy binary (f64->f32) configs
omit the header entirely, so every v1 file is a valid v2 file and
re-serializes byte-identically — the version bump is purely additive.
"""

from __future__ import annotations

from repro.config.model import (
    Config,
    ConfigNode,
    LEVEL_INSN,
    Policy,
    ProgramTree,
)


class ConfigFormatError(Exception):
    """Malformed configuration file."""


def _render_node(node: ConfigNode, config: Config, depth: int, lines: list[str]) -> None:
    flag = config.flags.get(node.node_id)
    col = flag.value if flag is not None else " "
    indent = "  " * depth
    if node.level == LEVEL_INSN:
        body = f'{node.node_id}: {node.addr:#06x} "{node.text}"'
        if node.line:
            body += f"  ; line {node.line}"
    else:
        body = f"{node.node_id}: {node.label}"
    lines.append(f"{col} {indent}{body}")
    for child in node.children:
        _render_node(child, config, depth + 1, lines)


def dump_config(
    config: Config, header: str | None = None, lattice=None
) -> str:
    """Serialize *config* to the exchange text format.

    *lattice* (a :class:`repro.lattice.Lattice` or spec string) adds the
    v2 ``# lattice:`` header; the binary f64->f32 lattice — and None —
    emit no header, keeping legacy output byte-identical.
    """
    tree = config.tree
    lines = [
        f"# program: {tree.program_name}   candidates: {tree.candidate_count}"
    ]
    if lattice is not None:
        from repro.lattice import parse_lattice

        lattice = parse_lattice(lattice)
        if not lattice.is_binary:
            lines.append(f"# lattice: {lattice.spec()}")
    if header:
        for extra in header.splitlines():
            lines.append(f"# {extra}")
    for root in tree.roots:
        _render_node(root, config, 0, lines)
    return "\n".join(lines) + "\n"


def read_lattice_header(text: str) -> str | None:
    """The ``# lattice:`` spec of a v2 config file, or None (v1/binary)."""
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped.startswith("# lattice:"):
            return stripped[len("# lattice:"):].strip()
        if stripped and not stripped.startswith("#"):
            break  # headers precede the first structure line
    return None


def load_config(tree: ProgramTree, text: str) -> Config:
    """Parse exchange-format *text* into a Config over *tree*.

    IDs must match the tree (they are deterministic for a given program).
    Unknown IDs raise :class:`ConfigFormatError`.
    """
    flags: dict[str, Policy] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip() or raw.lstrip().startswith("#"):
            continue
        col = raw[0]
        rest = raw[1:].strip()
        if ":" in rest:
            node_id = rest.split(":", 1)[0].strip()
        else:
            node_id = rest.split()[0]
        if node_id not in tree.by_id:
            raise ConfigFormatError(f"line {lineno}: unknown structure id {node_id!r}")
        if col == " ":
            continue
        try:
            flags[node_id] = Policy(col)
        except ValueError as exc:
            raise ConfigFormatError(
                f"line {lineno}: bad flag {col!r} (expected s/d/i/b/h or space)"
            ) from exc
    return Config(tree, flags)
