"""Machine-checking the workload contract.

:func:`run_conformance` takes a :class:`~repro.sdk.registry.WorkloadSpec`
and exercises its factory's product against the behavioural half of the
contract — the properties every consumer of a workload silently relies
on:

``classes-enumerate``
    The declared classes are non-empty and the default is among them.
``build``
    The factory builds at the checked class; the product carries
    ``program`` / ``run`` / ``verify``; the program has replacement
    candidates for the search to act on.
``deterministic``
    Two runs produce bit-identical outputs and cycle counts — the
    foundation of content-addressed result reuse.
``baseline-verifies``
    The double-precision run passes the workload's own verification
    (otherwise the search root fails and nothing can be explored).
``verify-style``
    ``verify`` returns a bool and, where the workload declares a style,
    it matches the spec's (``baseline`` vs ``self``).
``single-build`` (skipped when ``spec.single_build`` is False)
    The "manually converted" f32 build exists, shares the f64 build's
    module/function/global structure, and runs to completion without
    NaNs — so per-site configurations of one build are meaningful
    against the other.
``workload-id``
    Two independent factory builds content-address to the same
    :func:`repro.store.workload_id` — the key the result store, the
    cluster skew check, and the service dedup all hang off.
``mpi-ranks`` (only when ``spec.mpi``)
    The one-rank SPMD run is bit-identical to the serial run, and a
    multi-rank run completes cleanly with finite outputs.

Each check is isolated: an exception inside one is recorded as that
check's failure and the rest still run.  The harness is deliberately
cheap — it uses the spec's smallest class — so CI can afford to run it
over every registered workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class ConformanceError(AssertionError):
    """Raised by :func:`assert_conformant` when any check fails."""


@dataclass(frozen=True)
class CheckOutcome:
    """One check's verdict."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{self.name:<18} {mark}{tail}"


@dataclass
class ConformanceReport:
    """All check outcomes for one (spec, class) pairing."""

    workload: str
    klass: str
    checks: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list:
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        head = (
            f"conformance {self.workload}.{self.klass}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.checks) - len(self.failures)}/{len(self.checks)})"
        )
        return "\n".join([head] + [f"  {check}" for check in self.checks])


def _finite(values) -> bool:
    for v in values:
        v = float(v)
        if math.isnan(v) or math.isinf(v):
            return False
    return True


class _Runner:
    """Executes checks, capturing exceptions as failures."""

    def __init__(self, report: ConformanceReport) -> None:
        self.report = report

    def check(self, name: str, func) -> bool:
        try:
            detail = func()
        except Exception as exc:
            self.report.checks.append(
                CheckOutcome(name, False, f"{type(exc).__name__}: {exc}")
            )
            return False
        self.report.checks.append(CheckOutcome(name, True, detail or ""))
        return True

    def fail(self, name: str, detail: str) -> None:
        self.report.checks.append(CheckOutcome(name, False, detail))

    def skip_dependents(self, names, reason: str) -> None:
        for name in names:
            self.report.checks.append(
                CheckOutcome(name, False, f"not run: {reason}")
            )


def run_conformance(spec, klass: str | None = None, *,
                    mpi_ranks: int = 2) -> ConformanceReport:
    """Check *spec*'s product against the workload contract.

    *klass* defaults to the spec's smallest declared class;
    *mpi_ranks* sets the width of the multi-rank leg for SPMD specs.
    """
    klass = klass or spec.smallest_class
    report = ConformanceReport(spec.name, klass)
    run = _Runner(report)

    def classes_enumerate():
        if not spec.classes:
            raise ValueError("spec declares no classes")
        if spec.default_class not in spec.classes:
            raise ValueError(
                f"default class {spec.default_class!r} not declared"
            )
        if klass not in spec.classes:
            raise ValueError(f"checked class {klass!r} not declared")
        return f"classes {', '.join(spec.classes)}"

    run.check("classes-enumerate", classes_enumerate)

    state: dict = {}

    def build():
        workload = spec.make(klass)
        for attr in ("program", "run", "verify"):
            if not hasattr(workload, attr):
                raise TypeError(f"workload has no {attr!r}")
        stats = workload.program.stats()
        if stats["candidates"] < 1:
            raise ValueError("program has no replacement candidates")
        state["workload"] = workload
        return (f"{stats['instructions']} instructions, "
                f"{stats['candidates']} candidates")

    if not run.check("build", build):
        run.skip_dependents(
            ("deterministic", "baseline-verifies", "verify-style",
             "single-build", "workload-id")
            + (("mpi-ranks",) if spec.mpi else ()),
            "build failed",
        )
        return report
    workload = state["workload"]

    def deterministic():
        first = workload.run()
        second = workload.run()
        if list(first.values()) != list(second.values()):
            raise ValueError("two runs produced different outputs")
        cycles_a = getattr(first, "cycles", None)
        cycles_b = getattr(second, "cycles", None)
        if cycles_a != cycles_b:
            raise ValueError(
                f"two runs took {cycles_a} vs {cycles_b} cycles"
            )
        state["baseline"] = first
        return f"{len(first.values())} outputs, {cycles_a} cycles"

    run.check("deterministic", deterministic)

    def baseline_verifies():
        result = state.get("baseline") or workload.run()
        verdict = workload.verify(result)
        if not verdict:
            raise ValueError(
                "the double-precision run fails its own verification"
            )
        return None

    run.check("baseline-verifies", baseline_verifies)

    def verify_style():
        result = state.get("baseline") or workload.run()
        verdict = workload.verify(result)
        if not isinstance(verdict, bool):
            raise TypeError(
                f"verify returned {type(verdict).__name__}, not bool"
            )
        declared = getattr(workload, "verify_mode", None)
        if declared is not None and declared != spec.verify:
            raise ValueError(
                f"spec declares verify={spec.verify!r} but the workload "
                f"says {declared!r}"
            )
        if declared == "self" and getattr(workload, "self_check", None) is None:
            raise ValueError("self-verifying workload has no self_check")
        return f"style {spec.verify}"

    run.check("verify-style", verify_style)

    def single_build():
        if not spec.single_build:
            return "skipped (spec declares no f32 build)"
        single = workload.program_single
        double = workload.program
        if list(single.modules) != list(double.modules):
            raise ValueError(
                f"module lists differ: {single.modules} vs {double.modules}"
            )
        if sorted(fn.name for fn in single.functions) != sorted(
            fn.name for fn in double.functions
        ):
            raise ValueError("function tables differ between builds")
        if sorted(single.globals) != sorted(double.globals):
            raise ValueError("global symbol tables differ between builds")
        result = workload.run(single)
        if not _finite(result.values()):
            raise ValueError("the f32 build produced NaN/inf outputs")
        return f"{len(double.functions)} functions agree"

    run.check("single-build", single_build)

    def workload_id_stable():
        from repro.store import workload_id

        first = workload_id(workload)
        second = workload_id(spec.make(klass))
        if first != second:
            raise ValueError(
                f"two builds content-address differently: "
                f"{first} vs {second} — the factory is not deterministic"
            )
        return first

    run.check("workload-id", workload_id_stable)

    if spec.mpi:

        def mpi_ranks_consistent():
            serial = state.get("baseline") or workload.run()
            one = workload.run_mpi(1)
            if list(one.values()) != list(serial.values()):
                raise ValueError("1-rank SPMD run differs from serial run")
            wide = workload.run_mpi(mpi_ranks)
            if not _finite(wide.values()):
                raise ValueError(
                    f"{mpi_ranks}-rank run produced NaN/inf outputs"
                )
            return f"1 rank == serial; {mpi_ranks} ranks clean"

        run.check("mpi-ranks", mpi_ranks_consistent)

    return report


def assert_conformant(spec, klass: str | None = None, *,
                      mpi_ranks: int = 2) -> ConformanceReport:
    """:func:`run_conformance`, raising :class:`ConformanceError` with
    the full summary when any check fails.  Returns the report."""
    report = run_conformance(spec, klass, mpi_ranks=mpi_ranks)
    if not report.passed:
        raise ConformanceError(report.summary())
    return report
