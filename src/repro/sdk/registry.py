"""The workload registry: specs, registration, and plugin loading.

A :class:`WorkloadSpec` is the *declared* half of the workload contract
(the behavioural half is machine-checked by
:mod:`repro.sdk.conformance`): a name, a factory, the problem classes it
enumerates, its verification style, whether it is SPMD, and which extra
keyword arguments the factory accepts.  Everything that consumes
workloads — ``make_workload``, the CLI, the job service, the cluster
workers — resolves names through one :class:`WorkloadRegistry`, so a
workload registered by an external package is indistinguishable from a
built-in.

External packages register in one of two ways:

* an entry point in the ``repro.workloads`` group whose target is a
  spec, an iterable of specs, or a callable over the registry (loaded
  lazily the first time an unknown name is looked up);
* an explicit ``--plugin module:attr`` / ``--plugin path/to/file.py``
  argument on the CLI, resolved by :func:`load_plugin`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

#: the importlib.metadata entry-point group external packages use.
ENTRY_POINT_GROUP = "repro.workloads"

#: canonical smallest-to-largest ordering of the built-in class letters;
#: classes outside this table sort after it, in declaration order.
CLASS_ORDER = ("T", "S", "W", "A", "B", "C", "D")


class RegistryError(RuntimeError):
    """Invalid registration: bad spec, or a name collision."""


class PluginError(RuntimeError):
    """A plugin module could not be loaded or registered."""


class UnknownWorkloadError(KeyError):
    """Lookup of a name no spec was registered under.

    A ``KeyError`` so long-standing callers of ``make_workload`` keep
    working; the message lists every registered name.
    """

    def __init__(self, name: str, known: Iterable[str]) -> None:
        known = sorted(known)
        message = (
            f"unknown workload {name!r}; registered workloads: "
            f"{', '.join(known) if known else '(none)'}"
        )
        super().__init__(message)
        self.workload = name
        self.known = known

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declaration of one workload family.

    Parameters
    ----------
    name:
        The lookup key (``repro search <name>``); one word, no ``/``.
    factory:
        ``factory(klass, **kwargs) -> workload`` building one instance.
        The result must satisfy the workload contract documented in
        docs/WORKLOADS.md (``program``/``run``/``verify`` at minimum);
        :func:`repro.sdk.run_conformance` checks it mechanically.
    classes:
        Problem classes the factory accepts, smallest first (the
        conformance harness exercises ``classes[0]``).
    default_class:
        Class used when the caller names none; defaults to ``"W"`` when
        present, else ``classes[0]``.
    description:
        One line for ``repro workloads``.
    origin:
        Provenance label: ``"built-in"``, ``"plugin:<spec>"``, or
        ``"entry-point:<name>"``.  Informational only.
    mpi:
        True for SPMD workloads with a meaningful ``run_mpi``.
    verify:
        Declared verification style: ``"baseline"`` (outputs match the
        f64 run within tolerances) or ``"self"`` (a predicate over the
        outputs, e.g. a convergence check).
    kwargs:
        Extra keyword arguments the factory accepts (e.g. SuperLU's
        ``threshold``).  Anything else is rejected at ``make`` time.
    single_build:
        True when the factory's product carries the "manually
        converted" f32 build (``program_single``); binary-only
        workloads set this False and skip the structure check.
    """

    name: str
    factory: Callable
    classes: tuple = ("W",)
    default_class: str = ""
    description: str = ""
    origin: str = "built-in"
    mpi: bool = False
    verify: str = "baseline"
    kwargs: tuple = ()
    single_build: bool = True

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() or c == "/" for c in self.name):
            raise RegistryError(f"invalid workload name {self.name!r}")
        if not callable(self.factory):
            raise RegistryError(f"{self.name}: factory is not callable")
        if not self.classes:
            raise RegistryError(f"{self.name}: declares no problem classes")
        object.__setattr__(self, "classes", tuple(self.classes))
        object.__setattr__(self, "kwargs", tuple(self.kwargs))
        if not self.default_class:
            default = "W" if "W" in self.classes else self.classes[0]
            object.__setattr__(self, "default_class", default)
        if self.default_class not in self.classes:
            raise RegistryError(
                f"{self.name}: default class {self.default_class!r} not in "
                f"classes {self.classes}"
            )
        if self.verify not in ("baseline", "self"):
            raise RegistryError(
                f"{self.name}: verify must be 'baseline' or 'self', "
                f"not {self.verify!r}"
            )

    @property
    def smallest_class(self) -> str:
        """The cheapest declared class (conformance and smoke tests)."""
        order = {k: i for i, k in enumerate(CLASS_ORDER)}
        return min(
            self.classes,
            key=lambda k: (order.get(k, len(CLASS_ORDER)),
                           self.classes.index(k)),
        )

    def make(self, klass: str | None = None, **kwargs):
        """Build one workload instance, validating class and kwargs."""
        klass = klass or self.default_class
        if klass not in self.classes:
            raise KeyError(
                f"workload {self.name!r} has no class {klass!r}; "
                f"classes: {', '.join(self.classes)}"
            )
        unknown = sorted(set(kwargs) - set(self.kwargs))
        if unknown:
            accepts = ", ".join(self.kwargs) if self.kwargs else "none"
            raise TypeError(
                f"workload {self.name!r} got unexpected keyword argument(s) "
                f"{', '.join(unknown)} (accepts: {accepts})"
            )
        return self.factory(klass, **kwargs)


@dataclass
class WorkloadRegistry:
    """Name -> :class:`WorkloadSpec`, with lazy entry-point discovery."""

    _specs: dict = field(default_factory=dict)
    #: load the ``repro.workloads`` entry-point group on the first miss
    #: (set False for the isolated registries tests build).
    discover_entry_points: bool = True
    _entry_points_loaded: bool = field(default=False, repr=False)
    #: (entry point name, error string) pairs from the last discovery —
    #: surfaced by ``repro workloads`` instead of aborting the CLI.
    plugin_errors: list = field(default_factory=list, repr=False)

    def register(self, spec: WorkloadSpec, *, override: bool = False
                 ) -> WorkloadSpec:
        """Add *spec*; a second spec under the same name must say
        ``override=True`` or the registration is refused."""
        if not isinstance(spec, WorkloadSpec):
            raise RegistryError(
                f"expected a WorkloadSpec, got {type(spec).__name__}"
            )
        existing = self._specs.get(spec.name)
        if existing is not None and not override:
            raise RegistryError(
                f"workload {spec.name!r} is already registered "
                f"(origin {existing.origin}); pass override=True to replace"
            )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        self._specs.pop(name, None)

    def __contains__(self, name: str) -> bool:
        if name not in self._specs:
            self._load_entry_points_once()
        return name in self._specs

    def get(self, name: str) -> WorkloadSpec:
        spec = self._specs.get(name)
        if spec is None:
            self._load_entry_points_once()
            spec = self._specs.get(name)
        if spec is None:
            raise UnknownWorkloadError(name, self._specs)
        return spec

    def names(self) -> list:
        self._load_entry_points_once()
        return sorted(self._specs)

    def specs(self) -> list:
        return [self._specs[name] for name in self.names()]

    def make(self, name: str, klass: str | None = None, **kwargs):
        return self.get(name).make(klass, **kwargs)

    # -- discovery -------------------------------------------------------------

    def _load_entry_points_once(self) -> None:
        if self._entry_points_loaded or not self.discover_entry_points:
            return
        self._entry_points_loaded = True
        self.load_entry_points()

    def load_entry_points(self, group: str = ENTRY_POINT_GROUP) -> list:
        """Register every entry point in *group*; import/registration
        failures are recorded in :attr:`plugin_errors`, never raised —
        one broken package must not take the CLI down."""
        from importlib import metadata

        registered = []
        try:
            points = metadata.entry_points(group=group)
        except TypeError:  # pragma: no cover - pre-3.10 selection API
            points = metadata.entry_points().get(group, ())
        for point in points:
            try:
                target = point.load()
                registered.extend(
                    _register_target(
                        self, target, origin=f"entry-point:{point.name}"
                    )
                )
            except Exception as exc:
                self.plugin_errors.append((point.name, f"{exc}"))
        return registered


def _register_target(registry: WorkloadRegistry, target, *, origin: str,
                     override: bool = False) -> list:
    """Register whatever a plugin exposes: one spec, an iterable of
    specs, or a callable over the registry."""
    if isinstance(target, WorkloadSpec):
        specs = [target]
    elif callable(target):
        result = target(registry)
        if result is None:
            return []  # the callable registered directly
        specs = [result] if isinstance(result, WorkloadSpec) else list(result)
    elif isinstance(target, Iterable):
        specs = list(target)
    else:
        raise PluginError(
            f"{origin}: expected a WorkloadSpec, an iterable of specs, or "
            f"a callable, got {type(target).__name__}"
        )
    out = []
    for spec in specs:
        if not isinstance(spec, WorkloadSpec):
            raise PluginError(
                f"{origin}: expected WorkloadSpec entries, got "
                f"{type(spec).__name__}"
            )
        if spec.origin == "built-in":
            spec = replace(spec, origin=origin)
        out.append(registry.register(spec, override=override))
    return out


def _import_plugin_module(module_ref: str):
    """Import a plugin module by dotted name or by file path."""
    import importlib

    if module_ref.endswith(".py") or os.sep in module_ref:
        import importlib.util

        if not os.path.exists(module_ref):
            raise PluginError(f"plugin file not found: {module_ref}")
        mod_name = "repro_plugin_" + (
            os.path.splitext(os.path.basename(module_ref))[0]
        )
        spec = importlib.util.spec_from_file_location(mod_name, module_ref)
        if spec is None or spec.loader is None:  # pragma: no cover
            raise PluginError(f"cannot load plugin file {module_ref!r}")
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            raise PluginError(f"plugin {module_ref!r} failed to load: {exc}")
        return module
    try:
        return importlib.import_module(module_ref)
    except ImportError as exc:
        raise PluginError(f"cannot import plugin module {module_ref!r}: {exc}")


def load_plugin(ref: str, registry: WorkloadRegistry | None = None, *,
                override: bool = False) -> list:
    """Load ``module[:attr]`` (or ``path/to/file.py[:attr]``) and register
    the workloads it exposes; returns the registered specs.

    Without ``:attr`` the module is searched for ``WORKLOADS`` (a spec or
    iterable of specs) then ``register`` (a callable over the registry).
    """
    if registry is None:
        registry = REGISTRY
    module_ref, _, attr = ref.partition(":")
    if not module_ref:
        raise PluginError(f"empty plugin reference {ref!r}")
    module = _import_plugin_module(module_ref)
    if attr:
        try:
            target = getattr(module, attr)
        except AttributeError:
            raise PluginError(
                f"plugin module {module_ref!r} has no attribute {attr!r}"
            )
    else:
        target = getattr(module, "WORKLOADS", None)
        if target is None:
            target = getattr(module, "register", None)
        if target is None:
            raise PluginError(
                f"plugin module {module_ref!r} exposes neither WORKLOADS "
                f"nor register(); name an attribute with "
                f"{module_ref}:<attr>"
            )
    specs = _register_target(
        registry, target, origin=f"plugin:{ref}", override=override
    )
    if not specs:
        # A register() callable may have registered directly; that is
        # fine — but a plugin that registered *nothing* is a user error.
        return specs
    return specs


#: The process-wide registry every consumer resolves names through.
#: Built-ins are registered when :mod:`repro.workloads` is imported.
REGISTRY = WorkloadRegistry()
