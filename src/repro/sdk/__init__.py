"""The workload SDK: plugins as first-class search tenants.

The implicit contract every workload satisfied by convention
(build / run / verify / classes, cf. :mod:`repro.workloads.base`) is
made explicit here:

* :class:`WorkloadSpec` declares one workload family — name, factory,
  classes, verification style, MPI-ness, accepted kwargs;
* :data:`REGISTRY` (a :class:`WorkloadRegistry`) maps names to specs.
  The built-ins register through it on ``import repro.workloads``;
  external packages register via the ``repro.workloads`` entry-point
  group or an explicit ``--plugin module:attr`` argument
  (:func:`load_plugin`);
* :func:`run_conformance` machine-checks any spec's product against
  the behavioural contract (deterministic runs, f64/f32 structural
  agreement, verification styles, class enumeration, MPI rank
  consistency, stable content addressing).

Everything downstream — ``make_workload``, ``repro search/analyze/
profile/serve/submit``, the job service's per-task workload fields, the
result store's ``workload_id`` keys — resolves workloads through the
registry, so a plugin workload travels every path a built-in does.
See docs/WORKLOADS.md for the full guide.
"""

from repro.sdk.registry import (
    CLASS_ORDER,
    ENTRY_POINT_GROUP,
    PluginError,
    REGISTRY,
    RegistryError,
    UnknownWorkloadError,
    WorkloadRegistry,
    WorkloadSpec,
    load_plugin,
)
from repro.sdk.conformance import (
    CheckOutcome,
    ConformanceError,
    ConformanceReport,
    assert_conformant,
    run_conformance,
)

__all__ = [
    "CLASS_ORDER",
    "ENTRY_POINT_GROUP",
    "PluginError",
    "REGISTRY",
    "RegistryError",
    "UnknownWorkloadError",
    "WorkloadRegistry",
    "WorkloadSpec",
    "load_plugin",
    "CheckOutcome",
    "ConformanceError",
    "ConformanceReport",
    "assert_conformant",
    "run_conformance",
]
