"""CG analogue: conjugate gradient on a sparse SPD matrix.

Like NAS CG: a sparse symmetric positive-definite matrix in CSR form
(the sparsity *pattern* is generated offline like NAS's ``makea`` index
machinery, but all floating-point *values* — matrix entries, dominant
diagonal, right-hand side — are computed by the program itself, giving
the search the large pool of cold setup arithmetic that real NAS codes
have), solved with a fixed number of CG iterations.  The program reports
the final residual norm and a solution checksum.  The linear-algebra
primitives live in a separate ``cglin`` module so the automatic search
has a multi-module structure to descend.

SPMD structure mirrors NAS CG: matrix rows are partitioned across ranks,
the matrix-vector product is completed with a vector all-reduce, and dot
products are partial sums combined with scalar all-reduces.  At one rank
every collective is a no-op and the program is the serial benchmark.

CG is the paper's poster child for *sensitivity*: the recurrence keeping
``r``, ``p`` and ``x`` consistent amplifies rounding across iterations,
so hot-loop instructions fail verification individually while the
one-shot setup arithmetic passes — the Figure 10 pattern (cg: ~94%
static replaced, only ~5-6% dynamic).
"""

from __future__ import annotations

from string import Template

import numpy as np

from repro.workloads.base import Workload, poke_i64

_LIN = Template("""
module cglin;

fn pdot(a: real[], b: real[], lo: i64, hi: i64) -> real {
    var s: real = 0.0;
    for i in lo .. hi {
        s = s + a[i] * b[i];
    }
    return allreduce_sum(s);
}

fn axpy(y: real[], alpha: real, x: real[], n: i64) {
    for i in 0 .. n {
        y[i] = y[i] + alpha * x[i];
    }
}

fn xpby(y: real[], x: real[], beta: real, n: i64) {
    for i in 0 .. n {
        y[i] = x[i] + beta * y[i];
    }
}

fn vsum(a: real[], n: i64) -> real {
    var s: real = 0.0;
    for i in 0 .. n {
        s = s + a[i];
    }
    return s;
}
""")

_MAIN = Template("""
module cg;

const N: i64 = $n;
const NITER: i64 = $niter;

var rowptr: i64[$np1];
var colidx: i64[$nnz];
var aval: real[$nnz];
var bb: real[$n];
var xx: real[$n];
var rr: real[$n];
var pp: real[$n];
var qq: real[$n];

# NAS makea analogue: the sparsity pattern is given, the values are
# computed here.  Off-diagonal (i, j) entries use a symmetric key so the
# matrix is exactly symmetric; the diagonal dominates by construction.
fn makea() {
    for i in 0 .. N {
        var diag: real = 2.0;
        for k in rowptr[i] .. rowptr[i + 1] {
            var j: i64 = colidx[k];
            if j != i {
                var a2: i64 = i;
                var b2: i64 = j;
                if j < i {
                    a2 = j;
                    b2 = i;
                }
                var v: real = 0.3 * sin(real(a2 * N + b2));
                aval[k] = v;
                diag = diag + abs(v);
            }
        }
        for k in rowptr[i] .. rowptr[i + 1] {
            if colidx[k] == i {
                aval[k] = diag;
            }
        }
        bb[i] = 0.75 + 0.25 * sin(real(i) * 0.37);
    }
}

fn matvec(v: real[], w: real[], lo: i64, hi: i64) {
    for i in 0 .. N {
        w[i] = 0.0;
    }
    for i in lo .. hi {
        var s: real = 0.0;
        for k in rowptr[i] .. rowptr[i + 1] {
            s = s + aval[k] * v[colidx[k]];
        }
        w[i] = s;
    }
    allreduce_sum_vec(w, N);
}

fn main() {
    var rank: i64 = mpi_rank();
    var size: i64 = mpi_size();
    var lo: i64 = (rank * N) / size;
    var hi: i64 = ((rank + 1) * N) / size;

    makea();
    for i in 0 .. N {
        xx[i] = 0.0;
        rr[i] = bb[i];
        pp[i] = bb[i];
    }
    var rho: real = pdot(rr, rr, lo, hi);
    for it in 0 .. NITER {
        matvec(pp, qq, lo, hi);
        var alpha: real = rho / pdot(pp, qq, lo, hi);
        axpy(xx, alpha, pp, N);
        axpy(rr, -alpha, qq, N);
        var rho2: real = pdot(rr, rr, lo, hi);
        var beta: real = rho2 / rho;
        rho = rho2;
        xpby(pp, rr, beta, N);
    }
    # NAS-style verification values: the *true* residual ||b - A x||
    # (recomputed from scratch, not the recurrence), the recurrence
    # residual, and a solution checksum.
    matvec(xx, qq, lo, hi);
    var tr: real = 0.0;
    for i in 0 .. N {
        var d: real = bb[i] - qq[i];
        tr = tr + d * d;
    }
    out(sqrt(tr));
    out(sqrt(rho));
    out(vsum(xx, N));
}
""")

# Iteration counts run CG to stagnation: the double build converges to
# ~1e-13 while any single-precision arithmetic in the recurrence stalls
# the attainable residual near 1e-7 — that gap is what the verification
# routine keys on, like NAS CG's zeta check.
CLASSES = {
    # "T" (tiny) exists for the incremental-evaluation benchmark and the
    # CI perf smoke: big enough to exercise every snippet kind, small
    # enough that a full instruction-level search finishes in seconds.
    "T": dict(n=12, row_nnz=3, niter=2),
    "S": dict(n=24, row_nnz=5, niter=10),
    "W": dict(n=48, row_nnz=6, niter=16),
    "A": dict(n=96, row_nnz=8, niter=20),
    "C": dict(n=192, row_nnz=10, niter=26),
}


def _build_pattern(n: int, row_nnz: int, seed: int = 20120707):
    """Random symmetric sparsity pattern in CSR (indices only)."""
    rng = np.random.default_rng(seed)
    neighbours: list[set] = [set() for _ in range(n)]
    for i in range(n):
        for j in rng.integers(0, n, size=row_nnz - 1):
            j = int(j)
            if j != i:
                neighbours[i].add(j)
                neighbours[j].add(i)
    rowptr = [0]
    cols: list[int] = []
    for i in range(n):
        row = sorted(neighbours[i] | {i})
        cols.extend(row)
        rowptr.append(len(cols))
    return rowptr, cols


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    n = params["n"]
    rowptr, cols = _build_pattern(n, params["row_nnz"])
    nnz = len(cols)
    main_src = _MAIN.substitute(n=n, np1=n + 1, nnz=nnz, niter=params["niter"])
    lin_src = _LIN.substitute()

    def data_init(program, real_type):
        poke_i64(program, "rowptr", rowptr)
        poke_i64(program, "colidx", cols)

    return Workload(
        name=f"cg.{klass}",
        sources=[main_src, lin_src],
        klass=klass,
        data_init=data_init,
        verify_mode="baseline",
        # Per-output: true residual and recurrence residual judged near
        # double accuracy (the converged baseline sits at ~1e-13, a stalled
        # single-precision recurrence at ~1e-7); the checksum loosely, so
        # one-shot setup (makea) roundings pass.
        tolerances=[(0.0, 1e-9), (0.0, 1e-8), (1e-5, 1e-4)],
    )
