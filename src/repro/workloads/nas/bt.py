"""BT analogue: block-tridiagonal solver with dense 3x3 blocks.

Like NAS BT's line solves: a block-tridiagonal system (3x3 blocks, one
block-row per grid line) is factored and solved with the block Thomas
algorithm.  The 3x3 inversion is fully unrolled (adjugate / determinant),
which is why BT contributes by far the largest static candidate count of
the suite — the same reason the real bt has ~6.6k candidates in Figure 10
while cg has ~940.

Serial only (the paper's Figure 8 MPI set is EP/CG/FT/MG).
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module bt;

const N: i64 = $n;          # block rows
const NB: i64 = $n9;        # N * 9

var dmat: real[$n9];
var cmat: real[$n9];
var emat: real[$n9];
var fmat: real[$n9];
var gvec: real[$n3];
var bvec: real[$n3];
var xvec: real[$n3];
var d0: real[$n9];          # pristine copies for the residual check
var c0: real[$n9];
var e0: real[$n9];
var b0: real[$n3];

fn setup() {
    for i in 0 .. N {
        for r in 0 .. 3 {
            for c in 0 .. 3 {
                var k: i64 = i * 9 + r * 3 + c;
                var t: real = real(k);
                var dv: real = 0.25 * sin(t * 0.131);
                if r == c {
                    dv = dv + 4.0;
                }
                dmat[k] = dv;
                cmat[k] = 0.2 * sin(t * 0.071 + 1.0);
                emat[k] = 0.2 * cos(t * 0.053);
                d0[k] = dmat[k];
                c0[k] = cmat[k];
                e0[k] = emat[k];
            }
            bvec[i * 3 + r] = 1.0 + 0.5 * sin(real(i * 3 + r) * 0.17);
            b0[i * 3 + r] = bvec[i * 3 + r];
        }
    }
}

# inv = a^-1 for the 3x3 block at a+off, fully unrolled (adjugate).
fn inv3(a: real[], inv: real[]) {
    var a00: real = a[0];
    var a01: real = a[1];
    var a02: real = a[2];
    var a10: real = a[3];
    var a11: real = a[4];
    var a12: real = a[5];
    var a20: real = a[6];
    var a21: real = a[7];
    var a22: real = a[8];
    var m00: real = a11 * a22 - a12 * a21;
    var m01: real = a12 * a20 - a10 * a22;
    var m02: real = a10 * a21 - a11 * a20;
    var det: real = a00 * m00 + a01 * m01 + a02 * m02;
    var di: real = 1.0 / det;
    inv[0] = m00 * di;
    inv[1] = (a02 * a21 - a01 * a22) * di;
    inv[2] = (a01 * a12 - a02 * a11) * di;
    inv[3] = m01 * di;
    inv[4] = (a00 * a22 - a02 * a20) * di;
    inv[5] = (a02 * a10 - a00 * a12) * di;
    inv[6] = m02 * di;
    inv[7] = (a01 * a20 - a00 * a21) * di;
    inv[8] = (a00 * a11 - a01 * a10) * di;
}

# c = a * b for 3x3 blocks.
fn mul3(a: real[], b: real[], c: real[]) {
    for r in 0 .. 3 {
        for k in 0 .. 3 {
            var s: real = 0.0;
            for j in 0 .. 3 {
                s = s + a[r * 3 + j] * b[j * 3 + k];
            }
            c[r * 3 + k] = s;
        }
    }
}

# y = a * x for a 3x3 block and 3-vector.
fn mv3(a: real[], x: real[], y: real[]) {
    for r in 0 .. 3 {
        var s: real = 0.0;
        for j in 0 .. 3 {
            s = s + a[r * 3 + j] * x[j];
        }
        y[r] = s;
    }
}

var scratch_i: real[9];
var scratch_m: real[9];
var scratch_v: real[3];

fn main() {
    setup();
    # Forward elimination (block Thomas).
    for i in 0 .. N {
        if i > 0 {
            # D_i -= C_i * F_{i-1};  b_i -= C_i * g_{i-1}
            mul3(cmat + i * 9, fmat + (i - 1) * 9, scratch_m);
            for k in 0 .. 9 {
                dmat[i * 9 + k] = dmat[i * 9 + k] - scratch_m[k];
            }
            mv3(cmat + i * 9, gvec + (i - 1) * 3, scratch_v);
            for k in 0 .. 3 {
                bvec[i * 3 + k] = bvec[i * 3 + k] - scratch_v[k];
            }
        }
        inv3(dmat + i * 9, scratch_i);
        mul3(scratch_i, emat + i * 9, fmat + i * 9);
        mv3(scratch_i, bvec + i * 3, gvec + i * 3);
    }
    # Back substitution.
    for k in 0 .. 3 {
        xvec[(N - 1) * 3 + k] = gvec[(N - 1) * 3 + k];
    }
    var i: i64 = N - 2;
    while i >= 0 {
        mv3(fmat + i * 9, xvec + (i + 1) * 3, scratch_v);
        for k in 0 .. 3 {
            xvec[i * 3 + k] = gvec[i * 3 + k] - scratch_v[k];
        }
        i = i - 1;
    }
    # Residual against the pristine system, plus a solution checksum.
    var rnorm: real = 0.0;
    var csum: real = 0.0;
    for r in 0 .. N {
        mv3(d0 + r * 9, xvec + r * 3, scratch_v);
        for k in 0 .. 3 {
            var s: real = scratch_v[k];
            if r > 0 {
                mv3(c0 + r * 9, xvec + (r - 1) * 3, scratch_i);
                s = s + scratch_i[k];
            }
            if r < N - 1 {
                mv3(e0 + r * 9, xvec + (r + 1) * 3, scratch_i);
                s = s + scratch_i[k];
            }
            var d: real = b0[r * 3 + k] - s;
            rnorm = rnorm + d * d;
        }
    }
    for j in 0 .. 3 * N {
        csum = csum + xvec[j];
    }
    out(sqrt(rnorm));
    out(csum);
}
""")

CLASSES = {
    "T": dict(n=4),
    "S": dict(n=8),
    "W": dict(n=16),
    "A": dict(n=32),
    "C": dict(n=64),
}


def make(klass: str = "W") -> Workload:
    n = CLASSES[klass]["n"]
    source = _SRC.substitute(n=n, n9=n * 9, n3=n * 3)
    return Workload(
        name=f"bt.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="baseline",
        # Direct solve: one pass, no self-correction, but also no long
        # error accumulation; moderately tolerant.
        tolerances=[(0.0, 7e-7), (1e-8, 7e-7)],
    )
