"""EP analogue: embarrassingly parallel Gaussian-deviate generation.

Like NAS EP: draw uniform pairs, apply the Marsaglia polar method to get
Gaussian deviates, accumulate the coordinate sums and the counts of
deviates falling in concentric square annuli.  Communication is three
reductions at the very end, so the kernel is almost pure computation —
which is why its instrumentation overhead barely moves with rank count
in the paper's Figure 8.

The uniform draws come from the ``frand()`` intrinsic (xorshift64* based);
its scaling arithmetic is floating point, making it a natural place to
demonstrate the configuration file's ``ignore`` flag on RNG code, as the
paper suggests.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module ep;

const NPAIRS: i64 = $npairs;
const NQ: i64 = 10;

var q: real[10];

fn main() {
    var rank: i64 = mpi_rank();
    var size: i64 = mpi_size();
    var lo: i64 = (rank * NPAIRS) / size;
    var hi: i64 = ((rank + 1) * NPAIRS) / size;

    var sx: real = 0.0;
    var sy: real = 0.0;
    for k in lo .. hi {
        var x: real = 2.0 * frand() - 1.0;
        var y: real = 2.0 * frand() - 1.0;
        var t: real = x * x + y * y;
        if t <= 1.0 and t > 0.0 {
            var f: real = sqrt(-2.0 * log(t) / t);
            var gx: real = x * f;
            var gy: real = y * f;
            sx = sx + gx;
            sy = sy + gy;
            var m: real = max(abs(gx), abs(gy));
            var l: i64 = i64(m);
            if l < NQ {
                q[l] = q[l] + 1.0;
            }
        }
    }
    sx = allreduce_sum(sx);
    sy = allreduce_sum(sy);
    allreduce_sum_vec(q, NQ);
    out(sx);
    out(sy);
    for l in 0 .. NQ {
        out(q[l]);
    }
}
""")

CLASSES = {
    "T": dict(npairs=64),
    "S": dict(npairs=256),
    "W": dict(npairs=1024),
    "A": dict(npairs=4096),
    "C": dict(npairs=16384),
}


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    source = _SRC.substitute(**params)
    return Workload(
        name=f"ep.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="baseline",
        # Gaussian sums see benign cancellation; single precision keeps
        # roughly 1e-6 relative accuracy at these sizes.
        tolerances=[(1e-8, 2e-7), (1e-8, 2e-7)] + [(0.0, 0.5)] * 10,
    )
