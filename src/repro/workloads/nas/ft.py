"""FT analogue: spectral evolution with repeated FFTs.

Like NAS FT: the initial field is transformed *once* with a forward FFT;
then, for each of ``NSTEP`` time steps, the spectrum is evolved by phase
factors and an **inverse FFT of a copy** produces the time-domain field
whose checksum and point samples are reported.  The FFT is an in-place
iterative radix-2 Cooley-Tukey with explicit bit-reversal; twiddle
factors come from a one-shot ``sin``/``cos`` table.

The butterfly kernel therefore dominates execution overwhelmingly (one
forward plus ``NSTEP`` inverse transforms per vector), while the
replaceable one-shot code — field init, twiddle tables, evolution
factors — is a thin sliver.  That is the paper's Figure 10 pattern for
ft: high *static* replacement but minuscule *dynamic* replacement
(0.2-0.3% of executions).

Verification compares checksums loosely (cancellation makes them
forgiving) and point samples strictly — one-shot roundings move a sample
by ~1 ulp32 while a butterfly chain (2 log N rounds deep, repeated every
step) moves it far more.

SPMD structure: the batch of independent vectors is partitioned across
ranks and checksums are combined with scalar all-reduces.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module ft;

const LOGN: i64 = $logn;
const N: i64 = $n;
const BATCH: i64 = $batch;
const NSTEP: i64 = $nstep;
const TOTAL: i64 = $total;

var re: real[$total];
var im: real[$total];
var sre: real[$n];
var sim: real[$n];
var wre: real[$half];
var wim: real[$half];

fn init_field() {
    for v in 0 .. BATCH {
        for i in 0 .. N {
            var t: real = real(v * N + i);
            re[v * N + i] = 0.5 + 0.5 * sin(t * 0.11);
            im[v * N + i] = 0.5 * cos(t * 0.07);
        }
    }
}

fn init_twiddles() {
    var pi: real = 3.14159265358979324;
    for k in 0 .. N / 2 {
        var ang: real = -2.0 * pi * real(k) / real(N);
        wre[k] = cos(ang);
        wim[k] = sin(ang);
    }
}

fn bit_reverse(x: real[], y: real[]) {
    var j: i64 = 0;
    for i in 0 .. N - 1 {
        if i < j {
            var tr: real = x[i];
            x[i] = x[j];
            x[j] = tr;
            var ti: real = y[i];
            y[i] = y[j];
            y[j] = ti;
        }
        var m: i64 = N / 2;
        while m >= 1 and j >= m {
            j = j - m;
            m = m / 2;
        }
        j = j + m;
    }
}

# sign = -1 selects the inverse transform (conjugated twiddles); the
# caller scales by 1/N afterwards.
fn fft(x: real[], y: real[], sign: i64) {
    bit_reverse(x, y);
    var len: i64 = 2;
    var half: i64 = 1;
    while len <= N {
        var step: i64 = N / len;
        var base: i64 = 0;
        while base < N {
            for k in 0 .. half {
                var tw_r: real = wre[k * step];
                var tw_i: real = wim[k * step];
                if sign < 0 {
                    tw_i = -tw_i;
                }
                var i0: i64 = base + k;
                var i1: i64 = i0 + half;
                var ur: real = x[i0];
                var ui: real = y[i0];
                var vr: real = x[i1] * tw_r - y[i1] * tw_i;
                var vi: real = x[i1] * tw_i + y[i1] * tw_r;
                x[i0] = ur + vr;
                y[i0] = ui + vi;
                x[i1] = ur - vr;
                y[i1] = ui - vi;
            }
            base = base + len;
        }
        len = len * 2;
        half = half * 2;
    }
}

# One evolution step: multiply each mode by its phase factor, in place.
fn evolve(x: real[], y: real[]) {
    for k in 0 .. N {
        var kk: i64 = k;
        if k > N / 2 {
            kk = k - N;
        }
        var ph: real = -0.003 * real(kk * kk);
        var er: real = cos(ph);
        var ei: real = sin(ph);
        var xr: real = x[k] * er - y[k] * ei;
        var xi: real = x[k] * ei + y[k] * er;
        x[k] = xr;
        y[k] = xi;
    }
}

fn main() {
    var rank: i64 = mpi_rank();
    var size: i64 = mpi_size();
    var lo: i64 = (rank * BATCH) / size;
    var hi: i64 = ((rank + 1) * BATCH) / size;

    init_field();
    init_twiddles();

    var csr: real = 0.0;
    var csi: real = 0.0;
    var scale: real = 1.0 / real(N);
    for v in lo .. hi {
        fft(re + v * N, im + v * N, 1);
        for t in 0 .. NSTEP {
            evolve(re + v * N, im + v * N);
            # Inverse-transform a copy of the evolved spectrum.
            for i in 0 .. N {
                sre[i] = re[v * N + i];
                sim[i] = im[v * N + i];
            }
            fft(sre, sim, -1);
            var j: i64 = 0;
            while j < N {
                csr = csr + sre[j] * scale;
                csi = csi + sim[j] * scale;
                j = j + 7;
            }
        }
    }
    csr = allreduce_sum(csr);
    csi = allreduce_sum(csi);
    out(csr);
    out(csi);
    # Point samples of the final time-domain field (serial verification
    # runs process the full batch, so the scratch buffer holds the last
    # vector's final step).
    out(sre[3]);
    out(sim[11]);
    out(sre[17]);
    out(sim[29]);
}
""")

CLASSES = {
    "T": dict(logn=4, batch=1, nstep=2),
    "S": dict(logn=5, batch=1, nstep=3),
    "W": dict(logn=6, batch=2, nstep=4),
    "A": dict(logn=7, batch=2, nstep=5),
    "C": dict(logn=8, batch=3, nstep=6),
}


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    n = 1 << params["logn"]
    batch = params["batch"]
    source = _SRC.substitute(
        logn=params["logn"], n=n, batch=batch, nstep=params["nstep"],
        total=n * batch, half=n // 2,
    )
    return Workload(
        name=f"ft.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="baseline",
        tolerances=[(1e-6, 4e-6), (1e-6, 4e-6),
                    (0.0, 6e-8), (0.0, 6e-8), (0.0, 6e-8), (0.0, 6e-8)],
    )
