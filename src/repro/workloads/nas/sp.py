"""SP analogue: scalar pentadiagonal line solves.

Like NAS SP: a batch of independent scalar pentadiagonal systems is
factored and solved by Gaussian elimination without pivoting (safe by
diagonal dominance), forward elimination followed by back substitution —
the exact structure of SP's x/y/z line sweeps.  Each system gets a
different conditioning scale, so sensitivity varies across the batch;
the paper notes sp is the one benchmark where the search degenerated
into instruction-level probing (alternating replaceable/unreplaceable
instructions), and a heterogeneous batch is what provokes that.

Serial only.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module sp;

const N: i64 = $n;          # system size
const NSYS: i64 = $nsys;    # independent systems

# Bands: a (i-2), b (i-1), c (diag), d (i+1), e (i+2); f is the rhs.
var av: real[$n];
var bv: real[$n];
var cv: real[$n];
var dv: real[$n];
var ev: real[$n];
var fv: real[$n];
var a0: real[$n];
var b0: real[$n];
var c0: real[$n];
var d0: real[$n];
var e0: real[$n];
var f0: real[$n];

fn setup(sys: i64) {
    var scale: real = 1.0 + 0.5 * real(sys);
    for i in 0 .. N {
        var t: real = real(sys * N + i);
        av[i] = -0.2 + 0.05 * sin(t * 0.29);
        bv[i] = -0.5 + 0.1 * cos(t * 0.17);
        dv[i] = -0.5 + 0.1 * sin(t * 0.23);
        ev[i] = -0.2 + 0.05 * cos(t * 0.31);
        cv[i] = scale * (1.6 + abs(av[i]) + abs(bv[i]) + abs(dv[i]) + abs(ev[i]));
        fv[i] = 1.0 + 0.4 * sin(t * 0.13);
        a0[i] = av[i];
        b0[i] = bv[i];
        c0[i] = cv[i];
        d0[i] = dv[i];
        e0[i] = ev[i];
        f0[i] = fv[i];
    }
}

# Forward elimination then back substitution; the solution lands in fv.
fn solve() {
    for i in 0 .. N {
        # Eliminate b (distance 1) from row i+1 and a (distance 2) from i+2.
        var pivot: real = cv[i];
        if i + 1 < N {
            var m1: real = bv[i + 1] / pivot;
            cv[i + 1] = cv[i + 1] - m1 * dv[i];
            dv[i + 1] = dv[i + 1] - m1 * ev[i];
            fv[i + 1] = fv[i + 1] - m1 * fv[i];
        }
        if i + 2 < N {
            var m2: real = av[i + 2] / pivot;
            bv[i + 2] = bv[i + 2] - m2 * dv[i];
            cv[i + 2] = cv[i + 2] - m2 * ev[i];
            fv[i + 2] = fv[i + 2] - m2 * fv[i];
        }
    }
    var i: i64 = N - 1;
    while i >= 0 {
        var s: real = fv[i];
        if i + 1 < N {
            s = s - dv[i] * fv[i + 1];
        }
        if i + 2 < N {
            s = s - ev[i] * fv[i + 2];
        }
        fv[i] = s / cv[i];
        i = i - 1;
    }
}

fn main() {
    var csum: real = 0.0;
    var rmax: real = 0.0;
    for sys in 0 .. NSYS {
        setup(sys);
        solve();
        for i in 0 .. N {
            # Residual of the pristine system at the computed solution.
            var s: real = c0[i] * fv[i] - f0[i];
            if i >= 1 {
                s = s + b0[i] * fv[i - 1];
            }
            if i >= 2 {
                s = s + a0[i] * fv[i - 2];
            }
            if i + 1 < N {
                s = s + d0[i] * fv[i + 1];
            }
            if i + 2 < N {
                s = s + e0[i] * fv[i + 2];
            }
            rmax = max(rmax, abs(s));
            csum = csum + fv[i];
        }
    }
    out(rmax);
    out(csum);
}
""")

CLASSES = {
    "T": dict(n=12, nsys=1),
    "S": dict(n=24, nsys=2),
    "W": dict(n=48, nsys=3),
    "A": dict(n=96, nsys=4),
    "C": dict(n=192, nsys=6),
}


def make(klass: str = "W") -> Workload:
    source = _SRC.substitute(**CLASSES[klass])
    return Workload(
        name=f"sp.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="baseline",
        tolerances=[(0.0, 1.2e-7), (2e-8, 4e-7)],
    )
