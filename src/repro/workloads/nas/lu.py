"""LU analogue: SSOR sweeps on a banded system.

Like NAS LU (which is an SSOR-based solver, not a factorization): a
diagonally dominant banded matrix (sub/super diagonals at distances 1 and
``band``) is relaxed with symmetric successive over-relaxation — a
forward sweep followed by a backward sweep per iteration.  The program
reports the residual norm and a solution checksum after a fixed number of
iterations.

Serial only.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module lu;

const N: i64 = $n;
const BAND: i64 = $band;
const NITER: i64 = $niter;

var diag: real[$n];
var sub1: real[$n];
var sup1: real[$n];
var subb: real[$n];
var supb: real[$n];
var bb: real[$n];
var uu: real[$n];

fn setup() {
    for i in 0 .. N {
        var t: real = real(i);
        sub1[i] = -0.4 + 0.1 * sin(t * 0.23);
        sup1[i] = -0.4 + 0.1 * cos(t * 0.19);
        subb[i] = -0.25 + 0.05 * sin(t * 0.11 + 2.0);
        supb[i] = -0.25 + 0.05 * cos(t * 0.13 + 1.0);
        diag[i] = 2.5 + abs(sub1[i]) + abs(sup1[i]) + abs(subb[i]) + abs(supb[i]);
        bb[i] = 1.0 + 0.3 * sin(t * 0.41);
        uu[i] = 0.0;
    }
}

# (A u)[i] with the five bands, guarding the edges.
fn rowdot(i: i64) -> real {
    var s: real = diag[i] * uu[i];
    if i >= 1 {
        s = s + sub1[i] * uu[i - 1];
    }
    if i + 1 < N {
        s = s + sup1[i] * uu[i + 1];
    }
    if i >= BAND {
        s = s + subb[i] * uu[i - BAND];
    }
    if i + BAND < N {
        s = s + supb[i] * uu[i + BAND];
    }
    return s;
}

fn main() {
    setup();
    var omega: real = 1.2;
    for it in 0 .. NITER {
        for i in 0 .. N {
            var r: real = bb[i] - rowdot(i);
            uu[i] = uu[i] + omega * r / diag[i];
        }
        var i: i64 = N - 1;
        while i >= 0 {
            var r: real = bb[i] - rowdot(i);
            uu[i] = uu[i] + omega * r / diag[i];
            i = i - 1;
        }
    }
    var rnorm: real = 0.0;
    var csum: real = 0.0;
    for i in 0 .. N {
        var r: real = bb[i] - rowdot(i);
        rnorm = rnorm + r * r;
        csum = csum + uu[i];
    }
    out(sqrt(rnorm));
    out(csum);
}
""")

CLASSES = {
    "T": dict(n=16, band=4, niter=2),
    "S": dict(n=32, band=4, niter=3),
    "W": dict(n=64, band=8, niter=5),
    "A": dict(n=128, band=8, niter=6),
    "C": dict(n=256, band=16, niter=8),
}


def make(klass: str = "W") -> Workload:
    source = _SRC.substitute(**CLASSES[klass])
    return Workload(
        name=f"lu.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="baseline",
        # SSOR relaxes toward the solution (some self-correction), but the
        # residual norm is checked after a fixed iteration count.
        tolerances=[(0.0, 1e-6), (4e-8, 1e-7)],
    )
