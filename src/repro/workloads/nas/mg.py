"""MG analogue: multigrid V-cycles on a 1-D Poisson problem.

Like NAS MG: a fixed number of V-cycles of weighted-Jacobi smoothing,
full-weighting restriction, and linear-interpolation prolongation on the
system ``T u = f`` with ``T = tridiag(-1, 2, -1)`` (the h² scaling is
absorbed into the right-hand side, so coarsening multiplies the restricted
residual by 4).  The program reports the final residual norm and a
solution checksum.

SPMD structure: the finest-level Jacobi update is computed as a
*correction* vector ``z`` — each rank fills only its row range, a vector
all-reduce assembles it, and every rank applies it.  Coarser levels are
computed redundantly on all ranks (a standard small-scale MG practice),
so communication is a handful of vector all-reduces per cycle.  Grid
hierarchies live in flat arrays addressed through a per-level offset
table, exercising the language's array-offset arithmetic.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module mg;

const NF: i64 = $nf;           # finest grid size (power of two)
const NLEV: i64 = $nlev;       # number of levels
const NCYC: i64 = $ncyc;       # V-cycles
const STORE: i64 = $store;     # total cells across levels

var uu: real[$store];
var ff: real[$store];
var res: real[$store];
var zz: real[$nf];
var offs: i64[$nlevp1];
var sizes: i64[$nlev];

fn setup() {
    var off: i64 = 0;
    var n: i64 = NF;
    for l in 0 .. NLEV {
        offs[l] = off;
        sizes[l] = n;
        off = off + n;
        n = (n + 1) / 2;
    }
    offs[NLEV] = off;
    for i in 0 .. STORE {
        uu[i] = 0.0;
        ff[i] = 0.0;
        res[i] = 0.0;
    }
    for i in 0 .. NF {
        var t: real = real(i);
        ff[i] = sin(t * 0.21) + 0.4 * cos(t * 0.077);
    }
}

# Weighted Jacobi on rows [lo, hi) of level `l`.  With par == 1 the
# correction vector is assembled across ranks (each rank fills only its
# own rows); par == 0 marks redundant whole-level sweeps, which must not
# be summed or the correction would be multiplied by the rank count.
fn smooth(l: i64, lo: i64, hi: i64, par: i64) {
    var u: real[] = uu + offs[l];
    var f: real[] = ff + offs[l];
    var n: i64 = sizes[l];
    for i in 0 .. n {
        zz[i] = 0.0;
    }
    var w: real = 0.6666666666666667;
    for i in lo .. hi {
        if i > 0 and i < n - 1 {
            var r: real = f[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]);
            zz[i] = w * 0.5 * r;
        }
    }
    if par == 1 {
        allreduce_sum_vec(zz, n);
    }
    for i in 0 .. n {
        u[i] = u[i] + zz[i];
    }
}

fn residual(l: i64) {
    var u: real[] = uu + offs[l];
    var f: real[] = ff + offs[l];
    var r: real[] = res + offs[l];
    var n: i64 = sizes[l];
    r[0] = 0.0;
    r[n - 1] = 0.0;
    for i in 1 .. n - 1 {
        r[i] = f[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]);
    }
}

fn restrict_to(l: i64) {
    # Full weighting of the level-l residual into the level-(l+1) rhs,
    # with the factor 4 from the absorbed h^2 scaling.
    var r: real[] = res + offs[l];
    var fc: real[] = ff + offs[l + 1];
    var uc: real[] = uu + offs[l + 1];
    var nc: i64 = sizes[l + 1];
    fc[0] = 0.0;
    fc[nc - 1] = 0.0;
    uc[0] = 0.0;
    for i in 1 .. nc - 1 {
        fc[i] = r[2 * i - 1] + 2.0 * r[2 * i] + r[2 * i + 1];
        uc[i] = 0.0;
    }
    uc[nc - 1] = 0.0;
}

fn prolong_from(l: i64) {
    # Linear interpolation of the level-(l+1) correction onto level l.
    var u: real[] = uu + offs[l];
    var uc: real[] = uu + offs[l + 1];
    var nc: i64 = sizes[l + 1];
    for i in 0 .. nc - 1 {
        u[2 * i] = u[2 * i] + uc[i];
        u[2 * i + 1] = u[2 * i + 1] + 0.5 * (uc[i] + uc[i + 1]);
    }
}

fn vcycle(lo: i64, hi: i64) {
    # Descend.
    for l in 0 .. NLEV - 1 {
        if l == 0 {
            smooth(l, lo, hi, 1);
            smooth(l, lo, hi, 1);
        } else {
            smooth(l, 0, sizes[l], 0);
            smooth(l, 0, sizes[l], 0);
        }
        residual(l);
        restrict_to(l);
    }
    # Coarsest level: a few redundant sweeps everywhere.
    for s in 0 .. 8 {
        smooth(NLEV - 1, 0, sizes[NLEV - 1], 0);
    }
    # Ascend.
    var l: i64 = NLEV - 2;
    while l >= 0 {
        prolong_from(l);
        if l == 0 {
            smooth(l, lo, hi, 1);
        } else {
            smooth(l, 0, sizes[l], 0);
        }
        l = l - 1;
    }
}

fn main() {
    var rank: i64 = mpi_rank();
    var size: i64 = mpi_size();
    var lo: i64 = (rank * NF) / size;
    var hi: i64 = ((rank + 1) * NF) / size;

    setup();
    for c in 0 .. NCYC {
        vcycle(lo, hi);
    }
    residual(0);
    var rnorm: real = 0.0;
    var csum: real = 0.0;
    for i in 0 .. NF {
        rnorm = rnorm + res[i] * res[i];
        csum = csum + uu[i];
    }
    out(sqrt(rnorm));
    out(csum);
}
""")


def _params(nf: int, nlev: int, ncyc: int) -> dict:
    store, n = 0, nf
    for _ in range(nlev):
        store += n
        n = (n + 1) // 2
    return dict(nf=nf, nlev=nlev, ncyc=ncyc, store=store, nlevp1=nlev + 1)


CLASSES = {
    "T": _params(nf=17, nlev=2, ncyc=1),
    "S": _params(nf=33, nlev=3, ncyc=2),
    "W": _params(nf=65, nlev=4, ncyc=3),
    "A": _params(nf=129, nlev=5, ncyc=4),
    "C": _params(nf=257, nlev=6, ncyc=6),
}


def make(klass: str = "W") -> Workload:
    source = _SRC.substitute(**CLASSES[klass])
    return Workload(
        name=f"mg.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="baseline",
        # MG self-corrects across cycles; moderate tolerance lets a fair
        # fraction of the smoothing arithmetic go single (Figure 10: mg
        # ~84% static, ~24-28% dynamic).
        tolerances=[(0.0, 3.2e-7), (1e-7, 1e-3)],
    )
