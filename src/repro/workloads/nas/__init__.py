"""NAS Parallel Benchmark analogues for the virtual ISA.

Scaled-down reimplementations of the seven NAS benchmarks the paper
evaluates (BT, CG, EP, FT, LU, MG, SP), written in the MH mini-language.
Each keeps the numerical *algorithm* of its namesake — that is what
determines where single precision survives — while problem classes are
shrunk to interpreter scale:

========  ==========================================================
EP        embarrassingly parallel Gaussian deviates (Marsaglia polar)
CG        conjugate gradient on a sparse SPD matrix (CSR)
FT        complex FFT evolve: forward FFT, phase evolution, inverse
MG        multigrid V-cycles on a 1-D Poisson problem
BT        block-tridiagonal solver with dense 3x3 blocks
LU        SSOR sweeps on a banded system
SP        scalar pentadiagonal line solves
========  ==========================================================

Classes ``S`` (tests), ``W``, ``A``, ``C`` grow the problem size the way
the NAS classes do.  EP, CG, FT and MG are SPMD programs that also run
multi-rank (the paper's Figure 8 set); BT, LU and SP are serial.
"""

from repro.workloads.nas import bt, cg, ep, ft, lu, mg, sp

BENCHMARKS = {
    "bt": bt.make,
    "cg": cg.make,
    "ep": ep.make,
    "ft": ft.make,
    "lu": lu.make,
    "mg": mg.make,
    "sp": sp.make,
}

#: Benchmarks with MPI (multi-rank) variants, the paper's Figure 8 set.
MPI_BENCHMARKS = ("ep", "cg", "ft", "mg")


def make_nas(bench: str, klass: str = "W"):
    """Build the Workload for NAS analogue *bench* at problem class *klass*."""
    try:
        factory = BENCHMARKS[bench]
    except KeyError:
        raise KeyError(f"unknown NAS benchmark {bench!r}; have {sorted(BENCHMARKS)}")
    return factory(klass)
