"""Benchmark workloads: NAS analogues, AMG, SuperLU, and the stencil/CFD
family — all registered through the workload SDK.

All built-in workloads are written in the MH mini-language and compiled
for the virtual ISA in both double ("original") and single ("manually
converted") precision; see :mod:`repro.workloads.base` for the
runner/verifier infrastructure and the per-benchmark modules for
algorithmic notes.

Registration goes through :mod:`repro.sdk`: every built-in is a
:class:`~repro.sdk.WorkloadSpec` in the same :data:`~repro.sdk.REGISTRY`
external plugins register into, so :func:`make_workload`, the CLI, the
cluster workers, and the job service treat the two identically.  Run
``repro workloads`` for the live catalogue.
"""

from repro.sdk import REGISTRY, WorkloadSpec
from repro.workloads.base import (
    Workload,
    poke_f32,
    poke_f64,
    poke_i64,
    poke_real,
)
from repro.workloads.nas import BENCHMARKS, MPI_BENCHMARKS, make_nas
from repro.workloads import amg, superlu
from repro.workloads.stencil import heat, nekcg

_NAS_DESCRIPTIONS = {
    "bt": "block-tridiagonal solver with dense 3x3 blocks",
    "cg": "conjugate gradient on a sparse SPD matrix (CSR)",
    "ep": "embarrassingly parallel Gaussian deviates",
    "ft": "complex FFT evolve: forward, phase evolution, inverse",
    "lu": "SSOR sweeps on a banded system",
    "mg": "multigrid V-cycles on a 1-D Poisson problem",
    "sp": "scalar pentadiagonal line solves",
}


def _register_builtins() -> None:
    """Register every built-in spec (idempotent under re-import)."""
    from repro.workloads.nas import bt, cg, ep, ft, lu, mg, sp

    nas_classes = {"bt": bt, "cg": cg, "ep": ep, "ft": ft,
                   "lu": lu, "mg": mg, "sp": sp}
    specs = [
        WorkloadSpec(
            name=bench,
            factory=BENCHMARKS[bench],
            classes=tuple(nas_classes[bench].CLASSES),
            description=f"NAS analogue: {_NAS_DESCRIPTIONS[bench]}",
            mpi=bench in MPI_BENCHMARKS,
        )
        for bench in sorted(BENCHMARKS)
    ]
    specs += [
        WorkloadSpec(
            name="amg",
            factory=amg.make,
            classes=tuple(amg.CLASSES),
            description="adaptive multigrid microkernel (convergence-"
                        "verified, paper Section 3.2)",
            verify="self",
        ),
        WorkloadSpec(
            name="superlu",
            factory=superlu.make,
            classes=tuple(superlu.CLASSES),
            description="dense LU with partial pivoting on a memplus-like "
                        "matrix (threshold-verified, Section 3.3)",
            verify="self",
            kwargs=("threshold",),
        ),
        WorkloadSpec(
            name="heat",
            factory=heat.make,
            classes=tuple(heat.CLASSES),
            description="explicit finite-difference advection-diffusion "
                        "solver (stencil/CFD family)",
        ),
        WorkloadSpec(
            name="nekcg",
            factory=nekcg.make,
            classes=tuple(nekcg.CLASSES),
            description="Nekbone-style CG with a matrix-free stencil "
                        "operator (stencil/CFD family)",
            mpi=True,
        ),
    ]
    for spec in specs:
        REGISTRY.register(spec, override=True)


_register_builtins()


def make_workload(name: str, klass: str | None = None, **kwargs) -> Workload:
    """Build any registered workload by name — a built-in (NAS, ``amg``,
    ``superlu``, ``heat``, ``nekcg``) or a plugin.

    Raises a ``KeyError`` listing the registered names for an unknown
    *name*, a ``KeyError`` listing the declared classes for an unknown
    *klass*, and a ``TypeError`` for keyword arguments the workload's
    spec does not accept (only ``superlu`` takes ``threshold``).
    """
    return REGISTRY.make(name, klass, **kwargs)


__all__ = [
    "Workload",
    "poke_f32",
    "poke_f64",
    "poke_i64",
    "poke_real",
    "BENCHMARKS",
    "MPI_BENCHMARKS",
    "REGISTRY",
    "make_nas",
    "make_workload",
    "amg",
    "superlu",
    "heat",
    "nekcg",
]
