"""Benchmark workloads: NAS analogues, the AMG microkernel, SuperLU.

All workloads are written in the MH mini-language and compiled for the
virtual ISA in both double ("original") and single ("manually converted")
precision; see :mod:`repro.workloads.base` for the runner/verifier
infrastructure and the per-benchmark modules for algorithmic notes.
"""

from repro.workloads.base import (
    Workload,
    poke_f32,
    poke_f64,
    poke_i64,
    poke_real,
)
from repro.workloads.nas import BENCHMARKS, MPI_BENCHMARKS, make_nas
from repro.workloads import amg, superlu


def make_workload(name: str, klass: str = "W", **kwargs) -> Workload:
    """Build any workload by name: a NAS benchmark, ``amg``, or ``superlu``."""
    if name in BENCHMARKS:
        return make_nas(name, klass)
    if name == "amg":
        return amg.make(klass)
    if name == "superlu":
        return superlu.make(klass, **kwargs)
    raise KeyError(f"unknown workload {name!r}")


__all__ = [
    "Workload",
    "poke_f32",
    "poke_f64",
    "poke_i64",
    "poke_real",
    "BENCHMARKS",
    "MPI_BENCHMARKS",
    "make_nas",
    "make_workload",
    "amg",
    "superlu",
]
