"""SuperLU analogue (paper Section 3.3).

SuperLU's example driver factors a sparse unsymmetric system with partial
pivoting, solves it, and reports a relative error metric; the paper runs
it on the Matrix Market ``memplus`` memory-circuit matrix and sweeps the
error threshold its search accepts (their Figure 11).

This analogue performs dense LU factorization with partial pivoting on a
synthetic *memplus-like* matrix: unsymmetric, diagonally dominant enough
to be well-posed, with circuit-style row scaling spanning several orders
of magnitude (generated in-program with ``exp``/``sin`` so the setup is
ordinary candidate code).  Like the SuperLU example program, the same
source compiles to a double or a single build, and the reported metric is

    err = max_i |x_i - 1|

because the right-hand side is constructed in-program as ``b = A * ones``
— the familiar manufactured-solution residual, matching SuperLU's
``dgst04``-style relative error check.

``make(klass, threshold)`` wires the verification routine to ``err <
threshold``, which is exactly the driver script the paper wrote for its
threshold sweep.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module slu;

const N: i64 = $n;
const N2: i64 = $n2;

var amat: real[$n2];
var a0: real[$n2];
var bvec: real[$n];
var xvec: real[$n];
var piv: i64[$n];

# memplus-like synthetic circuit matrix: unsymmetric band-ish pattern,
# diagonally dominant rows, row magnitudes spread over ~3 decades.
fn build() {
    for i in 0 .. N {
        var rs: real = exp(3.0 * sin(real(i) * 0.61));
        for j in 0 .. N {
            var k: i64 = i * N + j;
            var d: i64 = i - j;
            if d < 0 {
                d = -d;
            }
            var v: real = 0.0;
            if d != 0 and d < 4 {
                v = rs * 0.3 * sin(real(k) * 0.43);
            }
            if d == N / 3 {
                v = rs * 0.15 * cos(real(k) * 0.29);
            }
            amat[k] = v;
            a0[k] = v;
        }
    }
    for i in 0 .. N {
        var rowsum: real = 0.0;
        for j in 0 .. N {
            rowsum = rowsum + abs(amat[i * N + j]);
        }
        amat[i * N + i] = rowsum + exp(3.0 * sin(real(i) * 0.61));
        a0[i * N + i] = amat[i * N + i];
    }
    # Manufactured rhs: b = A * ones, so the true solution is all ones.
    for i in 0 .. N {
        var s: real = 0.0;
        for j in 0 .. N {
            s = s + a0[i * N + j];
        }
        bvec[i] = s;
    }
}

# Dense LU factorization with partial pivoting, in place.
fn factor() {
    for k in 0 .. N {
        # pivot search in column k
        var best: real = abs(amat[k * N + k]);
        var bi: i64 = k;
        for i in k + 1 .. N {
            var v: real = abs(amat[i * N + k]);
            if best < v {
                best = v;
                bi = i;
            }
        }
        piv[k] = bi;
        if bi != k {
            for j in 0 .. N {
                var t: real = amat[k * N + j];
                amat[k * N + j] = amat[bi * N + j];
                amat[bi * N + j] = t;
            }
            var tb: real = bvec[k];
            bvec[k] = bvec[bi];
            bvec[bi] = tb;
        }
        var dinv: real = 1.0 / amat[k * N + k];
        for i in k + 1 .. N {
            var m: real = amat[i * N + k] * dinv;
            amat[i * N + k] = m;
            for j in k + 1 .. N {
                amat[i * N + j] = amat[i * N + j] - m * amat[k * N + j];
            }
            bvec[i] = bvec[i] - m * bvec[k];
        }
    }
}

fn back_substitute() {
    var i: i64 = N - 1;
    while i >= 0 {
        var s: real = bvec[i];
        for j in i + 1 .. N {
            s = s - amat[i * N + j] * xvec[j];
        }
        xvec[i] = s / amat[i * N + i];
        i = i - 1;
    }
}

fn main() {
    build();
    factor();
    back_substitute();
    # Error metric: max deviation from the manufactured solution.
    var err: real = 0.0;
    var csum: real = 0.0;
    for i in 0 .. N {
        err = max(err, abs(xvec[i] - 1.0));
        csum = csum + xvec[i];
    }
    out(err);
    out(csum);
}
""")

CLASSES = {
    "S": dict(n=12),
    "W": dict(n=20),
    "A": dict(n=28),
    "C": dict(n=40),
}

#: Error reported by the double and single builds (measured; see
#: EXPERIMENTS.md).  Thresholds for the Figure 11 sweep are chosen
#: around these anchors.
DEFAULT_THRESHOLD = 1e-3


def make(klass: str = "W", threshold: float = DEFAULT_THRESHOLD) -> Workload:
    n = CLASSES[klass]["n"]
    source = _SRC.substitute(n=n, n2=n * n)

    def self_check(values) -> bool:
        # The driver script's predicate: reported error under the bound.
        return len(values) == 2 and float(values[0]) < threshold

    w = Workload(
        name=f"superlu.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="self",
        self_check=self_check,
    )
    w.threshold = threshold
    return w
