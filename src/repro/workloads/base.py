"""Workload infrastructure.

A :class:`Workload` bundles everything the search and the benchmark
harness need for one benchmark at one problem class:

* the original double-precision program (``real`` = f64),
* the "manually converted" single-precision build (``real`` = f32, the
  same source — the compiler flag plays the role of the paper's Fortran
  translation script),
* a deterministic runner (fixed seed, step budget),
* the user-provided verification routine, in one of two styles:

  - ``baseline``: outputs must match the double-precision run within a
    benchmark-specific tolerance (NAS-style epsilon verification);
  - ``self``: a predicate over the outputs themselves (e.g. "the reported
    residual/error metric is below a threshold" — the SuperLU driver
    script and the AMG convergence check).

Array data that is awkward to express as source literals (sparse
matrices, FFT inputs) is generated in NumPy and *poked* directly into the
program's data image through the symbol table, in the precision of each
build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.binary.model import Program
from repro.compiler import CompileOptions, compile_program
from repro.fpbits.ieee import double_to_bits, single_to_bits
from repro.mpi.runner import MpiResult, MultiRankRunner
from repro.vm.machine import ExecResult, run_program
from repro.vm.outputs import outputs_close


def poke_f64(program: Program, name: str, values) -> None:
    """Write doubles into global array *name* of *program*."""
    sym = program.globals[name]
    if len(values) > sym.words:
        raise ValueError(f"{name}: {len(values)} values > {sym.words} words")
    for k, v in enumerate(values):
        program.data_image[sym.addr + k] = double_to_bits(float(v))


def poke_f32(program: Program, name: str, values) -> None:
    """Write singles (low word of each cell) into global array *name*."""
    sym = program.globals[name]
    if len(values) > sym.words:
        raise ValueError(f"{name}: {len(values)} values > {sym.words} words")
    for k, v in enumerate(values):
        program.data_image[sym.addr + k] = single_to_bits(float(v))


def poke_i64(program: Program, name: str, values) -> None:
    """Write integers into global array *name*."""
    sym = program.globals[name]
    if len(values) > sym.words:
        raise ValueError(f"{name}: {len(values)} values > {sym.words} words")
    for k, v in enumerate(values):
        program.data_image[sym.addr + k] = int(v) & 0xFFFFFFFFFFFFFFFF


def poke_real(program: Program, real_type: str, name: str, values) -> None:
    if real_type == "f64":
        poke_f64(program, name, values)
    else:
        poke_f32(program, name, values)


@dataclass
class Workload:
    """One benchmark instance (see module docstring)."""

    name: str
    sources: list
    klass: str = "W"
    #: ``data_init(program, real_type)`` pokes input data into a build.
    data_init: Callable | None = None
    #: verification style: "baseline" or "self"
    verify_mode: str = "baseline"
    rel_tol: float = 1e-9
    abs_tol: float = 0.0
    #: optional per-output (rel, abs) tolerance pairs; entries of None fall
    #: back to (rel_tol, abs_tol).  NAS verification routines weight their
    #: outputs differently (a residual norm is judged much more strictly
    #: than a checksum), and so do ours.
    tolerances: list | None = None
    #: for verify_mode="self": predicate over decoded output values
    self_check: Callable | None = None
    seed: int = 0x9E3779B97F4A7C15
    stack_words: int = 8192
    max_steps: int = 50_000_000
    transcendentals: str = "instruction"

    _program: Program | None = field(default=None, repr=False)
    _program_single: Program | None = field(default=None, repr=False)
    _baseline: ExecResult | None = field(default=None, repr=False)
    _profile: dict | None = field(default=None, repr=False)

    # -- builds ------------------------------------------------------------------

    def _build(self, real_type: str) -> Program:
        options = CompileOptions(
            name=f"{self.name}.{self.klass}" + ("" if real_type == "f64" else "-sp"),
            real_type=real_type,
            transcendentals=self.transcendentals,
        )
        program = compile_program(self.sources, options)
        if self.data_init is not None:
            self.data_init(program, real_type)
        return program

    @property
    def program(self) -> Program:
        """The original double-precision executable."""
        if self._program is None:
            self._program = self._build("f64")
        return self._program

    @property
    def program_single(self) -> Program:
        """The manually converted single-precision executable."""
        if self._program_single is None:
            self._program_single = self._build("f32")
        return self._program_single

    # -- execution ------------------------------------------------------------------

    def run(self, program: Program | None = None) -> ExecResult:
        """Run a build (default: the original) deterministically."""
        return run_program(
            program if program is not None else self.program,
            stack_words=self.stack_words,
            seed=self.seed,
            max_steps=self.max_steps,
        )

    def vm_params(self) -> dict:
        """The exact VM parameters :meth:`run` uses.

        A persistent :class:`repro.vm.Machine` constructed with these
        reproduces :meth:`run` bit-for-bit; the evaluators rely on that
        when they substitute the Machine for per-run VM construction.
        """
        return {
            "stack_words": self.stack_words,
            "seed": self.seed,
            "max_steps": self.max_steps,
        }

    def run_mpi(self, size: int, program: Program | None = None) -> MpiResult:
        """Run a build at *size* ranks."""
        runner = MultiRankRunner(
            program if program is not None else self.program,
            size,
            stack_words=self.stack_words,
            seed=self.seed,
            max_steps=self.max_steps,
        )
        return runner.run()

    def baseline(self) -> ExecResult:
        """Cached double-precision reference run."""
        if self._baseline is None:
            self._baseline = self.run()
        return self._baseline

    def profile(self) -> dict:
        """Cached per-address execution counts of the original program."""
        if self._profile is None:
            result = run_program(
                self.program,
                stack_words=self.stack_words,
                seed=self.seed,
                max_steps=self.max_steps,
                profile=True,
            )
            self._profile = result.exec_counts
        return self._profile

    # -- verification ------------------------------------------------------------------

    def verify(self, result: ExecResult) -> bool:
        """The user-provided verification routine."""
        values = result.values()
        if any(v != v for v in values if isinstance(v, float)):
            return False  # NaN anywhere fails (the sentinel at work)
        if self.verify_mode == "self":
            assert self.self_check is not None, "self-verifying workload needs a check"
            return bool(self.self_check(values))
        reference = self.baseline().values()
        if self.tolerances is None:
            return outputs_close(
                values, reference, rel_tol=self.rel_tol, abs_tol=self.abs_tol
            )
        if len(values) != len(reference):
            return False
        import math

        for k, (x, y) in enumerate(zip(values, reference)):
            pair = self.tolerances[k] if k < len(self.tolerances) else None
            rel, abs_ = pair if pair is not None else (self.rel_tol, self.abs_tol)
            if isinstance(x, int) and isinstance(y, int):
                if abs(x - y) > abs_:
                    return False
                continue
            x, y = float(x), float(y)
            if x != x or y != y:
                return False
            if not math.isclose(x, y, rel_tol=rel, abs_tol=abs_):
                return False
        return True
