"""Explicit finite-difference heat/advection solver.

The model problem of the explicit-FD CFD papers: the 1-D
advection–diffusion equation

    u_t + a u_x = nu u_xx,    u(0) = u(1) = 0,

marched with first-order upwind advection and second-order central
diffusion under a stable time step (the tighter of the CFL and
diffusion limits, computed in-program).  The initial condition is a
Gaussian pulse with a superposed ripple, built with ``exp``/``sin`` so
the setup is ordinary candidate arithmetic, like the NAS analogues.

The finite-difference operators live in a separate ``fdops`` module so
the search has a multi-module structure to descend; the time loop calls
one fused update sweep per step plus a buffer swap.

Verification is NAS-style (baseline): the reported solution statistics
— the L2 norm, the conserved total mass (advection–diffusion with
homogeneous Dirichlet boundaries only loses mass through the boundary
fluxes, which the double and single builds must agree on), the peak
value, and a phase-weighted checksum — must match the double run under
per-output thresholds.  The thresholds come from the explicit-FD
turbulent-flow study (PAPERS.md): a dissipative scheme damps rounding,
so statistic errors around 1e-7 relative are accepted and the whole
stencil survives single precision — the tolerant end of the family,
opposite nekcg's CG recurrence.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_FDOPS = Template("""
module fdops;

# One explicit update sweep: first-order upwind advection (a > 0) plus
# central diffusion.  cfl = a*dt/dx, dif = nu*dt/dx^2.
fn sweep(u: real[], un: real[], n: i64, cfl: real, dif: real) {
    un[0] = 0.0;
    un[n - 1] = 0.0;
    for i in 1 .. n - 1 {
        var adv: real = cfl * (u[i] - u[i - 1]);
        var lap: real = u[i + 1] - 2.0 * u[i] + u[i - 1];
        un[i] = u[i] - adv + dif * lap;
    }
}

fn copyv(dst: real[], src: real[], n: i64) {
    for i in 0 .. n {
        dst[i] = src[i];
    }
}

fn l2norm(u: real[], n: i64, dx: real) -> real {
    var s: real = 0.0;
    for i in 0 .. n {
        s = s + u[i] * u[i];
    }
    return sqrt(s * dx);
}

fn mass(u: real[], n: i64, dx: real) -> real {
    var s: real = 0.0;
    for i in 0 .. n {
        s = s + u[i];
    }
    return s * dx;
}

fn vmax(u: real[], n: i64) -> real {
    var m: real = u[0];
    for i in 1 .. n {
        m = max(m, u[i]);
    }
    return m;
}
""")

_MAIN = Template("""
module heat;

const N: i64 = $n;
const NSTEP: i64 = $nstep;

var uu: real[$n];
var un: real[$n];
var avel: real = 1.0;
var nu: real = 0.02;

fn setup(dx: real) {
    uu[0] = 0.0;
    uu[N - 1] = 0.0;
    for i in 1 .. N - 1 {
        var x: real = real(i) * dx;
        var d: real = x - 0.3;
        var pulse: real = exp(-(d * d) / 0.005);
        var ripple: real = 0.05 * sin(12.566370614359172 * x);
        uu[i] = pulse + ripple * pulse;
    }
}

fn main() {
    var dx: real = 1.0 / real(N - 1);
    # Stable step: the tighter of the advective CFL and diffusion limits.
    var dt: real = min(0.5 * dx / avel, 0.25 * dx * dx / nu);
    var cfl: real = avel * dt / dx;
    var dif: real = nu * dt / (dx * dx);

    setup(dx);
    for s in 0 .. NSTEP {
        sweep(uu, un, N, cfl, dif);
        copyv(uu, un, N);
    }

    out(l2norm(uu, N, dx));
    out(mass(uu, N, dx));
    out(vmax(uu, N));
    var csum: real = 0.0;
    for i in 0 .. N {
        csum = csum + uu[i] * sin(real(i) * 0.17);
    }
    out(csum);
}
""")

CLASSES = {
    # T exists for CI smoke and the end-to-end SDK tests: a full
    # instruction-level search finishes in seconds.
    "T": dict(n=16, nstep=6),
    "S": dict(n=32, nstep=12),
    "W": dict(n=64, nstep=24),
    "A": dict(n=128, nstep=48),
    "C": dict(n=256, nstep=96),
}


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    return Workload(
        name=f"heat.{klass}",
        sources=[_MAIN.substitute(**params), _FDOPS.substitute()],
        klass=klass,
        verify_mode="baseline",
        # Per-output (rel, abs) thresholds, following the explicit-FD
        # turbulent-flow paper: the dissipative scheme damps rounding, so
        # a fully single-precision march stays well inside them (measured
        # worst case ~6e-8 on the norm, >3x margin) — the stencil family's
        # counterpoint to nekcg's CG sensitivity — while any narrower
        # width, or a perturbed scheme, lands far outside.
        tolerances=[(1e-6, 2e-7), (1e-6, 2e-7), (1e-6, 1e-9), (1e-4, 1e-4)],
    )
