"""Nekbone-style CG with a matrix-free stencil operator.

Nekbone distils Nek5000 to its computational core: conjugate-gradient
iterations whose matrix-vector product is applied element-locally (never
assembled) and whose reductions are global sums.  The mixed-precision
case study on Nekbone shows exactly the split this analogue reproduces:
the one-shot setup and the preconditioner-ish vector updates tolerate
single precision while the CG recurrence is sensitive.

This analogue keeps Nekbone's kernel vocabulary — ``ax`` (matrix-free
operator application), ``glsc3`` (weighted global dot product),
``add2s1``/``add2s2`` (scaled vector updates) — in a separate ``nekops``
module, applying the 1-D Poisson stencil ``(Au)_i = 2u_i - u_{i-1} -
u_{i+1}`` plus a mass-like diagonal shift, with homogeneous Dirichlet
boundaries.

SPMD structure mirrors the NAS CG analogue (and Nekbone's gather–
scatter): rows are partitioned across ranks, ``ax`` fills only the local
rows and a vector all-reduce assembles the product; ``glsc3`` combines
per-rank partial sums with a scalar all-reduce.  At one rank every
collective is the identity.

Verification reports the true residual ``||b - A x||`` (recomputed from
scratch), the recurrence residual, and a solution checksum, judged like
CG: residuals near double accuracy — the recurrence stalls visibly when
its arithmetic is single — and the checksum loosely.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_NEKOPS = Template("""
module nekops;

# Nekbone's glsc3: weighted inner product with a global sum.  The
# weight array plays the role of the spectral-element mass/multiplicity
# vector; partial sums over the local row range combine in one scalar
# all-reduce.
fn glsc3(a: real[], b: real[], w: real[], lo: i64, hi: i64) -> real {
    var s: real = 0.0;
    for i in lo .. hi {
        s = s + a[i] * b[i] * w[i];
    }
    return allreduce_sum(s);
}

# add2s1: a = c1*a + b  (Nekbone's naming)
fn add2s1(a: real[], b: real[], c1: real, n: i64) {
    for i in 0 .. n {
        a[i] = c1 * a[i] + b[i];
    }
}

# add2s2: a = a + c1*b
fn add2s2(a: real[], b: real[], c1: real, n: i64) {
    for i in 0 .. n {
        a[i] = a[i] + c1 * b[i];
    }
}

fn vsum(a: real[], n: i64) -> real {
    var s: real = 0.0;
    for i in 0 .. n {
        s = s + a[i];
    }
    return s;
}
""")

_MAIN = Template("""
module nekcg;

const N: i64 = $n;
const NITER: i64 = $niter;

var ww: real[$n];
var bb: real[$n];
var xx: real[$n];
var rr: real[$n];
var pp: real[$n];
var qq: real[$n];

# Matrix-free operator: 1-D Poisson stencil plus a mass-like diagonal
# shift, homogeneous Dirichlet rows at the ends.  Each rank fills its
# own rows; the vector all-reduce assembles the product (Nekbone's
# gather-scatter analogue).
fn ax(u: real[], w: real[], lo: i64, hi: i64) {
    for i in 0 .. N {
        w[i] = 0.0;
    }
    for i in lo .. hi {
        if i == 0 or i == N - 1 {
            w[i] = u[i];
        } else {
            w[i] = 2.1 * u[i] - u[i - 1] - u[i + 1];
        }
    }
    allreduce_sum_vec(w, N);
}

fn setup() {
    for i in 0 .. N {
        ww[i] = 1.0;
        xx[i] = 0.0;
        bb[i] = sin(real(i) * 0.23) + 0.4 * cos(real(i) * 0.071);
    }
    bb[0] = 0.0;
    bb[N - 1] = 0.0;
}

fn main() {
    var rank: i64 = mpi_rank();
    var size: i64 = mpi_size();
    var lo: i64 = (rank * N) / size;
    var hi: i64 = ((rank + 1) * N) / size;

    setup();
    for i in 0 .. N {
        rr[i] = bb[i];
        pp[i] = bb[i];
    }
    var rho: real = glsc3(rr, rr, ww, lo, hi);
    for it in 0 .. NITER {
        ax(pp, qq, lo, hi);
        var alpha: real = rho / glsc3(pp, qq, ww, lo, hi);
        add2s2(xx, pp, alpha, N);
        add2s2(rr, qq, -alpha, N);
        var rho2: real = glsc3(rr, rr, ww, lo, hi);
        var beta: real = rho2 / rho;
        rho = rho2;
        add2s1(pp, rr, beta, N);
    }
    # True residual ||b - A x|| recomputed from scratch, the recurrence
    # residual, and a solution checksum (NAS-style verification values).
    ax(xx, qq, lo, hi);
    var tr: real = 0.0;
    for i in 0 .. N {
        var d: real = bb[i] - qq[i];
        tr = tr + d * d;
    }
    out(sqrt(tr));
    out(sqrt(rho));
    out(vsum(xx, N));
}
""")

CLASSES = {
    # T: full instruction-level search in seconds (CI smoke, SDK tests).
    "T": dict(n=12, niter=2),
    "S": dict(n=24, niter=8),
    "W": dict(n=48, niter=16),
    "A": dict(n=96, niter=24),
    "C": dict(n=192, niter=32),
}


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    return Workload(
        name=f"nekcg.{klass}",
        sources=[_MAIN.substitute(**params), _NEKOPS.substitute()],
        klass=klass,
        verify_mode="baseline",
        # Like CG: residuals judged near double accuracy (the recurrence
        # is the sensitive region), checksum loose so setup passes.
        tolerances=[(0.0, 1e-9), (0.0, 1e-8), (1e-5, 1e-4)],
    )
