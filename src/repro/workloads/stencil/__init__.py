"""Stencil / CFD workload family.

The first workload family added after the seed set, and the first
registered through :mod:`repro.sdk` itself.  Both members are the
finite-difference kernels the mixed-precision literature converges on
(the Nekbone case study and the explicit finite-difference
turbulent-flow papers in PAPERS.md):

``heat``
    An explicit finite-difference advection–diffusion solver (upwind
    advection, central diffusion, Dirichlet boundaries) — the canonical
    time-marching stencil loop.  Serial.
``nekcg``
    A Nekbone-style conjugate-gradient solve with a matrix-free stencil
    operator, written around Nekbone's own kernel vocabulary (``ax``,
    ``glsc3``, ``add2s1``, ``add2s2``).  SPMD like the NAS CG analogue:
    row-partitioned matvec assembled by a vector all-reduce, dot
    products by scalar all-reduces.

Verification follows the CFD papers' practice: solution statistics
(norms, conserved integrals, extrema) compared against the
double-precision run under per-output thresholds, strict on residual
quantities and loose on bulk checksums.
"""

from repro.workloads.stencil import heat, nekcg

__all__ = ["heat", "nekcg"]
