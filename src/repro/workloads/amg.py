"""AMG microkernel analogue (paper Section 3.2).

The ASC Sequoia AMG microkernel exercises the critical sections of an
algebraic multigrid solver; the paper's end-to-end demonstration is that
the *entire* kernel can run in single precision because the adaptive
iteration corrects numerical inaccuracy, yielding a ~2X speedup after
manual conversion.

This analogue is a multigrid relaxation kernel over a 1-D Laplacian with
an *adaptive* outer loop: it runs V-cycles until the residual norm drops
below a tolerance (or a cycle cap is hit), then reports the achieved
residual and the number of cycles.  Verification is the kernel's own
convergence check — the residual must be below the tolerance — so the
whole-program single version passes too, possibly after a few extra
cycles, exactly the property the paper exploits.
"""

from __future__ import annotations

from string import Template

from repro.workloads.base import Workload

_SRC = Template("""
module amg;

const NF: i64 = $nf;
const NLEV: i64 = $nlev;
const MAXCYC: i64 = $maxcyc;
const STORE: i64 = $store;

var uu: real[$store];
var ff: real[$store];
var res: real[$store];
var offs: i64[$nlevp1];
var sizes: i64[$nlev];
var tol: real = $tol;

fn setup() {
    var off: i64 = 0;
    var n: i64 = NF;
    for l in 0 .. NLEV {
        offs[l] = off;
        sizes[l] = n;
        off = off + n;
        n = (n + 1) / 2;
    }
    offs[NLEV] = off;
    for i in 0 .. STORE {
        uu[i] = 0.0;
        ff[i] = 0.0;
        res[i] = 0.0;
    }
    for i in 0 .. NF {
        var t: real = real(i);
        ff[i] = sin(t * 0.17) + 0.3 * cos(t * 0.059);
    }
}

fn smooth(l: i64, sweeps: i64) {
    var u: real[] = uu + offs[l];
    var f: real[] = ff + offs[l];
    var n: i64 = sizes[l];
    var w: real = 0.6666666666666667;
    for s in 0 .. sweeps {
        var prev: real = u[0];
        for i in 1 .. n - 1 {
            var r: real = f[i] - (2.0 * u[i] - prev - u[i + 1]);
            prev = u[i];
            u[i] = u[i] + w * 0.5 * r;
        }
    }
}

fn residual(l: i64) -> real {
    var u: real[] = uu + offs[l];
    var f: real[] = ff + offs[l];
    var r: real[] = res + offs[l];
    var n: i64 = sizes[l];
    r[0] = 0.0;
    r[n - 1] = 0.0;
    var s: real = 0.0;
    for i in 1 .. n - 1 {
        var d: real = f[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]);
        r[i] = d;
        s = s + d * d;
    }
    return sqrt(s);
}

fn restrict_to(l: i64) {
    var r: real[] = res + offs[l];
    var fc: real[] = ff + offs[l + 1];
    var uc: real[] = uu + offs[l + 1];
    var nc: i64 = sizes[l + 1];
    fc[0] = 0.0;
    fc[nc - 1] = 0.0;
    for i in 0 .. nc {
        uc[i] = 0.0;
    }
    for i in 1 .. nc - 1 {
        fc[i] = r[2 * i - 1] + 2.0 * r[2 * i] + r[2 * i + 1];
    }
}

fn prolong_from(l: i64) {
    var u: real[] = uu + offs[l];
    var uc: real[] = uu + offs[l + 1];
    var nc: i64 = sizes[l + 1];
    for i in 0 .. nc - 1 {
        u[2 * i] = u[2 * i] + uc[i];
        u[2 * i + 1] = u[2 * i + 1] + 0.5 * (uc[i] + uc[i + 1]);
    }
}

fn vcycle() {
    for l in 0 .. NLEV - 1 {
        smooth(l, 2);
        residual(l);
        restrict_to(l);
    }
    smooth(NLEV - 1, 10);
    var l: i64 = NLEV - 2;
    while l >= 0 {
        prolong_from(l);
        smooth(l, 1);
        l = l - 1;
    }
}

fn main() {
    setup();
    var cycles: i64 = 0;
    var rn: real = residual(0);
    # Adaptive iteration: the multigrid hierarchy keeps correcting until
    # the convergence criterion is met, regardless of working precision.
    while rn > tol and cycles < MAXCYC {
        vcycle();
        rn = residual(0);
        cycles = cycles + 1;
    }
    out(rn);
    out(cycles);
    var csum: real = 0.0;
    for i in 0 .. NF {
        csum = csum + uu[i];
    }
    out(csum);
}
""")


def _params(nf: int, nlev: int, maxcyc: int, tol: float) -> dict:
    store, n = 0, nf
    for _ in range(nlev):
        store += n
        n = (n + 1) // 2
    return dict(nf=nf, nlev=nlev, maxcyc=maxcyc, store=store,
                nlevp1=nlev + 1, tol=repr(tol))


CLASSES = {
    "S": _params(nf=33, nlev=3, maxcyc=16, tol=3e-3),
    "W": _params(nf=65, nlev=4, maxcyc=16, tol=1e-3),
    "A": _params(nf=129, nlev=5, maxcyc=24, tol=5e-4),
    "C": _params(nf=257, nlev=6, maxcyc=32, tol=5e-4),
}


def make(klass: str = "W") -> Workload:
    params = CLASSES[klass]
    source = _SRC.substitute(**params)
    tol = float(params["tol"])
    maxcyc = params["maxcyc"]

    def self_check(values) -> bool:
        # values: [residual, cycles, checksum]; the kernel verifies itself
        # by convergence, like the AMG microkernel's built-in check.
        return (
            len(values) == 3
            and float(values[0]) <= tol
            and int(values[1]) <= maxcyc
        )

    return Workload(
        name=f"amg.{klass}",
        sources=[source],
        klass=klass,
        verify_mode="self",
        self_check=self_check,
    )
