"""Ablations of the design choices the paper calls out.

* **Search optimizations** (Section 2.2): binary partitioning of failed
  aggregates and profile-count prioritization.  Measured as the number of
  configurations the search evaluates (and wall time) with each
  optimization disabled.
* **Redundant-check elimination** (Section 2.5, "static data flow
  analysis could improve overheads"): the intra-block analysis that lets
  double-precision guards skip registers proven clean.  Measured as
  instrumented-run cycles with and without the optimization.
* **Transcendental special handling** (Section 2.5): transcendentals as
  dedicated replaceable instructions versus calls into a compiled math
  library whose internals must be searched piecemeal.
"""

from __future__ import annotations

import time

from repro.config.generator import build_tree
from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.search.bfs import SearchEngine, SearchOptions
from repro.search.evaluator import Evaluator
from repro.workloads import make_nas


def search_optimizations(bench: str = "mg", klass: str = "W") -> list[dict]:
    """Configs tested / wall time with each search optimization toggled."""
    rows = []
    variants = [
        ("full", SearchOptions()),
        ("no-partition", SearchOptions(partition=False)),
        ("no-prioritize", SearchOptions(prioritize=False)),
        ("neither", SearchOptions(partition=False, prioritize=False)),
        ("stop-at-blocks", SearchOptions(stop_level="block")),
        ("stop-at-functions", SearchOptions(stop_level="function")),
    ]
    for label, options in variants:
        workload = make_nas(bench, klass)
        start = time.perf_counter()
        result = SearchEngine(workload, options).run()
        rows.append(
            {
                "variant": label,
                "benchmark": f"{bench}.{klass}",
                "tested": result.configs_tested,
                "static_pct": round(result.static_pct * 100.0, 1),
                "dynamic_pct": round(result.dynamic_pct * 100.0, 1),
                "final": "pass" if result.final_verified else "fail",
                "seconds": round(time.perf_counter() - start, 1),
            }
        )
    return rows


def check_elimination(bench: str = "cg", klass: str = "W") -> list[dict]:
    """Cycles with/without redundant-check elimination, in two scenarios:
    the base-case all-double instrumentation (where every elided check is
    pure savings) and a half-single mixed configuration (where the
    single-policy instructions keep re-dirtying registers).  The
    instrumented programs must behave identically either way."""
    workload = make_nas(bench, klass)
    tree = build_tree(workload.program)

    half = Config.all_double(tree)
    for index, node in enumerate(tree.instructions()):
        if index % 2 == 0:
            half.set(node.node_id, "s")

    rows = []
    for scenario, config, mode in (
        ("all-double", Config.all_double(tree), "all"),
        ("half-single", half, "auto"),
    ):
        plain = instrument(workload.program, config, mode=mode, optimize_checks=False)
        optimized = instrument(workload.program, config, mode=mode, optimize_checks=True)
        run_plain = workload.run(plain.program)
        run_opt = workload.run(optimized.program)
        rows.append(
            {
                "benchmark": f"{bench}.{klass}",
                "scenario": scenario,
                "identical_outputs": run_plain.outputs == run_opt.outputs,
                "cycles_plain": run_plain.cycles,
                "cycles_optimized": run_opt.cycles,
                "saving_pct": round(100.0 * (1 - run_opt.cycles / run_plain.cycles), 1),
                "checks_skipped": optimized.stats.checks_skipped,
            }
        )
    return rows


_TRANSC_SRC = """
module tr;
const N: i64 = 300;

fn main() {
    var s: real = 0.0;
    for i in 0 .. N {
        var x: real = 0.001 * real(i);
        s = s + sin(x) * cos(x) + log(1.0 + exp(-x));
    }
    out(s);
}
"""

_MLIB_SRC = """
module mhlib;

const PI: f64 = 3.14159265358979324;

# Range-reduced Taylor implementations: ordinary candidate arithmetic,
# the stand-in for libm internals the paper says resist replacement.
fn mh_sin(x: real) -> real {
    var y: real = x;
    var twopi: real = 6.28318530717958648;
    var k: i64 = i64(y / twopi);
    y = y - real(k) * twopi;
    var y2: real = y * y;
    var term: real = y;
    var acc: real = y;
    for n in 0 .. 7 {
        var d: real = real((2 * n + 2) * (2 * n + 3));
        term = -term * y2 / d;
        acc = acc + term;
    }
    return acc;
}

fn mh_cos(x: real) -> real {
    var y: real = x;
    var twopi: real = 6.28318530717958648;
    var k: i64 = i64(y / twopi);
    y = y - real(k) * twopi;
    var y2: real = y * y;
    var term: real = 1.0;
    var acc: real = 1.0;
    for n in 0 .. 7 {
        var d: real = real((2 * n + 1) * (2 * n + 2));
        term = -term * y2 / d;
        acc = acc + term;
    }
    return acc;
}

fn mh_exp(x: real) -> real {
    # exp(x) = 2^k * exp(r) with |r| <= 0.5 ln 2 would need bit tricks;
    # this scaled-squaring version stays in plain arithmetic.
    var y: real = x / 16.0;
    var acc: real = 1.0;
    var term: real = 1.0;
    for n in 0 .. 10 {
        term = term * y / real(n + 1);
        acc = acc + term;
    }
    for s in 0 .. 4 {
        acc = acc * acc;
    }
    return acc;
}

fn mh_log(x: real) -> real {
    # atanh series around 1 with multiplicative range reduction.
    var y: real = x;
    var shift: real = 0.0;
    var ln2: real = 0.693147180559945309;
    while y > 1.5 {
        y = y * 0.5;
        shift = shift + ln2;
    }
    while y < 0.75 {
        y = y * 2.0;
        shift = shift - ln2;
    }
    var u: real = (y - 1.0) / (y + 1.0);
    var u2: real = u * u;
    var acc: real = 0.0;
    var term: real = u;
    for n in 0 .. 8 {
        acc = acc + term / real(2 * n + 1);
        term = term * u2;
    }
    return shift + 2.0 * acc;
}
"""


def transcendental_handling() -> list[dict]:
    """Special handling (dedicated opcodes) vs. library implementation."""
    from repro.workloads.base import Workload

    rows = []
    for label, sources, mode in (
        ("instruction", [_TRANSC_SRC], "instruction"),
        ("library", [_TRANSC_SRC, _MLIB_SRC], "library"),
    ):
        workload = Workload(
            name=f"transc-{label}",
            sources=sources,
            klass="W",
            verify_mode="baseline",
            rel_tol=1e-7,
            abs_tol=1e-6,
            transcendentals=mode,
        )
        result = SearchEngine(workload, SearchOptions()).run()
        rows.append(
            {
                "variant": label,
                "candidates": result.candidates,
                "tested": result.configs_tested,
                "static_pct": round(result.static_pct * 100.0, 1),
                "dynamic_pct": round(result.dynamic_pct * 100.0, 1),
                "final": "pass" if result.final_verified else "fail",
            }
        )
    return rows


def snippet_streamlining(benchmarks=("ep", "cg", "ft", "mg"), klass: str = "A") -> list[dict]:
    """Section 2.5: "we could reduce the runtime overhead by streamlining
    the machine code that is emitted, in order to produce more compact and
    efficient snippets."  Quantifies the effect: base-case overhead with
    the standard save/restore snippets versus streamlined snippets (the
    scratch save/restore statically proven unnecessary and elided)."""
    rows = []
    for bench in benchmarks:
        workload = make_nas(bench, klass)
        base = workload.baseline()
        tree = build_tree(workload.program)
        config = Config.all_double(tree)
        plain = instrument(workload.program, config, mode="all")
        lean = instrument(workload.program, config, mode="all", streamline=True)
        run_plain = workload.run(plain.program)
        run_lean = workload.run(lean.program)
        assert run_plain.outputs == base.outputs == run_lean.outputs
        rows.append(
            {
                "benchmark": f"{bench}.{klass}",
                "overhead_standard": f"{run_plain.cycles / base.cycles:.2f}X",
                "overhead_streamlined": f"{run_lean.cycles / base.cycles:.2f}X",
                "saves_elided": lean.stats.saves_elided,
                "_plain": run_plain.cycles / base.cycles,
                "_lean": run_lean.cycles / base.cycles,
            }
        )
    return rows
