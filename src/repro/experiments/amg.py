"""Section 3.2: the AMG microkernel end-to-end experiment.

The paper's three findings:

1. the automatic system verifies that the *entire* kernel can run in
   single precision (the adaptive multigrid iteration corrects rounding);
2. the analysis overhead on this benchmark is low (1.2X in the paper);
3. manually converting the whole kernel and "recompiling" (here: the
   ``real = f32`` build) yields a large speedup — 175.48s -> 95.25s,
   nearly 2X, in the paper.
"""

from __future__ import annotations

from repro.config.generator import build_tree
from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.search.bfs import SearchEngine, SearchOptions
from repro.workloads import amg as amg_workload


def run(klass: str = "A") -> dict:
    workload = amg_workload.make(klass)
    base = workload.baseline()
    tree = build_tree(workload.program)

    # 1. Whole-kernel single-precision configuration verifies.
    all_single = instrument(workload.program, Config.all_single(tree))
    single_run = workload.run(all_single.program)
    whole_kernel_ok = workload.verify(single_run)

    # 2. Analysis overhead: the instrumented all-single run vs original.
    analysis_overhead = single_run.cycles / base.cycles

    # 3. Manual conversion speedup: the f32 build vs the f64 build.
    manual = workload.run(workload.program_single)
    speedup = base.cycles / manual.cycles

    # The automatic search should discover the whole-kernel replacement
    # almost immediately (module-level configuration passes).
    search = SearchEngine(workload, SearchOptions()).run()

    return {
        "benchmark": workload.name,
        "whole_kernel_single_passes": whole_kernel_ok,
        "analysis_overhead": f"{analysis_overhead:.2f}X",
        "manual_speedup": f"{speedup:.2f}X",
        "search_configs_tested": search.configs_tested,
        "search_static_pct": round(search.static_pct * 100.0, 1),
        "search_final": "pass" if search.final_verified else "fail",
        "base_cycles": base.cycles,
        "single_cycles": manual.cycles,
        "_raw_overhead": analysis_overhead,
        "_raw_speedup": speedup,
    }


#: Paper values for comparison.
PAPER = {"analysis_overhead": 1.2, "manual_speedup": 175.48 / 95.25}
