"""Experiment drivers: one module per table/figure of the paper.

========  ==========================================================
fig8      NAS MPI scaling of instrumentation overhead (EP CG FT MG
          at 1/2/4/8 ranks)
fig9      NAS overhead table (ep/cg/ft/mg at two classes)
fig10     NAS automatic-search results table (7 benchmarks x 2
          classes: candidates, configs tested, static %, dynamic %,
          final verification)
fig11     SuperLU error-threshold sweep (static %, dynamic %, final
          error per threshold)
amg       AMG microkernel: whole-kernel replacement, analysis
          overhead, converted speedup
ablation  Search-optimization and engine ablations (Section 2.2
          optimizations, Section 2.5 future-work features)
guided    Guided-vs-unguided search: evaluations saved by the
          shadow-value analysis, with identical final configs
resume    Checkpoint/resume differential: interrupted-and-resumed and
          warm-started campaigns vs the uninterrupted reference
========  ==========================================================

Every driver returns plain data structures (lists of row dicts) and has
a ``format_*`` helper that renders the paper-style table; the benchmark
harness under ``benchmarks/`` and the examples call these.
"""

from repro.experiments import (
    ablation,
    amg,
    fig8,
    fig9,
    fig10,
    fig11,
    guided,
    resume,
)
from repro.experiments.tables import format_table

__all__ = [
    "ablation", "amg", "fig8", "fig9", "fig10", "fig11", "guided", "resume",
    "format_table",
]
