"""Figure 9: base-case instrumentation overhead per benchmark/class.

Replaces *all* floating-point instructions with double-precision snippets
(mode="all", including guarded moves) — a transformation that does not
change any result bit — and reports the cycle ratio between the
instrumented and original executables.  The paper reports 3.4X-14.7X on
ep/cg/ft/mg at classes A and C.

Also performs the Section 3.1 correctness checks along the way:

* the all-double instrumented run is **bit-for-bit identical** to the
  original;
* the all-single instrumented run is **bit-for-bit identical** to the
  manually converted (``real = f32``) build.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.generator import build_tree
from repro.config.model import Config
from repro.fpbits.replace import is_replaced, replaced_single_bits
from repro.instrument.engine import instrument
from repro.workloads import make_nas

BENCHMARKS = ("ep", "cg", "ft", "mg")
CLASSES = ("A", "C")


@dataclass(slots=True)
class OverheadResult:
    benchmark: str
    klass: str
    base_cycles: int
    instrumented_cycles: int
    overhead: float
    bit_identical: bool
    growth: float


def measure_overhead(bench: str, klass: str) -> OverheadResult:
    """Overhead of all-double snippets on one benchmark/class."""
    workload = make_nas(bench, klass)
    base = workload.baseline()
    tree = build_tree(workload.program)
    instrumented = instrument(workload.program, Config.all_double(tree), mode="all")
    run = workload.run(instrumented.program)
    return OverheadResult(
        benchmark=bench,
        klass=klass,
        base_cycles=base.cycles,
        instrumented_cycles=run.cycles,
        overhead=run.cycles / base.cycles,
        bit_identical=run.outputs == base.outputs,
        growth=instrumented.growth,
    )


def check_single_bitforbit(bench: str, klass: str) -> bool:
    """Section 3.1: instrumented all-single == manually converted build."""
    workload = make_nas(bench, klass)
    tree = build_tree(workload.program)
    instrumented = instrument(workload.program, Config.all_single(tree))
    run = workload.run(instrumented.program)
    manual = workload.run(workload.program_single)
    if len(run.outputs) != len(manual.outputs):
        return False
    from repro.fpbits.ieee import bits_to_double, bits_to_single

    for (kind_i, bits_i), (kind_m, bits_m) in zip(run.outputs, manual.outputs):
        if kind_i == "d" and kind_m == "s":
            if is_replaced(bits_i):
                # The replaced slot must hold the exact bits the manual
                # single-precision build produced.
                if replaced_single_bits(bits_i) != bits_m:
                    return False
            else:
                # A value the replaced code never touched (e.g. an
                # untouched zero-initialized cell): it must round-trip to
                # the same single value exactly.
                if bits_to_double(bits_i) != bits_to_single(bits_m):
                    return False
        elif (kind_i, bits_i) != (kind_m, bits_m):
            return False
    return True


def run(benchmarks=BENCHMARKS, classes=CLASSES) -> list[dict]:
    """Regenerate the Figure 9 table."""
    rows = []
    for bench in benchmarks:
        for klass in classes:
            result = measure_overhead(bench, klass)
            rows.append(
                {
                    "benchmark": f"{bench}.{klass}",
                    "overhead": f"{result.overhead:.1f}X",
                    "bit_identical": result.bit_identical,
                    "text_growth": f"{result.growth:.1f}X",
                }
            )
    return rows


#: Paper values for EXPERIMENTS.md comparison.
PAPER_VALUES = {
    "ep.A": 3.4, "ep.C": 5.5, "cg.A": 3.4, "cg.C": 4.5,
    "ft.A": 4.2, "ft.C": 7.0, "mg.A": 5.8, "mg.C": 14.7,
}
