"""Checkpoint/resume differential (the campaign subsystem's soundness).

For each workload the driver runs the breadth-first search three ways —

* **uninterrupted**: the plain in-memory search (the reference);
* **interrupted + resumed**: a durable campaign, killed at a batch
  boundary (the journal's ``interrupt_after`` test hook takes the same
  ``KeyboardInterrupt`` path a real Ctrl-C does), then resumed from the
  journal with the result store replaying everything already decided;
* **warm-started**: a second, fresh search sharing the campaign's
  result store, which must re-execute *nothing*.

— and reports, per workload: configurations tested each way, store
replays, executions in the warm pass, and whether the resumed search
composed a final configuration (and history) identical to the
uninterrupted reference.  Differential tests assert the identity on
NAS workloads; this driver re-checks it on whatever it is given.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass

from repro.campaign import Campaign
from repro.config.fileformat import dump_config
from repro.search.bfs import SearchEngine, SearchOptions
from repro.store import ResultStore
from repro.workloads import make_workload

BENCHMARKS = ("cg", "mg")


def history_key(result) -> list:
    """The deterministic columns of an evaluation history (wall time is
    machine noise and deliberately excluded)."""
    return [
        (r.label, r.passed, r.cycles, r.trap, r.phase, r.reason)
        for r in result.history
    ]


@dataclass(slots=True)
class ResumeComparison:
    workload: str
    interrupted_after: int       # checkpoints written before the kill
    base_tested: int             # uninterrupted configs_tested
    resumed_tested: int          # must equal base_tested
    store_replays: int           # outcomes replayed while resuming
    warm_tested: int             # warm-started configs_tested
    warm_executions: int         # must be 0: everything came from the store
    identical_final: bool        # byte-identical exchange files
    identical_history: bool


def compare(
    bench: str,
    klass: str = "T",
    interrupt_after: int = 2,
    options: SearchOptions | None = None,
    workdir: str | None = None,
) -> ResumeComparison:
    """Interrupt, resume, and warm-start one workload; diff everything.

    ``workdir`` hosts the campaign directory (a temp dir is created and
    removed when omitted).
    """
    options = options or SearchOptions()
    base = SearchEngine(make_workload(bench, klass), options).run()

    owns_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-resume-")
    try:
        campaign = Campaign.create(workdir, bench, klass, options)
        campaign.interrupt_after = interrupt_after
        try:
            SearchEngine(
                make_workload(bench, klass), options, campaign=campaign
            ).run()
            raise RuntimeError(
                f"{bench}.{klass}: search finished in under "
                f"{interrupt_after} batches; nothing was interrupted"
            )
        except KeyboardInterrupt:
            pass
        finally:
            campaign.close()

        resumed_campaign = Campaign.open(workdir)
        try:
            resumed = SearchEngine(
                make_workload(bench, klass),
                resumed_campaign.options,
                campaign=resumed_campaign,
            ).run()
        finally:
            resumed_campaign.close()

        with ResultStore(f"{workdir}/results.sqlite") as store:
            warm_engine = SearchEngine(
                make_workload(bench, klass), options, store=store
            )
            warm = warm_engine.run()
            warm_executions = warm_engine.evaluator.executions
    finally:
        if owns_dir:
            shutil.rmtree(workdir, ignore_errors=True)

    return ResumeComparison(
        workload=f"{bench}.{klass}",
        interrupted_after=interrupt_after,
        base_tested=base.configs_tested,
        resumed_tested=resumed.configs_tested,
        store_replays=resumed.store_replays,
        warm_tested=warm.configs_tested,
        warm_executions=warm_executions,
        identical_final=(
            dump_config(resumed.final_config) == dump_config(base.final_config)
            and dump_config(warm.final_config) == dump_config(base.final_config)
        ),
        identical_history=history_key(resumed) == history_key(base),
    )


def run(benchmarks=BENCHMARKS, classes=("T",), interrupt_after: int = 2) -> list[dict]:
    """Regenerate the checkpoint/resume differential table."""
    rows = []
    for bench in benchmarks:
        for klass in classes:
            c = compare(bench, klass, interrupt_after=interrupt_after)
            rows.append(
                {
                    "workload": c.workload,
                    "killed_after": f"batch {c.interrupted_after}",
                    "tested": c.base_tested,
                    "resumed_tested": c.resumed_tested,
                    "replays": c.store_replays,
                    "warm_executions": c.warm_executions,
                    "identical_final": c.identical_final,
                    "identical_history": c.identical_history,
                }
            )
    return rows
