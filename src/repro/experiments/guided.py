"""Guided-vs-unguided search comparison (the analysis subsystem's value).

For each workload the driver runs the breadth-first search twice — once
as the paper describes it (every candidate configuration evaluated) and
once guided by the shadow-value analysis (:mod:`repro.analysis`), which
spends one extra observed run up front and prunes every singleton whose
channel verdict is already "fail" — and reports, per workload:

* configurations tested with and without guidance (and the saving);
* how many evaluations the analysis pruned;
* wall time both ways (the guided figure *includes* the analysis run);
* whether the final composed configurations are identical — the
  soundness contract; a differential test asserts it on every NAS
  workload, and this driver re-checks it on whatever it is given.

A third search runs with ``analysis="auto"``: by then the guided run
has populated the economics registry (:mod:`repro.analysis.economics`),
so the engine skips the shadow run on workloads where its measured cost
exceeded the predicted prune saving — mg.W decisively, cg.T on the
margin now that fused dispatch made its evaluations nearly free.  The
auto row is the fix for guided mg.W's end-to-end wall regression: auto
must never be slower than the better of the two fixed modes by more
than noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.search.bfs import SearchEngine, SearchOptions
from repro.workloads import make_workload

BENCHMARKS = ("bt", "cg", "ep", "ft", "lu", "mg", "sp")


@dataclass(slots=True)
class GuidedComparison:
    workload: str
    base_tested: int
    guided_tested: int
    pruned: int
    identical_final: bool
    base_wall_s: float
    guided_wall_s: float
    #: the analysis="auto" run (guidance economics applied); auto_analyzed
    #: says whether the engine judged the shadow run worth paying for.
    auto_tested: int = 0
    auto_wall_s: float = 0.0
    auto_analyzed: bool = False
    auto_identical: bool = True

    @property
    def saved(self) -> int:
        return self.base_tested - self.guided_tested


def compare(bench: str, klass: str, refine: bool = True,
            telemetry=None) -> GuidedComparison:
    """Run one workload unguided, guided, and in auto mode; diff them.

    The guided run executes before the auto run on purpose: it measures
    the guidance economics the auto run decides from.
    """
    base_options = SearchOptions(refine=refine, analysis=False)
    guided_options = SearchOptions(refine=refine, analysis=True)
    auto_options = SearchOptions(refine=refine, analysis="auto")

    workload = make_workload(bench, klass)
    start = time.perf_counter()
    base = SearchEngine(workload, base_options, telemetry=telemetry).run()
    base_wall = time.perf_counter() - start

    workload = make_workload(bench, klass)
    start = time.perf_counter()
    guided = SearchEngine(
        workload, guided_options, telemetry=telemetry
    ).run()
    guided_wall = time.perf_counter() - start

    workload = make_workload(bench, klass)
    start = time.perf_counter()
    auto = SearchEngine(workload, auto_options, telemetry=telemetry).run()
    auto_wall = time.perf_counter() - start

    return GuidedComparison(
        workload=f"{bench}.{klass}",
        base_tested=base.configs_tested,
        guided_tested=guided.configs_tested,
        pruned=guided.analysis_pruned,
        identical_final=(
            base.final_config.flags == guided.final_config.flags
        ),
        base_wall_s=base_wall,
        guided_wall_s=guided_wall,
        auto_tested=auto.configs_tested,
        auto_wall_s=auto_wall,
        auto_analyzed=auto.analysis_used,
        auto_identical=(
            base.final_config.flags == auto.final_config.flags
        ),
    )


def run(benchmarks=BENCHMARKS, classes=("T",), refine: bool = True) -> list[dict]:
    """Regenerate the guided-vs-unguided table."""
    rows = []
    for bench in benchmarks:
        for klass in classes:
            c = compare(bench, klass, refine=refine)
            rows.append(
                {
                    "workload": c.workload,
                    "unguided": c.base_tested,
                    "guided": c.guided_tested,
                    "pruned": c.pruned,
                    "saved": f"{c.saved} "
                    f"({100.0 * c.saved / max(1, c.base_tested):.0f}%)",
                    "identical_final": c.identical_final,
                    "wall": f"{c.base_wall_s:.2f}s -> {c.guided_wall_s:.2f}s",
                }
            )
    return rows
