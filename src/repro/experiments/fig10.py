"""Figure 10: automatic-search results on the NAS analogues.

For each benchmark and problem class, runs the breadth-first search to
instruction granularity and reports the paper's columns: candidate
count, configurations tested, static replacement percentage, dynamic
replacement percentage, and the verification result of the composed
final configuration.

The paper's qualitative findings this reproduces:

* the search tests far fewer configurations than an exhaustive sweep;
* benchmarks span a wide sensitivity spectrum — ft's hot butterflies
  admit almost no dynamic replacement, cg's recurrence very little,
  ep/mg a moderate share, bt/lu/sp a large share;
* the union of individually passing replacements does **not** always
  verify (precision decisions are not independent).
"""

from __future__ import annotations

from repro.search.bfs import SearchEngine, SearchOptions
from repro.search.results import SearchResult
from repro.workloads import make_nas

BENCHMARKS = ("bt", "cg", "ep", "ft", "lu", "mg", "sp")
CLASSES = ("W", "A")


def search_benchmark(
    bench: str, klass: str, options: SearchOptions | None = None
) -> SearchResult:
    workload = make_nas(bench, klass)
    engine = SearchEngine(workload, options)
    return engine.run()


def run(benchmarks=BENCHMARKS, classes=CLASSES, options=None) -> list[dict]:
    """Regenerate the Figure 10 table."""
    rows = []
    for bench in benchmarks:
        for klass in classes:
            result = search_benchmark(bench, klass, options)
            rows.append(result.row())
    return rows


#: Paper values (benchmark -> (candidates, tested, static%, dynamic%, final)).
PAPER_VALUES = {
    "bt.W": (6647, 3854, 76.2, 85.7, "fail"),
    "bt.A": (6682, 3832, 75.9, 81.6, "pass"),
    "cg.W": (940, 270, 93.7, 6.4, "pass"),
    "cg.A": (934, 229, 94.7, 5.3, "pass"),
    "ep.W": (397, 112, 93.7, 30.7, "pass"),
    "ep.A": (397, 113, 93.1, 23.9, "pass"),
    "ft.W": (422, 72, 84.4, 0.3, "pass"),
    "ft.A": (422, 73, 93.6, 0.2, "pass"),
    "lu.W": (5957, 3769, 73.7, 65.5, "fail"),
    "lu.A": (5929, 2814, 80.4, 69.4, "pass"),
    "mg.W": (1351, 458, 84.4, 28.0, "pass"),
    "mg.A": (1351, 456, 84.1, 24.4, "pass"),
    "sp.W": (4772, 5729, 36.9, 45.8, "fail"),
    "sp.A": (4821, 5044, 51.9, 43.0, "fail"),
}
