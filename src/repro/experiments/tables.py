"""Plain-text table rendering for experiment results."""

from __future__ import annotations


def format_table(rows: list[dict], columns: list[tuple] | None = None, title: str = "") -> str:
    """Render *rows* (list of dicts) as an aligned text table.

    *columns* is an optional list of ``(key, header)`` pairs; by default
    the keys of the first row are used.
    """
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = [(k, k) for k in rows[0].keys()]
    headers = [h for _, h in columns]
    body = []
    for row in rows:
        body.append([_fmt(row.get(k, "")) for k, _ in columns])
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)
