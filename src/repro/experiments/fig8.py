"""Figure 8: NAS MPI scaling of instrumentation overhead.

Runs the base-case (all-double snippet) instrumentation of EP, CG, FT and
MG at 1, 2, 4 and 8 ranks and reports the makespan ratio at each scale.
The paper's observation: *overall overhead decreases as ranks are added*,
because communication — which the tool leaves uninstrumented — takes a
growing share of the runtime.  EP, which barely communicates, stays
almost flat; that contrast is part of the figure's shape.
"""

from __future__ import annotations

from repro.config.generator import build_tree
from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.workloads import make_nas

BENCHMARKS = ("ep", "cg", "ft", "mg")
RANKS = (1, 2, 4, 8)


def measure_scaling(bench: str, klass: str = "A", ranks=RANKS) -> dict:
    """Overhead at each rank count for one benchmark."""
    workload = make_nas(bench, klass)
    tree = build_tree(workload.program)
    instrumented = instrument(workload.program, Config.all_double(tree), mode="all")
    row: dict = {"benchmark": f"{bench}.{klass}"}
    for size in ranks:
        base = workload.run_mpi(size)
        run = workload.run_mpi(size, instrumented.program)
        row[f"P{size}"] = f"{run.elapsed / base.elapsed:.2f}X"
        row[f"_raw_P{size}"] = run.elapsed / base.elapsed
    return row


def run(benchmarks=BENCHMARKS, klass: str = "A", ranks=RANKS) -> list[dict]:
    """Regenerate the Figure 8 series (one row per benchmark)."""
    return [measure_scaling(b, klass, ranks) for b in benchmarks]


def trend_is_nonincreasing(row: dict, ranks=RANKS, slack: float = 0.02) -> bool:
    """The figure's qualitative claim: overhead does not grow with ranks."""
    values = [row[f"_raw_P{p}"] for p in ranks]
    return all(b <= a * (1 + slack) for a, b in zip(values, values[1:]))
