"""Figure 11: SuperLU error-threshold sweep.

The paper wrote "a driver script that ran the program and compared the
reported error against a predefined threshold error bound", then ran the
automatic search once per threshold.  Their observations, all of which
this driver reproduces in shape:

* at a threshold just above the single build's own error, essentially the
  whole solver is replaceable (99.1% static / 99.9% dynamic — the tool
  "can find all replacements inserted manually by an expert");
* stricter thresholds admit fewer static and far fewer dynamic
  replacements;
* the error of the final composed run sits well below the threshold used
  during the search.
"""

from __future__ import annotations

from repro.instrument.engine import instrument
from repro.search.bfs import SearchEngine, SearchOptions
from repro.vm.errors import VmTrap
from repro.workloads import superlu

#: Default sweep, spanning "just above the single build's error" down to
#: "near the double build's error" for the synthetic memplus-like system.
DEFAULT_THRESHOLDS = (1e-3, 1e-4, 3e-5, 1e-5, 3e-6, 1e-6, 1e-7)


def solver_errors(klass: str = "W") -> dict:
    """Reported error metric of the plain double and single builds, plus
    the cycle speedup of the recompiled single build (paper: 1.16X)."""
    workload = superlu.make(klass)
    base = workload.baseline()
    single = workload.run(workload.program_single)
    return {
        "double_error": float(base.values()[0]),
        "single_error": float(single.values()[0]),
        "single_speedup": base.cycles / single.cycles,
    }


def sweep_threshold(klass: str, threshold: float, options=None) -> dict:
    """One row of Figure 11: search with the given error bound."""
    workload = superlu.make(klass, threshold=threshold)
    engine = SearchEngine(workload, options or SearchOptions())
    result = engine.run()

    final_error = float("nan")
    if result.final_config is not None and any(result.final_config.flags):
        try:
            run = workload.run(instrument(workload.program, result.final_config).program)
            final_error = float(run.values()[0])
        except VmTrap:
            pass
    return {
        "threshold": f"{threshold:.1e}",
        "static_pct": round(result.static_pct * 100.0, 1),
        "dynamic_pct": round(result.dynamic_pct * 100.0, 1),
        "final_error": f"{final_error:.2e}",
        "final": "pass" if result.final_verified else "fail",
        "tested": result.configs_tested,
        "_raw_static": result.static_pct,
        "_raw_dynamic": result.dynamic_pct,
        "_raw_final_error": final_error,
        "_raw_final_verified": result.final_verified,
    }


def run(klass: str = "W", thresholds=DEFAULT_THRESHOLDS, options=None) -> list[dict]:
    """Regenerate the Figure 11 table."""
    return [sweep_threshold(klass, t, options) for t in thresholds]


#: Paper values: threshold -> (static%, dynamic%, final error).
PAPER_VALUES = {
    1.0e-3: (99.1, 99.9, 1.59e-4),
    1.0e-4: (94.1, 87.3, 4.42e-5),
    7.5e-5: (91.3, 52.5, 4.40e-5),
    5.0e-5: (87.9, 45.2, 3.00e-5),
    2.5e-5: (80.3, 26.6, 1.69e-5),
    1.0e-5: (75.4, 1.6, 7.15e-7),
    1.0e-6: (72.6, 1.6, 4.77e-7),
}
