"""The long-lived multi-tenant campaign server.

:class:`PrecisionService` owns exactly one :mod:`repro.cluster`
coordinator (and its asyncio loop thread, TCP endpoint, and worker
pool) and runs every accepted job's :class:`~repro.search.bfs.SearchEngine`
on a dedicated thread against a per-job channel of that coordinator —
the "coordinator owns many engines" inversion of the standalone
``--cluster`` search.  One TCP port serves both populations: workers
handshake with ``role: "worker"`` (protocol v3 only here — tasks carry
their workload per frame), clients with ``role: "client"`` and the
``submit``/``status``/``result``/``cancel``/``list`` job frames.

Layout of the service root directory::

    root/
      service.json        # bind address, quotas, creation time
      store.sqlite        # the service-wide shared ResultStore
      jobs/<job id>/      # one isolated campaign dir per job:
        campaign.json     #   options + lifecycle (repro.campaign)
        journal.jsonl     #   frontier checkpoints
        trace.jsonl       #   that job's full telemetry stream
        metrics.txt       #   live MetricsRegistry summary at job end
        config.txt        #   the best final configuration
        result.json       #   result row + provenance counters

Threading model: the asyncio loop thread owns all coordinator state;
each job thread owns its engine, campaign journal, and trace file (the
single-writer telemetry rule, per job); the service's *own* telemetry
(worker joins, job lifecycle) is emitted by one drainer thread that
also reaps finished job threads.  Cross-thread traffic is limited to
``run_coroutine_threadsafe`` calls into the loop and thread-safe deque
appends out of it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import threading
import time
from collections import deque

from repro.campaign import Campaign
from repro.cluster.coordinator import _Coordinator, JobCancelled
from repro.cluster.protocol import (
    CANCEL,
    JOB,
    JOBS,
    LIST,
    REJECTED,
    RESULT,
    STATUS,
    SUBMIT,
    SUBMITTED,
    WELCOME,
    parse_address,
)
from repro.config.fileformat import dump_config
from repro.config.generator import build_tree
from repro.config.model import Config
from repro.search.bfs import SearchEngine
from repro.search.retry import RetryPolicy
from repro.service.evaluator import ServiceEvaluator
from repro.service.jobs import (
    CANCELLED,
    COMPLETE,
    FAILED,
    JobRegistry,
    QuotaError,
    RUNNING,
    TERMINAL_STATES,
)
from repro.store import ResultStore
from repro.telemetry import JsonlSink, MetricsRegistry, Telemetry
from repro.workloads import REGISTRY

#: service protocol: workers must speak v3 (tasks name their workload);
#: v2 workers remain usable against single-job ``repro serve``.
_SERVICE_VERSIONS = (3,)


class PrecisionService:
    """Host many concurrent search campaigns over one worker pool.

    Parameters:

    root:
        Service state directory (created if missing): the shared store,
        ``service.json``, and one campaign directory per job.
    bind:
        ``HOST:PORT`` for the combined worker + client endpoint
        (port 0 = let the OS pick; see :attr:`address`).
    max_inflight:
        Per-tenant cap on simultaneously leased evaluations (None =
        uncapped).  Enforced in the coordinator's deficit-round-robin
        scheduler at grant time.
    max_queued:
        Per-tenant cap on active (queued + running) jobs (None =
        uncapped).  Enforced at admission; over-quota submits get a
        ``rejected`` reply.
    lease_timeout:
        Worker-liveness window, exactly as in the standalone cluster.
    telemetry:
        Optional service-level telemetry for worker lifecycle and
        ``service.job.*`` events (per-job events go to each job's own
        trace instead).
    lease_log:
        Record ``(job, tenant, in-flight-after)`` per granted lease on
        the coordinator — the fairness tests and the service benchmark
        read interleaving straight off this.
    """

    def __init__(
        self,
        root: str,
        bind: str = "127.0.0.1:0",
        max_inflight: int | None = None,
        max_queued: int | None = None,
        lease_timeout: float = 30.0,
        telemetry=None,
        lease_log: bool = False,
    ) -> None:
        self.root = str(root)
        os.makedirs(os.path.join(self.root, "jobs"), exist_ok=True)
        self.telemetry = telemetry
        self.lease_timeout = lease_timeout
        self.registry = JobRegistry(max_queued=max_queued)
        self.store = ResultStore(os.path.join(self.root, "store.sqlite"))
        self._events: deque = deque()   # service-global (kind, fields)
        welcome = {
            "type": WELCOME,
            "version": _SERVICE_VERSIONS[-1],
            "service": True,
            # No pinned workload: every task frame names its own.
            "workload": "",
            "klass": "",
            "workload_id": "",
            "incremental": True,
            "optimize_checks": False,
            "lease_timeout": lease_timeout,
        }
        self._coord = _Coordinator(
            welcome,
            RetryPolicy(),
            lease_timeout,
            self._events,
            versions=_SERVICE_VERSIONS,
            client_api=self,
            max_inflight=max_inflight,
            lease_log=lease_log,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        host, port = parse_address(bind)
        try:
            self.host, self.port = asyncio.run_coroutine_threadsafe(
                self._coord.start(host, port), self._loop
            ).result(timeout=10)
        except BaseException:
            self._stop_loop()
            raise
        self._closed = False
        self._closing = threading.Event()
        self._drainer = threading.Thread(
            target=self._drain_loop, name="repro-service-drain", daemon=True
        )
        self._drainer.start()
        self._write_meta(max_inflight, max_queued)

    # -- metadata -------------------------------------------------------------

    def _write_meta(self, max_inflight, max_queued) -> None:
        meta = {
            "address": self.address,
            "created": time.time(),
            "lease_timeout": self.lease_timeout,
            "max_inflight": max_inflight,
            "max_queued": max_queued,
            "store": os.path.join(self.root, "store.sqlite"),
        }
        path = os.path.join(self.root, "service.json")
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)

    @property
    def address(self) -> str:
        """The bound ``host:port`` for both workers and clients."""
        return f"{self.host}:{self.port}"

    @property
    def workers_connected(self) -> int:
        return len(self._coord.workers)

    # -- client frames (called on the loop thread by the coordinator) --------

    def handle_client(self, message: dict) -> dict:
        kind = message.get("type")
        if kind == SUBMIT:
            return self._client_submit(message)
        if kind == STATUS:
            return self._client_status(message, result=False)
        if kind == RESULT:
            return self._client_status(message, result=True)
        if kind == CANCEL:
            return self._client_cancel(message)
        if kind == LIST:
            return {
                "type": JOBS,
                "jobs": [job.status() for job in self.registry.jobs()],
            }
        return {
            "type": REJECTED,
            "code": "bad_request",
            "message": f"unknown frame {kind!r}",
        }

    def _client_submit(self, message: dict) -> dict:
        workload = str(message.get("workload", ""))
        if workload not in REGISTRY:
            names = ", ".join(REGISTRY.names())
            return {
                "type": REJECTED,
                "code": "unknown_workload",
                "message": f"unknown workload {workload!r}; "
                           f"registered workloads: {names}",
            }
        try:
            job = self.submit(
                workload,
                str(message.get("klass", "") or "W"),
                options=message.get("options") or {},
                tenant=str(message.get("tenant", "") or "default"),
                quantum=float(message.get("quantum", 1.0)),
            )
        except QuotaError as exc:
            return {"type": REJECTED, "code": "quota", "message": str(exc)}
        return {"type": SUBMITTED, "job": job.job_id}

    def _client_status(self, message: dict, result: bool) -> dict:
        job = self.registry.get(str(message.get("job", "")))
        if job is None:
            return {
                "type": REJECTED,
                "code": "unknown_job",
                "message": f"no job {message.get('job')!r}",
            }
        reply = job.result_reply() if result else job.status()
        reply["type"] = JOB
        return reply

    def _client_cancel(self, message: dict) -> dict:
        job_id = str(message.get("job", ""))
        state = self.cancel(job_id)
        if state is None:
            return {
                "type": REJECTED,
                "code": "unknown_job",
                "message": f"no job {job_id!r}",
            }
        job = self.registry.get(job_id)
        reply = job.status()
        reply["type"] = JOB
        return reply

    # -- job lifecycle --------------------------------------------------------

    def submit(self, workload: str, klass: str = "W", options=None,
               tenant: str = "default", quantum: float = 1.0):
        """Admit a job and start its engine thread; returns the Job.

        ``options`` is the JSON form of
        :class:`~repro.search.bfs.SearchOptions` (unknown keys ignored);
        ``cluster`` is stripped — the service *is* the cluster — and
        ``workers`` only sets the engine's batch size, since evaluation
        happens on the shared pool.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        options = dict(options or {})
        options.pop("cluster", None)
        job = self.registry.admit(tenant, workload, klass, options, quantum)
        self._event(
            "service.job.submit",
            job=job.job_id, tenant=tenant, workload=f"{workload}.{klass}",
        )
        job.thread = threading.Thread(
            target=self._run_job, args=(job,),
            name=f"repro-job-{job.job_id}", daemon=True,
        )
        job.thread.start()
        return job

    def cancel(self, job_id: str):
        """Request cancellation; returns the job's state afterwards
        (None for an unknown job).  Idempotent; terminal jobs are left
        untouched."""
        job = self.registry.get(job_id)
        if job is None:
            return None
        if job.state in TERMINAL_STATES:
            return job.state
        self._event("service.job.cancel", job=job.job_id)
        # Order matters: the event gates the *next* batch, the channel
        # abort unblocks a batch already in flight.
        job.cancel_event.set()
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(
                self._coord.cancel_channel(job.job_id), self._loop
            ).result(timeout=5)
        return job.state

    def _run_job(self, job) -> None:
        from repro.campaign import options_from_dict
        from repro.workloads import make_workload

        job.state = RUNNING
        job.started = time.time()
        jobdir = os.path.join(self.root, "jobs", job.job_id)
        job.path = jobdir
        evaluator = None
        campaign = None
        telemetry = None
        try:
            if job.cancel_event.is_set():
                raise JobCancelled(f"{job.job_id}: cancelled before start")
            # job.options never carries "cluster" (stripped at submit),
            # so the rebuilt options embed no nested coordinator.
            options = options_from_dict(job.options)
            workload = make_workload(job.workload, job.klass)
            self._event(
                "service.job.begin",
                job=job.job_id, workload=f"{job.workload}.{job.klass}",
            )
            campaign = Campaign.create(
                jobdir, job.workload, job.klass, options
            )
            metrics = MetricsRegistry()
            telemetry = Telemetry(
                sinks=[JsonlSink(os.path.join(jobdir, "trace.jsonl"))],
                metrics=metrics,
            )
            tree = build_tree(workload.program)
            evaluator = ServiceEvaluator(
                self, job, workload, tree,
                telemetry=telemetry,
                incremental=options.incremental,
                retry=RetryPolicy(options.retry_limit, options.retry_backoff),
            )
            # A supplied evaluator is externally owned: the engine keeps
            # it open across run() and our finally closes it (which
            # unregisters the job's coordinator channel).
            engine = SearchEngine(
                workload,
                options,
                base_config=Config.all_double(tree),
                evaluator=evaluator,
                telemetry=telemetry,
                campaign=campaign,
                store=self.store,
            )
            job.engine = engine
            result = engine.run()
            job.result_row = result.row()
            job.tested = result.configs_tested
            job.executions = evaluator.executions
            job.store_replays = result.store_replays
            if result.final_config is not None:
                best = (
                    result.refined_config
                    if result.refined_config is not None
                    and result.refined_verified
                    else result.final_config
                )
                job.config_text = dump_config(best, lattice=options.lattice)
                with open(os.path.join(jobdir, "config.txt"), "w") as handle:
                    handle.write(job.config_text)
            with open(os.path.join(jobdir, "result.json"), "w") as handle:
                json.dump(
                    {
                        "row": job.result_row,
                        "tested": job.tested,
                        "executions": job.executions,
                        "store_replays": job.store_replays,
                        "wall_seconds": result.wall_seconds,
                    },
                    handle, indent=2, sort_keys=True,
                )
            with open(os.path.join(jobdir, "metrics.txt"), "w") as handle:
                handle.write(metrics.summary())
            job.state = COMPLETE
        except JobCancelled:
            job.state = CANCELLED
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = FAILED
        finally:
            job.finished = time.time()
            if evaluator is not None:
                job.tested = max(job.tested, evaluator.evaluations)
                job.executions = max(job.executions, evaluator.executions)
                job.store_replays = max(job.store_replays, evaluator.store_hits)
                with contextlib.suppress(Exception):
                    evaluator.close()
            if campaign is not None:
                with contextlib.suppress(Exception):
                    campaign.close()
            if telemetry is not None:
                for sink in telemetry.sinks:
                    with contextlib.suppress(Exception):
                        sink.close()
            self._event("service.job.end", job=job.job_id, state=job.state)

    # -- service telemetry ----------------------------------------------------

    def _event(self, kind: str, **fields) -> None:
        # Thread-safe: deque.append is atomic; the drainer thread is the
        # single writer into the service-level telemetry.
        self._events.append((kind, fields))

    def _drain_loop(self) -> None:
        while not self._closing.wait(0.05):
            self._drain_events()
        self._drain_events()

    def _drain_events(self) -> None:
        telemetry = self.telemetry
        events = self._events
        while events:
            kind, fields = events.popleft()
            if telemetry is not None and telemetry.enabled:
                telemetry.emit(kind, **fields)

    # -- introspection --------------------------------------------------------

    def lease_log(self) -> list:
        """Copy of the coordinator's lease log (empty unless enabled)."""
        async def grab():
            log = self._coord.lease_log
            return list(log) if log is not None else []

        return asyncio.run_coroutine_threadsafe(
            grab(), self._loop
        ).result(timeout=5)

    def wait_all(self, timeout: float = 300.0) -> bool:
        """Block until every admitted job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        for job in self.registry.jobs():
            thread = job.thread
            if thread is None:
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            thread.join(timeout=remaining)
            if thread.is_alive():
                return False
        return True

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for job in self.registry.active():
            self.cancel(job.job_id)
        for job in self.registry.jobs():
            if job.thread is not None:
                job.thread.join(timeout=10)
        try:
            asyncio.run_coroutine_threadsafe(
                self._coord.shutdown(), self._loop
            ).result(timeout=5)
        except (concurrent.futures.TimeoutError, RuntimeError):
            pass
        finally:
            self._stop_loop()
            self._closing.set()
            self._drainer.join(timeout=5)
            self.store.close()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "PrecisionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
