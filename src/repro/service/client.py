"""Synchronous client for the job service's protocol-v3 frames.

:class:`ServiceClient` speaks the same length-prefixed JSON framing as
the workers, but handshakes with ``role: "client"`` and then exchanges
``submit``/``status``/``result``/``cancel``/``list`` frames.  It is
what ``repro submit``/``repro jobs``/``repro result`` use; being a few
dozen lines over a blocking socket is the point — any language with
sockets and JSON can submit campaigns.
"""

from __future__ import annotations

import os
import socket
import time

from repro.cluster.protocol import (
    BYE,
    CANCEL,
    ERROR,
    HELLO,
    JOB,
    JOBS,
    LIST,
    PROTOCOL_VERSION,
    REJECTED,
    RESULT,
    ROLE_CLIENT,
    STATUS,
    SUBMIT,
    SUBMITTED,
    SUPPORTED_VERSIONS,
    UNSUPPORTED,
    WELCOME,
    parse_address,
    recv_frame,
    send_frame,
)

#: job states a poller treats as "still in progress"
_PENDING = ("queued", "running")


class ServiceError(RuntimeError):
    """Connection failure, handshake refusal, or a rejected request."""

    def __init__(self, message: str, code: str = "") -> None:
        super().__init__(message)
        self.code = code


class ServiceClient:
    """One connection to a :class:`~repro.service.server.PrecisionService`."""

    def __init__(
        self,
        address: str,
        connect_retries: int = 50,
        connect_backoff: float = 0.1,
    ) -> None:
        host, port = parse_address(address)
        last_error: Exception | None = None
        sock = None
        for attempt in range(connect_retries + 1):
            try:
                sock = socket.create_connection((host, port), timeout=30)
                break
            except OSError as exc:
                last_error = exc
                time.sleep(connect_backoff * min(attempt + 1, 10))
        if sock is None:
            raise ServiceError(
                f"cannot reach service at {address}: {last_error}"
            )
        self.sock = sock
        self.address = address
        send_frame(self.sock, {
            "type": HELLO,
            "version": PROTOCOL_VERSION,
            "versions": list(SUPPORTED_VERSIONS),
            "role": ROLE_CLIENT,
            "host": socket.gethostname(),
            "pid": os.getpid(),
        })
        welcome = recv_frame(self.sock)
        if welcome is None:
            raise ServiceError("service closed the connection during handshake")
        if welcome.get("type") == UNSUPPORTED:
            raise ServiceError(
                f"{welcome.get('message', 'protocol version refused')}",
                code="unsupported",
            )
        if welcome.get("type") == ERROR:
            raise ServiceError(welcome.get("message", "handshake refused"))
        if welcome.get("type") != WELCOME or not welcome.get("service"):
            raise ServiceError(
                f"{address} is not a job service (got "
                f"{welcome.get('type')!r})"
            )

    # -- request/response core ------------------------------------------------

    def _rpc(self, message: dict, expect: tuple) -> dict:
        send_frame(self.sock, message)
        reply = recv_frame(self.sock)
        if reply is None:
            raise ServiceError("service closed the connection")
        if reply.get("type") == REJECTED:
            raise ServiceError(
                reply.get("message", "request rejected"),
                code=reply.get("code", ""),
            )
        if reply.get("type") not in expect:
            raise ServiceError(f"unexpected reply {reply.get('type')!r}")
        return reply

    # -- job API ---------------------------------------------------------------

    def submit(self, workload: str, klass: str = "W", options=None,
               tenant: str = "default", quantum: float = 1.0) -> str:
        """Submit one campaign; returns its job id."""
        reply = self._rpc({
            "type": SUBMIT,
            "workload": workload,
            "klass": klass,
            "options": dict(options or {}),
            "tenant": tenant,
            "quantum": quantum,
        }, (SUBMITTED,))
        return reply["job"]

    def status(self, job_id: str) -> dict:
        return self._rpc({"type": STATUS, "job": job_id}, (JOB,))

    def result(self, job_id: str) -> dict:
        """Status plus the final row and configuration text."""
        return self._rpc({"type": RESULT, "job": job_id}, (JOB,))

    def cancel(self, job_id: str) -> dict:
        return self._rpc({"type": CANCEL, "job": job_id}, (JOB,))

    def jobs(self) -> list[dict]:
        return self._rpc({"type": LIST}, (JOBS,))["jobs"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns its
        final ``result`` reply.  Raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] not in _PENDING:
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"{job_id} still {status['state']} after {timeout:.0f}s"
                )
            time.sleep(poll)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            send_frame(self.sock, {"type": BYE})
        except OSError:
            pass
        self.sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
