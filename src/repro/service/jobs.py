"""Job records and the admission-controlled registry.

A :class:`Job` is one submitted search campaign: its identity (id,
tenant, workload), its immutable options, and its mutable lifecycle
state.  The :class:`JobRegistry` is the service's source of truth for
every job it has ever accepted; it enforces the per-tenant *queued
jobs* quota at admission time (the per-tenant *in-flight lease* quota
lives in the coordinator's scheduler, where leases are granted).

States and their transitions::

    queued ──> running ──> complete
                  │  └───> failed
                  └──────> cancelled      (cancel may also land while
    queued ─────────────> cancelled        still queued)

Terminal states are ``complete``/``failed``/``cancelled``; a terminal
job keeps its stats and result row forever (the registry is the
service's job history as well as its queue).
"""

from __future__ import annotations

import threading
import time

#: lifecycle states
QUEUED = "queued"
RUNNING = "running"
COMPLETE = "complete"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({COMPLETE, FAILED, CANCELLED})
ACTIVE_STATES = frozenset({QUEUED, RUNNING})


class QuotaError(RuntimeError):
    """A tenant tried to queue more jobs than its admission quota."""


class Job:
    """One submitted campaign and everything the service knows about it."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        workload: str,
        klass: str,
        options: dict,
        quantum: float = 1.0,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.workload = workload
        self.klass = klass
        self.options = dict(options)   # JSON form (campaign options_to_dict)
        self.quantum = quantum         # DRR share of the worker pool
        self.state = QUEUED
        self.error = ""
        self.submitted = time.time()
        self.started = 0.0
        self.finished = 0.0
        self.path = ""                 # campaign directory, set at start
        #: set to ask the job's engine thread to stop at the next batch;
        #: the coordinator-side channel abort unblocks a batch already
        #: in flight.
        self.cancel_event = threading.Event()
        #: live engine handle while running (its evaluator counters are
        #: plain ints, safe to read cross-thread for status reports).
        self.engine = None
        self.thread: threading.Thread | None = None
        # terminal-state artifacts
        self.result_row: dict | None = None
        self.config_text = ""
        self.tested = 0
        self.executions = 0
        self.store_replays = 0

    # -- views ---------------------------------------------------------------

    def _live_counter(self, name: str) -> int:
        engine = self.engine
        if engine is not None and getattr(engine, "evaluator", None) is not None:
            return int(getattr(engine.evaluator, name, 0))
        return 0

    def status(self) -> dict:
        """JSON-safe snapshot for ``status``/``list`` replies."""
        running = self.state == RUNNING
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "workload": self.workload,
            "klass": self.klass,
            "state": self.state,
            "error": self.error,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "path": self.path,
            "tested": (
                self._live_counter("evaluations") if running else self.tested
            ),
            "executions": (
                self._live_counter("executions") if running else self.executions
            ),
            "store_hits": (
                self._live_counter("store_hits") if running
                else self.store_replays
            ),
        }

    def result_reply(self) -> dict:
        """The ``result`` frame body: status plus the final artifacts."""
        reply = self.status()
        reply["row"] = self.result_row
        reply["config"] = self.config_text
        return reply


class JobRegistry:
    """Thread-safe job table with per-tenant admission quotas.

    ``max_queued`` caps how many *active* (queued or running) jobs one
    tenant may hold; None disables the cap.  Quota rejection happens at
    admission so a tenant flooding ``submit`` cannot pile up unbounded
    engine threads — contrast with the in-flight lease quota, which is
    enforced lease-by-lease in the coordinator's scheduler.
    """

    def __init__(self, max_queued: int | None = None) -> None:
        self.max_queued = max_queued
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0

    def admit(self, tenant: str, workload: str, klass: str,
              options: dict, quantum: float = 1.0) -> Job:
        with self._lock:
            if self.max_queued is not None:
                active = sum(
                    1 for job in self._jobs.values()
                    if job.tenant == tenant and job.state in ACTIVE_STATES
                )
                if active >= self.max_queued:
                    raise QuotaError(
                        f"tenant {tenant!r} already has {active} active "
                        f"job(s) (quota {self.max_queued})"
                    )
            self._seq += 1
            job = Job(
                f"j{self._seq}", tenant, workload, klass, options, quantum
            )
            self._jobs[job.job_id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: int(j.job_id[1:]))

    def active(self) -> list[Job]:
        return [job for job in self.jobs() if job.state in ACTIVE_STATES]
