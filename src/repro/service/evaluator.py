"""Per-job evaluator riding the service's shared coordinator.

:class:`ServiceEvaluator` is the fourth member of the evaluator family
and the piece that inverts the ownership story: where a standalone
:class:`~repro.cluster.ClusterEvaluator` *creates* an event loop, a
coordinator, and a TCP server, a ServiceEvaluator *borrows* all three
from the owning :class:`~repro.service.server.PrecisionService` and
merely registers its own channel.  Everything engine-visible — caches,
counters, batch planning, store replay — is the shared
:class:`~repro.cluster.coordinator.BaseLeaseEvaluator` logic, which is
why a job's search trajectory is byte-identical to a standalone run of
the same options (differential-tested).

Cancellation: the job's ``cancel_event`` is checked at every batch
boundary, and the service aborts the job's coordinator channel for a
batch already in flight; either path raises
:class:`~repro.cluster.coordinator.JobCancelled` on this job's engine
thread only.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.cluster.coordinator import BaseLeaseEvaluator, JobCancelled
from repro.search.retry import RetryPolicy


class ServiceEvaluator(BaseLeaseEvaluator):
    """Evaluator for one service job, multiplexed over the shared pool."""

    def __init__(
        self,
        service,
        job,
        workload,
        tree,
        telemetry=None,
        incremental: bool = True,
        retry: RetryPolicy | None = None,
    ) -> None:
        from repro.store import workload_id

        self._init_lease_state(
            workload, tree, False, telemetry, incremental,
            service.store, workload_id(workload), retry,
        )
        self._job = job
        self.job_id = job.job_id
        self._loop = service._loop
        self._coord = service._coord
        self._events = deque()
        name = getattr(workload, "name", tree.program_name)
        klass = getattr(workload, "klass", "")
        if klass and name.endswith("." + klass):
            name = name[: -(len(klass) + 1)]
        # Per-task workload fields: v3 workers build (and cache) the
        # workload named by each task, so one pool serves every
        # campaign concurrently.
        info = {
            "workload": name,
            "klass": klass,
            "workload_id": self.store_workload,
            "incremental": incremental,
            "optimize_checks": False,
        }
        asyncio.run_coroutine_threadsafe(
            self._coord.open_channel(
                self.job_id, tenant=job.tenant, quantum=job.quantum,
                info=info, events=self._events,
            ),
            self._loop,
        ).result(timeout=10)

    def _check_open(self) -> None:
        super()._check_open()
        if self._job.cancel_event.is_set():
            raise JobCancelled(f"{self.job_id}: job cancelled")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(
                self._coord.close_channel(self.job_id), self._loop
            ).result(timeout=5)
        except Exception:
            pass  # service already shutting its loop down
        self._drain_events()
