"""Precision-search-as-a-service: a multi-tenant campaign server.

The paper frames mixed-precision adaptation as a per-program offline
search; the ROADMAP's north star is a production system answering
precision queries for many users at once.  This package is that
inversion of ownership: instead of one :class:`~repro.search.bfs.SearchEngine`
embedding its own coordinator, a long-lived :class:`PrecisionService`
owns one :mod:`repro.cluster` coordinator — and therefore one shared
worker pool — and hosts many concurrent search campaigns on top of it:

- A :class:`~repro.service.jobs.JobRegistry` accepts jobs over the wire
  (cluster protocol v3 ``submit``/``status``/``result``/``cancel``/
  ``list`` frames alongside the existing worker frames) with per-tenant
  admission quotas.
- Each job runs its own engine on a dedicated thread against an
  isolated campaign directory (journal + trace + metrics), so every
  result is byte-identical to the standalone search of the same
  options — differential-tested.
- Leases are multiplexed across campaigns by the coordinator's deficit
  round-robin scheduler with per-tenant in-flight quotas, so a big
  campaign cannot starve a small one.
- All jobs share one service-wide content-addressed
  :class:`~repro.store.ResultStore`: identical ``(workload_id,
  policy_digest)`` evaluations are answered once across tenants.

See ``docs/SERVICE.md`` for the job lifecycle, fairness model, and
protocol frames.
"""

from repro.cluster.coordinator import JobCancelled
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobRegistry, QuotaError
from repro.service.server import PrecisionService

__all__ = [
    "Job",
    "JobCancelled",
    "JobRegistry",
    "PrecisionService",
    "QuotaError",
    "ServiceClient",
    "ServiceError",
]
