"""Annotated source view (the GUI's debug-information panel).

Given the original source text of a module and a configuration, prints
every line with the effective precision decisions of the instructions
compiled from it — ``s``/``d``/``i`` markers plus candidate counts —
which is the view "that shows the corresponding source code location for
a particular instruction" in the paper.
"""

from __future__ import annotations

from collections import defaultdict

from repro.config.model import Config, Policy


def render_source_view(config: Config, source: str, module_label: str = "") -> str:
    """Annotate *source* lines with per-line precision decisions."""
    by_line: dict[int, list] = defaultdict(list)
    for node in config.tree.instructions():
        if node.line:
            by_line[node.line].append(config.effective_policy(node))

    lines = []
    if module_label:
        lines.append(f"; module {module_label}")
    for number, text in enumerate(source.splitlines(), start=1):
        policies = by_line.get(number)
        if policies:
            counts = {p: policies.count(p) for p in set(policies)}
            marker = "/".join(
                f"{count}{policy.value}" for policy, count in sorted(
                    counts.items(), key=lambda kv: kv[0].value
                )
            )
            marker = f"[{marker:>6s}]"
        else:
            marker = " " * 8
        lines.append(f"{marker} {number:4d}  {text}")
    return "\n".join(lines) + "\n"
