"""Tree rendering of configurations (the paper's Figure 4, as text).

Each node shows its explicit flag (column 1), its *effective* policy
after hierarchical override resolution, and — when a profile is given —
the share of candidate executions under the node, which is the
information the GUI uses to steer a developer toward worthwhile
conversions.
"""

from __future__ import annotations

from repro.config.model import Config, ConfigNode, LEVEL_INSN, Policy


def _node_weight(node: ConfigNode, profile: dict) -> int:
    return sum(profile.get(i.addr, 0) for i in node.instructions())


def render_config_tree(
    config: Config,
    profile: dict | None = None,
    max_instructions: int | None = None,
) -> str:
    """Render the structure tree with flags and effective policies."""
    tree = config.tree
    total = 1
    if profile:
        total = max(1, sum(profile.get(i.addr, 0) for i in tree.instructions()))
    lines = [f"program: {tree.program_name}   candidates: {tree.candidate_count}"]
    lines.append("flag  effective  structure")
    for root in tree.roots:
        _render(root, config, profile, total, 0, lines, max_instructions)
    return "\n".join(lines) + "\n"


def _render(node, config, profile, total, depth, lines, max_instructions, shown=None):
    if shown is None:
        shown = [0]
    flag = config.flags.get(node.node_id)
    col = flag.value if flag is not None else "."
    indent = "  " * depth
    if node.level == LEVEL_INSN:
        if max_instructions is not None and shown[0] >= max_instructions:
            return
        shown[0] += 1
        effective = config.effective_policy(node).value
        extra = ""
        if profile is not None:
            count = profile.get(node.addr, 0)
            extra = f"  [{100.0 * count / total:5.2f}% execs]"
        src = f"  ; line {node.line}" if node.line else ""
        lines.append(
            f"  {col}      {effective}      {indent}{node.node_id}: "
            f'{node.addr:#06x} "{node.text}"{extra}{src}'
        )
        return
    weight = ""
    if profile is not None:
        weight = f"  [{100.0 * _node_weight(node, profile) / total:5.1f}% execs]"
    lines.append(f"  {col}             {indent}{node.node_id}: {node.label}{weight}")
    for child in node.children:
        _render(child, config, profile, total, depth + 1, lines, max_instructions, shown)


def render_search_summary(result) -> str:
    """One-paragraph summary of a SearchResult plus its history tail."""
    lines = [
        f"search of {result.workload}: {result.candidates} candidates, "
        f"{result.configs_tested} configurations tested",
        f"  static  replaced: {result.static_pct * 100.0:5.1f}%",
        f"  dynamic replaced: {result.dynamic_pct * 100.0:5.1f}%",
        f"  final (union) verification: "
        f"{'pass' if result.final_verified else 'fail'}",
        "  history:",
    ]
    for record in result.history:
        status = "PASS" if record.passed else ("TRAP" if record.trap else "fail")
        lines.append(f"    {status:4s}  {record.label}")
    return "\n".join(lines) + "\n"
