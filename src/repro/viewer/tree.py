"""Tree rendering of configurations (the paper's Figure 4, as text).

Each node shows its explicit flag (column 1), its *effective* policy
after hierarchical override resolution, and — when a profile is given —
the share of candidate executions under the node, which is the
information the GUI uses to steer a developer toward worthwhile
conversions.  With an analysis report attached each instruction also
carries its shadow columns: the channel verdict of the singleton
replacement and the worst local float32 error the shadow observed;
group nodes aggregate their verdict census.
"""

from __future__ import annotations

from repro.config.model import Config, ConfigNode, LEVEL_INSN, Policy


def _node_weight(node: ConfigNode, profile: dict) -> int:
    return sum(profile.get(i.addr, 0) for i in node.instructions())


def _insn_analysis(analysis, node) -> str:
    ia = analysis.get(node.addr)
    if ia is None:
        return "  [shadow: unobserved]"
    verdict = ia.verdict
    if verdict == "unknown" and ia.verdict_why:
        verdict = f"unknown:{ia.verdict_why}"
    err = f" lerr={ia.max_local_err:.1e}" if ia.max_local_err else ""
    marks = ""
    if ia.cancel_events:
        marks += f" cancel={ia.cancel_events}"
    if ia.overflow:
        marks += f" ovf={ia.overflow}"
    if ia.flips:
        marks += f" flips={ia.flips}"
    return f"  [shadow: {verdict}{err}{marks}]"


def _group_analysis(analysis, node) -> str:
    summary = analysis.summarize([i.addr for i in node.instructions()])
    if summary is None:
        return "  [shadow: unobserved]"
    verdicts = summary["verdicts"]
    census = "/".join(
        f"{n} {v}" for v, n in verdicts.items()
    )
    return f"  [shadow: {census}]"


def render_config_tree(
    config: Config,
    profile: dict | None = None,
    max_instructions: int | None = None,
    analysis=None,
) -> str:
    """Render the structure tree with flags and effective policies.

    *analysis* is an optional :class:`repro.analysis.AnalysisReport`;
    when given, every line grows a shadow column.
    """
    tree = config.tree
    total = 1
    if profile:
        total = max(1, sum(profile.get(i.addr, 0) for i in tree.instructions()))
    lines = [f"program: {tree.program_name}   candidates: {tree.candidate_count}"]
    lines.append("flag  effective  structure")
    for root in tree.roots:
        _render(
            root, config, profile, total, 0, lines, max_instructions, analysis
        )
    return "\n".join(lines) + "\n"


def _render(node, config, profile, total, depth, lines, max_instructions,
            analysis, shown=None):
    if shown is None:
        shown = [0]
    flag = config.flags.get(node.node_id)
    col = flag.value if flag is not None else "."
    indent = "  " * depth
    if node.level == LEVEL_INSN:
        if max_instructions is not None and shown[0] >= max_instructions:
            return
        shown[0] += 1
        effective = config.effective_policy(node).value
        extra = ""
        if profile is not None:
            count = profile.get(node.addr, 0)
            extra = f"  [{100.0 * count / total:5.2f}% execs]"
        if analysis is not None:
            extra += _insn_analysis(analysis, node)
        src = f"  ; line {node.line}" if node.line else ""
        lines.append(
            f"  {col}      {effective}      {indent}{node.node_id}: "
            f'{node.addr:#06x} "{node.text}"{extra}{src}'
        )
        return
    weight = ""
    if profile is not None:
        weight = f"  [{100.0 * _node_weight(node, profile) / total:5.1f}% execs]"
    if analysis is not None:
        weight += _group_analysis(analysis, node)
    lines.append(f"  {col}             {indent}{node.node_id}: {node.label}{weight}")
    for child in node.children:
        _render(child, config, profile, total, depth + 1, lines,
                max_instructions, analysis, shown)


def render_search_summary(result) -> str:
    """One-paragraph summary of a SearchResult plus its history tail."""
    lines = [
        f"search of {result.workload}: {result.candidates} candidates, "
        f"{result.configs_tested} configurations tested",
        f"  static  replaced: {result.static_pct * 100.0:5.1f}%",
        f"  dynamic replaced: {result.dynamic_pct * 100.0:5.1f}%",
        f"  final (union) verification: "
        f"{'pass' if result.final_verified else 'fail'}",
    ]
    if getattr(result, "analysis_used", False):
        lines.append(
            f"  analysis guidance: {result.analysis_pruned} "
            f"evaluations pruned"
        )
    lines.append("  history:")
    for record in result.history:
        if record.passed:
            status = "PASS"
        elif record.trap:
            status = "TRAP"
        elif getattr(record, "reason", "") == "pruned":
            status = "prun"
        else:
            status = "fail"
        lines.append(f"    {status:4s}  {record.label}")
    return "\n".join(lines) + "\n"
