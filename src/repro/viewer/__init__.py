"""Configuration viewer — the terminal stand-in for the paper's GUI.

The paper's GTK editor (its Figure 4) displays the program-structure tree
with per-node precision flags, lets the developer toggle them, and maps
instructions back to source lines via debug information.  This module
renders the same information as text: the structure tree with flags and
profile weights, and an annotated source view.
"""

from repro.viewer.tree import render_config_tree, render_search_summary
from repro.viewer.source_view import render_source_view
from repro.viewer.report import render_markdown_report
from repro.viewer.explain import render_explain_report

__all__ = [
    "render_config_tree",
    "render_search_summary",
    "render_source_view",
    "render_markdown_report",
    "render_explain_report",
]
