"""Markdown report generation for a completed search.

Produces the artifact a developer would actually act on after running
the analysis: headline numbers, the per-function breakdown with profile
weights (where to spend conversion effort), the tested-configuration
history, and the final configuration in the exchange format — roughly the
information the paper's GUI presents, as a shareable document.
"""

from __future__ import annotations

from repro.config.fileformat import dump_config
from repro.config.model import LEVEL_FUNCTION, Policy


def render_markdown_report(result, workload=None, metrics=None,
                           analysis=None) -> str:
    """Render *result* (a SearchResult) as a Markdown document.

    ``metrics`` may be a :class:`repro.telemetry.MetricsRegistry` collected
    during the search; its summary table is embedded as an extra section.
    ``analysis`` may be the :class:`repro.analysis.AnalysisReport` that
    guided the search; its verdict census is embedded too.
    """
    lines = [f"# Mixed-precision analysis: {result.workload}", ""]
    lines += [
        f"* candidates: **{result.candidates}** double-precision instructions",
        f"* configurations tested: **{result.configs_tested}**",
        f"* static replacement: **{result.static_pct * 100:.1f}%** of instructions",
        f"* dynamic replacement: **{result.dynamic_pct * 100:.1f}%** of executions",
        f"* final (union) verification: **{'pass' if result.final_verified else 'FAIL'}**",
    ]
    if result.refined_config is not None:
        lines += [
            f"* second-phase refinement: **{result.refined_static_pct * 100:.1f}%** "
            f"static / **{result.refined_dynamic_pct * 100:.1f}%** dynamic, "
            f"verification **{'pass' if result.refined_verified else 'FAIL'}** "
            f"({result.refine_drops} replacement(s) dropped)",
        ]
    if getattr(result, "analysis_used", False):
        lines.append(
            f"* analysis guidance: **{result.analysis_pruned}** "
            f"evaluation(s) pruned by shadow-channel verdicts"
        )
    lines.append(f"* wall time: {result.wall_seconds:.1f}s")
    lines.append("")

    if analysis is not None:
        lines += ["## Shadow analysis", ""]
        lines += [
            f"* observed: **{analysis.observed}** of "
            f"{analysis.candidates} candidates",
            "",
            "| verdict | instructions |",
            "|---|---|",
        ]
        for verdict, count in analysis.verdict_histogram().items():
            lines.append(f"| {verdict} | {count} |")
        lines.append("")
        flagged = [
            ia
            for ia in analysis.instructions.values()
            if ia.cancel_events or ia.overflow or ia.flips
        ]
        if flagged:
            lines += [
                "Instructions with shadow warnings "
                "(cancellation / float32 overflow / decision flips):",
                "",
                "| insn | mnemonic | verdict | cancels | overflows | flips |",
                "|---|---|---|---|---|---|",
            ]
            for ia in sorted(flagged, key=lambda e: e.addr):
                lines.append(
                    f"| `{ia.node_id or hex(ia.addr)}` | {ia.mnemonic} "
                    f"| {ia.verdict} | {ia.cancel_events} "
                    f"| {ia.overflow} | {ia.flips} |"
                )
            lines.append("")

    config = (
        result.refined_config
        if result.refined_config is not None and result.refined_verified
        else result.final_config
    )

    if config is not None:
        profile = workload.profile() if workload is not None else {}
        total = max(1, sum(profile.get(i.addr, 0) for i in config.tree.instructions()))
        lines += ["## Per-function breakdown", ""]
        lines += [
            "| function | candidates | replaced | execution share |",
            "|---|---|---|---|",
        ]
        for fn in config.tree.nodes_at(LEVEL_FUNCTION):
            insns = list(fn.instructions())
            policies = [config.effective_policy(i) for i in insns]
            replaced = sum(1 for p in policies if p is Policy.SINGLE)
            weight = sum(profile.get(i.addr, 0) for i in insns) / total
            lines.append(
                f"| `{fn.label}` | {len(insns)} | {replaced} "
                f"({100.0 * replaced / max(1, len(insns)):.0f}%) "
                f"| {weight * 100:.1f}% |"
            )
        lines.append("")

    lines += ["## Search history", ""]
    lines += [
        "| # | configuration | phase | outcome | wall |",
        "|---|---|---|---|---|",
    ]
    for index, record in enumerate(result.history, start=1):
        if record.passed:
            outcome = "pass"
        elif record.trap:
            outcome = "trap"
        elif getattr(record, "reason", "") == "pruned":
            outcome = "pruned"
        else:
            outcome = "fail"
        wall = f"{record.wall_s * 1000.0:.0f} ms" if record.wall_s else "-"
        lines.append(
            f"| {index} | `{record.label}` | {record.phase} "
            f"| {outcome} | {wall} |"
        )
    lines.append("")

    if metrics is not None:
        lines += ["## Telemetry metrics", "", "```"]
        lines.append(metrics.summary().rstrip())
        lines += ["```", ""]

    if config is not None:
        lines += [
            "## Recommended configuration (exchange format)",
            "",
            "```",
            dump_config(config).rstrip(),
            "```",
            "",
        ]
    return "\n".join(lines)
