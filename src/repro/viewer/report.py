"""Markdown report generation for a completed search.

Produces the artifact a developer would actually act on after running
the analysis: headline numbers, the per-function breakdown with profile
weights (where to spend conversion effort), the tested-configuration
history, and the final configuration in the exchange format — roughly the
information the paper's GUI presents, as a shareable document.
"""

from __future__ import annotations

from repro.config.fileformat import dump_config
from repro.config.model import LEVEL_FUNCTION, Policy


def render_markdown_report(result, workload=None, metrics=None) -> str:
    """Render *result* (a SearchResult) as a Markdown document.

    ``metrics`` may be a :class:`repro.telemetry.MetricsRegistry` collected
    during the search; its summary table is embedded as an extra section.
    """
    lines = [f"# Mixed-precision analysis: {result.workload}", ""]
    lines += [
        f"* candidates: **{result.candidates}** double-precision instructions",
        f"* configurations tested: **{result.configs_tested}**",
        f"* static replacement: **{result.static_pct * 100:.1f}%** of instructions",
        f"* dynamic replacement: **{result.dynamic_pct * 100:.1f}%** of executions",
        f"* final (union) verification: **{'pass' if result.final_verified else 'FAIL'}**",
    ]
    if result.refined_config is not None:
        lines += [
            f"* second-phase refinement: **{result.refined_static_pct * 100:.1f}%** "
            f"static / **{result.refined_dynamic_pct * 100:.1f}%** dynamic, "
            f"verification **{'pass' if result.refined_verified else 'FAIL'}** "
            f"({result.refine_drops} replacement(s) dropped)",
        ]
    lines.append(f"* wall time: {result.wall_seconds:.1f}s")
    lines.append("")

    config = (
        result.refined_config
        if result.refined_config is not None and result.refined_verified
        else result.final_config
    )

    if config is not None:
        profile = workload.profile() if workload is not None else {}
        total = max(1, sum(profile.get(i.addr, 0) for i in config.tree.instructions()))
        lines += ["## Per-function breakdown", ""]
        lines += [
            "| function | candidates | replaced | execution share |",
            "|---|---|---|---|",
        ]
        for fn in config.tree.nodes_at(LEVEL_FUNCTION):
            insns = list(fn.instructions())
            policies = [config.effective_policy(i) for i in insns]
            replaced = sum(1 for p in policies if p is Policy.SINGLE)
            weight = sum(profile.get(i.addr, 0) for i in insns) / total
            lines.append(
                f"| `{fn.label}` | {len(insns)} | {replaced} "
                f"({100.0 * replaced / max(1, len(insns)):.0f}%) "
                f"| {weight * 100:.1f}% |"
            )
        lines.append("")

    lines += ["## Search history", ""]
    lines += [
        "| # | configuration | phase | outcome | wall |",
        "|---|---|---|---|---|",
    ]
    for index, record in enumerate(result.history, start=1):
        outcome = "pass" if record.passed else ("trap" if record.trap else "fail")
        wall = f"{record.wall_s * 1000.0:.0f} ms" if record.wall_s else "-"
        lines.append(
            f"| {index} | `{record.label}` | {record.phase} "
            f"| {outcome} | {wall} |"
        )
    lines.append("")

    if metrics is not None:
        lines += ["## Telemetry metrics", "", "```"]
        lines.append(metrics.summary().rstrip())
        lines += ["```", ""]

    if config is not None:
        lines += [
            "## Recommended configuration (exchange format)",
            "",
            "```",
            dump_config(config).rstrip(),
            "```",
            "",
        ]
    return "\n".join(lines)
