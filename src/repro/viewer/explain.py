"""The search "explain" report: why each site ended up at its precision.

A completed search leaves its evidence scattered across four artifacts:
the result history (what was tested, what passed), the shadow-value
analysis (what was predicted), the profile (what each site costs), and
the trace (retries, crashes, store replays, worker attribution).  This
module threads them back together *per config-tree site*, producing the
decision-provenance document a developer reads before trusting — or
overriding — the recommended configuration.

Every input except the result itself is optional; sections degrade to
"(not available)" rather than failing, so the report renders for a bare
`SearchResult` and gets richer as artifacts are supplied.
"""

from __future__ import annotations

from repro.config.model import LEVEL_FUNCTION, Policy


def render_explain_report(
    result, analysis=None, events=None, profile=None
) -> str:
    """Render decision provenance for *result* (a SearchResult).

    ``analysis`` is the :class:`repro.analysis.AnalysisReport` that
    guided (or could have guided) the search; ``events`` a list of trace
    events (see :func:`repro.telemetry.tools.load_events`); ``profile``
    a profile document (:func:`repro.profile.collect_profile`).
    """
    lines = [f"# Search explanation: {result.workload}", ""]
    config = (
        result.refined_config
        if result.refined_config is not None and result.refined_verified
        else result.final_config
    )
    if config is None:
        lines.append("No final configuration — the search found nothing.")
        return "\n".join(lines)

    evidence = _evidence_by_node(result.history)
    site_cycles, total_cycles = _cycles_by_node(events, profile)

    lines += ["## Per-site decisions", ""]
    lines += [
        "| site | function | policy | analysis | evidence | cycle share |",
        "|---|---|---|---|---|---|",
    ]
    for node in sorted(config.tree.by_addr.values(), key=lambda n: n.addr):
        policy = config.effective_policy(node)
        verdict = _verdict_for(analysis, node)
        records = _records_for(node, evidence)
        cycles = site_cycles.get(node.node_id)
        share = (
            f"{100.0 * cycles / total_cycles:.1f}%"
            if cycles is not None and total_cycles
            else "-"
        )
        lines.append(
            f"| `{node.node_id}` | `{_function_of(node)}` "
            f"| {'single' if policy is Policy.SINGLE else 'double'} "
            f"| {verdict} | {_summarize_records(records)} | {share} |"
        )
    lines.append("")

    reasons = result.fail_reasons()
    lines += ["## Reliability", ""]
    lines.append(f"* evaluations: **{result.configs_tested}**")
    for reason, count in sorted(reasons.items()):
        lines.append(f"* failed with `{reason}`: **{count}**")
    if events:
        retries = sum(1 for e in events if e["kind"] == "eval.retry")
        requeues = sum(1 for e in events if e["kind"] == "cluster.requeue")
        crashes = sum(1 for e in events if e["kind"] == "eval.worker_crash")
        lost = sum(1 for e in events if e["kind"] == "cluster.worker_lost")
        lines.append(
            f"* retries: **{retries}**, cluster requeues: **{requeues}**, "
            f"workers lost: **{lost}**, configs crashed out: **{crashes}**"
        )
        workers = sorted({e["worker"] for e in events if "worker" in e})
        if workers:
            remote = [e for e in events if e["kind"] == "eval.remote"]
            per = {w: 0 for w in workers}
            for e in remote:
                if e.get("worker") in per:
                    per[e["worker"]] += 1
            shares = ", ".join(f"{w}: {n}" for w, n in sorted(per.items()))
            lines.append(
                f"* distributed across **{len(workers)}** worker(s) "
                f"({shares})"
            )
    lines.append("")

    lines += ["## Replays and caches", ""]
    if result.resumed:
        lines.append("* resumed from a campaign checkpoint")
    lines.append(f"* store replays: **{result.store_replays}**")
    if events:
        counters = _replayed_counters(events)
        for name in ("eval.cache_hits", "store.hits"):
            if name in counters:
                lines.append(f"* `{name}`: **{counters[name]}**")
    lines.append("")
    return "\n".join(lines)


# -- evidence plumbing -------------------------------------------------------


def _evidence_by_node(history) -> dict:
    """node id -> [EvalRecord] for every record naming that node.

    Labels are the engine's human-readable group names — node ids joined
    with ``+`` — so a plain token split recovers the mapping.
    """
    per: dict[str, list] = {}
    for record in history:
        for token in record.label.replace("+", " ").split():
            per.setdefault(token, []).append(record)
    return per


def _records_for(node, evidence: dict) -> list:
    """Evidence records for *node*: its own plus every ancestor's."""
    records = []
    current = node
    while current is not None:
        records.extend(evidence.get(current.node_id, ()))
        current = current.parent
    return records


def _summarize_records(records: list) -> str:
    if not records:
        return "untested (inherited)"
    passes = sum(1 for r in records if r.passed)
    last = records[-1]
    if last.passed:
        decisive = f"passed at `{last.label}` ({last.phase})"
    elif last.reason:
        decisive = f"{last.reason} at `{last.label}` ({last.phase})"
    else:
        decisive = f"failed at `{last.label}` ({last.phase})"
    return f"{len(records)} eval(s), {passes} pass; {decisive}"


def _verdict_for(analysis, node) -> str:
    if analysis is None:
        return "-"
    ia = analysis.instructions.get(node.addr)
    if ia is None:
        return "unobserved"
    return ia.verdict


def _function_of(node) -> str:
    current = node.parent
    while current is not None:
        if current.level == LEVEL_FUNCTION:
            return current.label
        current = current.parent
    return "?"


def _cycles_by_node(events, profile) -> tuple[dict, int]:
    """Per-site cycles from the profile document or profile.site events."""
    per: dict[str, int] = {}
    if profile is not None:
        for site in profile.get("sites", ()):
            if site["node"]:
                per[site["node"]] = site["cycles"]
        return per, profile.get("attributed_cycles", 0)
    if events:
        total = 0
        for event in events:
            if event["kind"] == "profile.site":
                if event["node"]:
                    per[event["node"]] = event["cycles"]
                total += event["cycles"]
        return per, total
    return per, 0


def _replayed_counters(events) -> dict:
    counters: dict[str, int] = {}
    for event in events:
        if event["kind"] == "metric.count":
            counters[event["name"]] = (
                counters.get(event["name"], 0) + event["value"]
            )
    return counters
