"""Binary modification: snippets, basic-block patching, rewriting.

This package implements Sections 2.3 and 2.4 of the paper:

* :mod:`repro.instrument.snippets` — the "mini-compiler" that emits the
  machine-code replacement snippets (flag test, conditional in-place
  downcast/upcast, precision-switched opcode, packed flag fix-up);
* :mod:`repro.instrument.rewriter` — splits basic blocks around every
  floating-point instruction, splices the snippets in, and re-lays-out
  the text section into a new executable (Dyninst's CFG-patching API +
  binary rewriter, in one deterministic pass);
* :mod:`repro.instrument.engine` — the top-level entry point tying a
  :class:`~repro.config.model.Config` to a rewritten program.
"""

from repro.instrument.cache import InstrumentCache
from repro.instrument.engine import (
    InstrumentedProgram,
    InstrumentError,
    instrument,
)
from repro.instrument.snippets import SnippetStats

__all__ = [
    "InstrumentCache",
    "InstrumentedProgram",
    "InstrumentError",
    "instrument",
    "SnippetStats",
]
