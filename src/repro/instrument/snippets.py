"""The snippet mini-compiler (paper Section 2.3, Figure 6).

For every replaced instruction the engine splices in a short sequence of
*real* virtual-ISA instructions that

1. copies any memory operand into a reserved scratch XMM register (the
   paper does the same "to avoid hard-to-find synchronization bugs or
   writing to unwritable memory");
2. for each floating-point input register: tests the high word against
   the replacement sentinels and, depending on the target precision,
   downcasts (narrow) or upcasts (double) the value **in place**;
3. runs the original instruction with its opcode switched to the
   configured precision;
4. re-establishes the sentinel in the result's high word where the
   hardware would not preserve it (fresh scalar destinations, and both
   lanes of packed outputs — the paper's "fix flags in any packed
   outputs").

Scratch state (R12/R13, X14/X15) is saved and restored around every
snippet with push/pop, exactly like the paper's ``push %rax / push %rbx``
prologue.  Snippets clobber the condition flags; this is safe for
compiler-generated code, which never keeps flags live across a
floating-point instruction (the same assumption Dyninst-based tools make
unless asked to save EFLAGS).

Lattice widths
--------------
Every emitter takes the tuple of *live* narrow widths — the distinct
narrow precisions the configuration actually uses, in lattice order.
Each width carries its own sentinel (``f32`` ``0x7FF4DEAD``, ``bf16``
``0x7FF4BEEF``, ``f16`` ``0x7FF4FEED``), so guard chains compare the
high word against one sentinel per live width.  With a single live width
the chain degenerates to exactly the one-compare sequence the binary
f64->f32 pipeline has always emitted — byte for byte — which is what
keeps the 2-level lattice differential tests trivially green.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.builder import AsmBuilder, LabelRef
from repro.config.model import Policy
from repro.fpbits.replace import REPLACED_FLAG, REPLACED_FLAG_SHIFTED, WIDTH_CODECS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import NARROW_FAMILIES, Op, OPCODE_INFO
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.isa.registers import SNIPPET_GPRS, SNIPPET_XMMS

_LOW_MASK = 0xFFFFFFFF

#: width name -> (sentinel, sentinel << 32, CVTSD2<w>, CVT<w>2SD).
_WIDTH_OPS = {
    name: (WIDTH_CODECS[name][0], WIDTH_CODECS[name][0] << 32, down, up)
    for name, (_equiv, down, up) in NARROW_FAMILIES.items()
}

#: narrow policy flag -> width name, in lattice (descending-width) order.
POLICY_WIDTHS = {Policy.SINGLE: "f32", Policy.BF16: "bf16", Policy.HALF: "f16"}

#: the live-widths value of every binary (f64->f32) configuration.
DEFAULT_WIDTHS = ("f32",)


def live_widths(policies: dict) -> tuple[str, ...]:
    """The distinct narrow widths *policies* uses, in lattice order.

    Guard chains test one sentinel per live width, so a configuration
    that only ever narrows to f32 pays exactly the historical single
    compare.  Falls back to ``("f32",)`` when nothing is narrowed (the
    mode="all" overhead experiment still guards moves against the
    classic sentinel).
    """
    present = set(policies.values())
    found = tuple(
        width for policy, width in POLICY_WIDTHS.items() if policy in present
    )
    return found or DEFAULT_WIDTHS

_SCRATCH_GPR = SNIPPET_GPRS[0]       # R12
_SCRATCH_GPR2 = SNIPPET_GPRS[1]      # R13
_SCRATCH_XMM = SNIPPET_XMMS[1]       # X15: memory-operand copies
_SCRATCH_XMM2 = SNIPPET_XMMS[0]      # X14: packed lane conversions


class SnippetError(Exception):
    """The instruction cannot be safely snippeted (scratch conflicts, ...)."""


@dataclass(slots=True)
class SnippetStats:
    """Counters accumulated while instrumenting one program."""

    replaced_single: int = 0
    wrapped_double: int = 0
    ignored: int = 0
    copied: int = 0
    checks_emitted: int = 0
    checks_skipped: int = 0
    snippet_instructions: int = 0
    saves_elided: int = 0
    blocks_split: int = 0     # basic blocks that had at least one snippet spliced
    by_opcode: dict = field(default_factory=dict)

    def merge(self, other: "SnippetStats") -> None:
        """Accumulate *other* (e.g. one block's counters) into this object."""
        self.replaced_single += other.replaced_single
        self.wrapped_double += other.wrapped_double
        self.ignored += other.ignored
        self.copied += other.copied
        self.checks_emitted += other.checks_emitted
        self.checks_skipped += other.checks_skipped
        self.snippet_instructions += other.snippet_instructions
        self.saves_elided += other.saves_elided
        self.blocks_split += other.blocks_split
        for key, value in other.by_opcode.items():
            self.by_opcode[key] = self.by_opcode.get(key, 0) + value


class _Emitter:
    """Counts instructions emitted through the builder on behalf of snippets.

    With *streamline* set (paper Section 2.5: "reduce the runtime overhead
    by streamlining the machine code that is emitted"), the scratch
    save/restore pushes are elided — legal only when the whole program
    provably never touches the snippet-reserved registers, which the
    engine verifies statically before enabling it.
    """

    def __init__(
        self,
        builder: AsmBuilder,
        stats: SnippetStats,
        streamline: bool = False,
        addr: int = 0,
    ) -> None:
        self.builder = builder
        self.stats = stats
        self.streamline = streamline
        self.addr = addr
        self._counter = 0

    def save(self, opcode: Op, operand, line: int) -> None:
        if not self.streamline:
            self.emit(opcode, operand, line=line)
        else:
            self.stats.saves_elided += 1

    def emit(self, opcode: Op, *operands, line: int = 0) -> None:
        self.builder.emit(opcode, *operands, line=line)
        self.stats.snippet_instructions += 1

    def mark(self, label: str) -> None:
        self.builder.mark(label)

    def fresh(self, stem: str) -> str:
        # Labels are scoped by the snippeted instruction's original
        # address: deterministic across re-emissions of the same site, so
        # a cached emission (rewriter replay cache, block templates) can
        # be replayed verbatim without colliding with labels generated
        # fresh for other sites.  Names never reach the byte stream.
        self._counter += 1
        return f".{stem}{self.addr:x}x{self._counter}"


def _check_conflicts(instr: Instruction) -> None:
    for operand in instr.operands:
        if isinstance(operand, Xmm) and operand.index in SNIPPET_XMMS:
            raise SnippetError(
                f"instruction at {instr.addr:#x} uses reserved XMM x{operand.index}"
            )
        if isinstance(operand, Reg) and operand.index in SNIPPET_GPRS:
            raise SnippetError(
                f"instruction at {instr.addr:#x} uses reserved GPR r{operand.index}"
            )
        if isinstance(operand, Mem):
            for reg in (operand.base, operand.index):
                if reg in SNIPPET_GPRS:
                    raise SnippetError(
                        f"memory operand at {instr.addr:#x} uses reserved GPR r{reg}"
                    )


def _fp_input_regs(instr: Instruction, mem_to_scratch: bool) -> list[int]:
    """XMM register indices holding FP inputs, deduplicated, in order.

    When *mem_to_scratch* is set, a memory FP input has already been copied
    to the scratch XMM and is represented by it.
    """
    info = OPCODE_INFO[instr.opcode]
    regs: list[int] = []
    for pos in info.fp_in:
        operand = instr.operands[pos]
        if isinstance(operand, Xmm):
            if operand.index not in regs:
                regs.append(operand.index)
        elif isinstance(operand, Mem):
            if not mem_to_scratch:
                raise SnippetError("memory FP input without scratch copy")
            if _SCRATCH_XMM not in regs:
                regs.append(_SCRATCH_XMM)
    return regs


def _rewrite_mem_operands(instr: Instruction) -> tuple:
    """Replace FP-input memory operands with the scratch XMM register."""
    info = OPCODE_INFO[instr.opcode]
    operands = list(instr.operands)
    for pos in info.fp_in:
        if isinstance(operands[pos], Mem):
            operands[pos] = Xmm(_SCRATCH_XMM)
    return tuple(operands)


def _mem_fp_input(instr: Instruction) -> Mem | None:
    info = OPCODE_INFO[instr.opcode]
    for pos in info.fp_in:
        if isinstance(instr.operands[pos], Mem):
            return instr.operands[pos]
    return None


def _emit_scalar_check_downcast(
    e: _Emitter, reg: int, line: int,
    width: str = "f32", widths: tuple = DEFAULT_WIDTHS,
) -> None:
    """Flag-test *reg*'s low lane; downcast in place if not yet at *width*.

    A slot already replaced at a *different* live width is first upcast
    back to double (through the f64 hub) before narrowing to *width*, so
    mixed-width data flow re-rounds exactly once per site.
    """
    skip = e.fresh("sk")
    x = Xmm(reg)
    r12 = Reg(_SCRATCH_GPR)
    flag, flag_shifted, down, _up = _WIDTH_OPS[width]
    e.emit(Op.MOVQRX, r12, x, line=line)
    e.emit(Op.SHR, r12, Imm(32), line=line)
    e.emit(Op.CMP, r12, Imm(flag), line=line)
    e.emit(Op.JE, LabelRef(skip), line=line)
    for other in widths:
        if other == width:
            continue
        o_flag, _o_shifted, _o_down, o_up = _WIDTH_OPS[other]
        plain = e.fresh("sk")
        e.emit(Op.CMP, r12, Imm(o_flag), line=line)
        e.emit(Op.JNE, LabelRef(plain), line=line)
        e.emit(o_up, x, x, line=line)
        e.mark(plain)
    e.emit(down, x, x, line=line)
    e.emit(Op.MOVQRX, r12, x, line=line)
    e.emit(Op.AND, r12, Imm(_LOW_MASK), line=line)
    e.emit(Op.OR, r12, Imm(flag_shifted), line=line)
    e.emit(Op.MOVQXR, x, r12, line=line)
    e.mark(skip)
    e.stats.checks_emitted += 1


def _emit_scalar_check_upcast(
    e: _Emitter, reg: int, line: int, widths: tuple = DEFAULT_WIDTHS
) -> None:
    """Flag-test *reg*'s low lane; upcast in place if it was replaced."""
    skip = e.fresh("sk")
    x = Xmm(reg)
    r12 = Reg(_SCRATCH_GPR)
    e.emit(Op.MOVQRX, r12, x, line=line)
    e.emit(Op.SHR, r12, Imm(32), line=line)
    for pos, width in enumerate(widths):
        flag, _shifted, _down, up = _WIDTH_OPS[width]
        last = pos == len(widths) - 1
        miss = skip if last else e.fresh("sk")
        e.emit(Op.CMP, r12, Imm(flag), line=line)
        e.emit(Op.JNE, LabelRef(miss), line=line)
        e.emit(up, x, x, line=line)
        if not last:
            e.emit(Op.JMP, LabelRef(skip), line=line)
            e.mark(miss)
    e.mark(skip)
    e.stats.checks_emitted += 1


def _emit_scalar_flag_set(
    e: _Emitter, reg: int, line: int, width: str = "f32"
) -> None:
    """Force the sentinel into *reg*'s low lane high word (fresh results)."""
    x = Xmm(reg)
    r12 = Reg(_SCRATCH_GPR)
    e.emit(Op.MOVQRX, r12, x, line=line)
    e.emit(Op.AND, r12, Imm(_LOW_MASK), line=line)
    e.emit(Op.OR, r12, Imm(_WIDTH_OPS[width][1]), line=line)
    e.emit(Op.MOVQXR, x, r12, line=line)


def _emit_packed_check_downcast(
    e: _Emitter, reg: int, lane: int, line: int,
    widths: tuple = DEFAULT_WIDTHS,
) -> None:
    # Packed candidates only narrow to f32 (the 16-bit families have no
    # packed members), but a lane may still *hold* a 16-bit-replaced
    # value left by an earlier scalar site — rehydrate it first.
    skip = e.fresh("pk")
    x = Xmm(reg)
    x14 = Xmm(_SCRATCH_XMM2)
    r12 = Reg(_SCRATCH_GPR)
    r13 = Reg(_SCRATCH_GPR2)
    e.emit(Op.PEXTR, r12, x, Imm(lane), line=line)
    e.emit(Op.MOV, r13, r12, line=line)
    e.emit(Op.SHR, r13, Imm(32), line=line)
    e.emit(Op.CMP, r13, Imm(REPLACED_FLAG), line=line)
    e.emit(Op.JE, LabelRef(skip), line=line)
    for other in widths:
        if other == "f32":
            continue
        o_flag, _o_shifted, _o_down, o_up = _WIDTH_OPS[other]
        plain = e.fresh("pk")
        e.emit(Op.CMP, r13, Imm(o_flag), line=line)
        e.emit(Op.JNE, LabelRef(plain), line=line)
        e.emit(Op.MOVQXR, x14, r12, line=line)
        e.emit(o_up, x14, x14, line=line)
        e.emit(Op.MOVQRX, r12, x14, line=line)
        e.mark(plain)
    e.emit(Op.MOVQXR, x14, r12, line=line)
    e.emit(Op.CVTSD2SS, x14, x14, line=line)
    e.emit(Op.MOVQRX, r12, x14, line=line)
    e.emit(Op.AND, r12, Imm(_LOW_MASK), line=line)
    e.emit(Op.OR, r12, Imm(REPLACED_FLAG_SHIFTED), line=line)
    e.emit(Op.PINSR, x, r12, Imm(lane), line=line)
    e.mark(skip)
    e.stats.checks_emitted += 1


def _emit_packed_check_upcast(
    e: _Emitter, reg: int, lane: int, line: int,
    widths: tuple = DEFAULT_WIDTHS,
) -> None:
    skip = e.fresh("pk")
    x = Xmm(reg)
    x14 = Xmm(_SCRATCH_XMM2)
    r12 = Reg(_SCRATCH_GPR)
    r13 = Reg(_SCRATCH_GPR2)
    e.emit(Op.PEXTR, r12, x, Imm(lane), line=line)
    e.emit(Op.MOV, r13, r12, line=line)
    e.emit(Op.SHR, r13, Imm(32), line=line)
    for pos, width in enumerate(widths):
        flag, _shifted, _down, up = _WIDTH_OPS[width]
        last = pos == len(widths) - 1
        miss = skip if last else e.fresh("pk")
        e.emit(Op.CMP, r13, Imm(flag), line=line)
        e.emit(Op.JNE, LabelRef(miss), line=line)
        e.emit(Op.MOVQXR, x14, r12, line=line)
        e.emit(up, x14, x14, line=line)
        e.emit(Op.MOVQRX, r12, x14, line=line)
        e.emit(Op.PINSR, x, r12, Imm(lane), line=line)
        if not last:
            e.emit(Op.JMP, LabelRef(skip), line=line)
            e.mark(miss)
    e.mark(skip)
    e.stats.checks_emitted += 1


def _emit_packed_flag_fix(e: _Emitter, reg: int, line: int) -> None:
    """Restore the sentinel in both lanes of a packed-single result."""
    x = Xmm(reg)
    r12 = Reg(_SCRATCH_GPR)
    for lane in (0, 1):
        e.emit(Op.PEXTR, r12, x, Imm(lane), line=line)
        e.emit(Op.AND, r12, Imm(_LOW_MASK), line=line)
        e.emit(Op.OR, r12, Imm(REPLACED_FLAG_SHIFTED), line=line)
        e.emit(Op.PINSR, x, r12, Imm(lane), line=line)


def emit_single_snippet(
    builder: AsmBuilder,
    instr: Instruction,
    stats: SnippetStats,
    precleaned: frozenset[int] = frozenset(),
    streamline: bool = False,
    width: str = "f32",
    widths: tuple = DEFAULT_WIDTHS,
) -> None:
    """Emit the narrow replacement of *instr* at *width* (paper Figure 6).

    ``width="f32"`` is the paper's single-precision snippet; ``bf16`` /
    ``f16`` swap in that family's equivalent opcode and sentinel.
    *widths* lists every narrow width live in the configuration so the
    input guards can rehydrate values replaced at sibling widths.
    """
    _check_conflicts(instr)
    e = _Emitter(builder, stats, streamline, instr.addr)
    info = OPCODE_INFO[instr.opcode]
    line = instr.line
    packed = info.packed
    mem = _mem_fp_input(instr)

    narrow_equiv = NARROW_FAMILIES[width][0].get(instr.opcode)
    if narrow_equiv is None:
        raise SnippetError(
            f"instruction at {instr.addr:#x} ({info.mnemonic}) has no "
            f"{width} equivalent"
        )

    if mem is not None:
        e.save(Op.PUSHX, Xmm(_SCRATCH_XMM), line)
        load = Op.MOVAPD if packed else Op.MOVSD
        e.emit(load, Xmm(_SCRATCH_XMM), mem, line=line)
    e.save(Op.PUSH, Reg(_SCRATCH_GPR), line)
    if packed:
        e.save(Op.PUSH, Reg(_SCRATCH_GPR2), line)
        e.save(Op.PUSHX, Xmm(_SCRATCH_XMM2), line)

    checked = _fp_input_regs(instr, mem_to_scratch=True)
    for reg in checked:
        if packed:
            _emit_packed_check_downcast(e, reg, 0, line, widths)
            _emit_packed_check_downcast(e, reg, 1, line, widths)
        else:
            _emit_scalar_check_downcast(e, reg, line, width, widths)

    new_operands = _rewrite_mem_operands(instr)
    e.emit(narrow_equiv, *new_operands, line=line)

    # Fix result flags where the hardware does not preserve the sentinel.
    if info.fp_out:
        dst = instr.operands[info.fp_out[0]]
        assert isinstance(dst, Xmm)
        if packed:
            _emit_packed_flag_fix(e, dst.index, line)
        elif dst.index not in checked:
            _emit_scalar_flag_set(e, dst.index, line, width)

    if packed:
        e.save(Op.POPX, Xmm(_SCRATCH_XMM2), line)
        e.save(Op.POP, Reg(_SCRATCH_GPR2), line)
    e.save(Op.POP, Reg(_SCRATCH_GPR), line)
    if mem is not None:
        e.save(Op.POPX, Xmm(_SCRATCH_XMM), line)

    stats.replaced_single += 1
    key = info.mnemonic
    stats.by_opcode[key] = stats.by_opcode.get(key, 0) + 1


def emit_move_guard(
    builder: AsmBuilder,
    instr: Instruction,
    stats: SnippetStats,
    streamline: bool = False,
) -> None:
    """Guard a floating-point *move* with a flag check (base-case mode).

    The paper's overhead experiment "replaces all instructions with
    double-precision snippets", data movement included.  A move needs no
    conversion — a replaced slot is copied verbatim — so the snippet is
    the flag test alone on the moved value; with nothing replaced (the
    base case) the check always falls through and the program's results
    are bit-for-bit unchanged.
    """
    _check_conflicts(instr)
    e = _Emitter(builder, stats, streamline, instr.addr)
    line = instr.line
    e.emit(instr.opcode, *instr.operands, line=line)
    # Check the register side of the move (destination for loads and
    # register moves, source for stores).
    dst = instr.operands[0]
    if not isinstance(dst, Xmm):
        dst = instr.operands[1]
    if not isinstance(dst, Xmm):
        stats.wrapped_double += 1
        return
    skip = e.fresh("mg")
    r12 = Reg(_SCRATCH_GPR)
    e.save(Op.PUSH, r12, line)
    e.emit(Op.MOVQRX, r12, dst, line=line)
    e.emit(Op.SHR, r12, Imm(32), line=line)
    e.emit(Op.CMP, r12, Imm(REPLACED_FLAG), line=line)
    e.emit(Op.JNE, LabelRef(skip), line=line)
    e.mark(skip)
    e.save(Op.POP, r12, line)
    stats.wrapped_double += 1
    stats.checks_emitted += 1


def emit_double_snippet(
    builder: AsmBuilder,
    instr: Instruction,
    stats: SnippetStats,
    precleaned: frozenset[int] = frozenset(),
    streamline: bool = False,
    widths: tuple = DEFAULT_WIDTHS,
) -> None:
    """Emit the double-precision guard around *instr*.

    The instruction itself is unchanged, but every floating-point input is
    flag-tested and upcast in place if some earlier replaced instruction
    left a single-precision value there.  *precleaned* lists XMM registers
    statically known to hold plain doubles here (redundant-check
    elimination, the paper's Section 2.5 data-flow optimization) — their
    checks are skipped.
    """
    _check_conflicts(instr)
    e = _Emitter(builder, stats, streamline, instr.addr)
    info = OPCODE_INFO[instr.opcode]
    line = instr.line
    packed = info.packed
    mem = _mem_fp_input(instr)

    checked = _fp_input_regs(instr, mem_to_scratch=mem is not None)
    to_check = [r for r in checked if r not in precleaned or r == _SCRATCH_XMM]
    stats.checks_skipped += len(checked) - len(to_check)

    if not to_check and mem is None:
        # Nothing to guard: emit the instruction bare.
        e.emit(instr.opcode, *instr.operands, line=line)
        stats.wrapped_double += 1
        return

    if mem is not None:
        e.save(Op.PUSHX, Xmm(_SCRATCH_XMM), line)
        load = Op.MOVAPD if packed else Op.MOVSD
        e.emit(load, Xmm(_SCRATCH_XMM), mem, line=line)
    e.save(Op.PUSH, Reg(_SCRATCH_GPR), line)
    if packed:
        e.save(Op.PUSH, Reg(_SCRATCH_GPR2), line)
        e.save(Op.PUSHX, Xmm(_SCRATCH_XMM2), line)

    for reg in to_check:
        if packed:
            _emit_packed_check_upcast(e, reg, 0, line, widths)
            _emit_packed_check_upcast(e, reg, 1, line, widths)
        else:
            _emit_scalar_check_upcast(e, reg, line, widths)

    e.emit(instr.opcode, *_rewrite_mem_operands(instr), line=line)

    if packed:
        e.save(Op.POPX, Xmm(_SCRATCH_XMM2), line)
        e.save(Op.POP, Reg(_SCRATCH_GPR2), line)
    e.save(Op.POP, Reg(_SCRATCH_GPR), line)
    if mem is not None:
        e.save(Op.POPX, Xmm(_SCRATCH_XMM), line)

    stats.wrapped_double += 1
