"""Static data-flow analysis for redundant-check elimination.

The paper's Section 2.5 proposes reducing overhead by "detecting
instructions that never encounter replaced double-precision numbers under
a given configuration".  This module implements the intra-block version:
it tracks, through each basic block, the set of XMM registers *proven* to
hold plain (unflagged) doubles, and reports that set at every
double-policy candidate so its guard snippet can skip those checks.

The analysis is deliberately conservative:

* the clean set is empty at block entry (no cross-block propagation);
* a call kills everything (callees are free to clobber XMM state);
* any write whose provenance we do not model (memory loads, bit moves,
  pops, MPI results) kills the written register;
* a narrow-policy candidate (single, bfloat16, binary16) marks all
  registers it touches as flagged.
"""

from __future__ import annotations

from repro.binary.model import Program
from repro.config.model import Policy
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OPCODE_INFO
from repro.isa.operands import Mem, Xmm


def compute_precleaned(
    program: Program, policies: dict[int, Policy]
) -> dict[int, frozenset[int]]:
    """Map candidate address -> XMM registers statically clean there."""
    out: dict[int, frozenset[int]] = {}
    for fn in program.functions:
        for block in fn.blocks:
            block_precleaned(block.instructions, policies, out)
    return out


def block_precleaned(
    instructions: list[Instruction],
    policies: dict[int, Policy],
    out: dict[int, frozenset[int]] | None = None,
) -> dict[int, frozenset[int]]:
    """The per-block body of :func:`compute_precleaned`.

    The clean set is empty at block entry and never crosses block
    boundaries, so the result for one block depends only on that block's
    instructions and the policies of its own candidates — the property
    the instrumentation cache's per-block content addressing relies on.
    """
    if out is None:
        out = {}
    clean: set[int] = set()
    for instr in instructions:
        if instr.is_candidate:
            policy = policies.get(instr.addr, Policy.DOUBLE)
            if policy is Policy.DOUBLE:
                out[instr.addr] = frozenset(clean)
                _apply_double(instr, clean)
            elif policy.is_narrow:
                _apply_single(instr, clean)
            else:  # IGNORE: untouched instruction, unknown effects
                _kill_writes(instr, clean)
        else:
            _apply_plain(instr, clean)
    return out


def _xmm_inputs(instr: Instruction) -> list[int]:
    info = OPCODE_INFO[instr.opcode]
    return [
        instr.operands[i].index
        for i in info.fp_in
        if isinstance(instr.operands[i], Xmm)
    ]


def _xmm_writes(instr: Instruction) -> list[int]:
    info = OPCODE_INFO[instr.opcode]
    return [
        instr.operands[i].index
        for i in info.writes
        if i < len(instr.operands) and isinstance(instr.operands[i], Xmm)
    ]


def _apply_double(instr: Instruction, clean: set[int]) -> None:
    # The guard upcast every FP input in place; the result is a fresh double.
    clean.update(_xmm_inputs(instr))
    clean.update(_xmm_writes(instr))


def _apply_single(instr: Instruction, clean: set[int]) -> None:
    # Inputs were downcast in place and the result carries the sentinel.
    for reg in _xmm_inputs(instr):
        clean.discard(reg)
    for reg in _xmm_writes(instr):
        clean.discard(reg)


def _kill_writes(instr: Instruction, clean: set[int]) -> None:
    for reg in _xmm_writes(instr):
        clean.discard(reg)


def _apply_plain(instr: Instruction, clean: set[int]) -> None:
    op = instr.opcode
    info = OPCODE_INFO[op]
    if info.is_call:
        clean.clear()
        return
    if op in (Op.MOVSD, Op.MOVAPD):
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            if isinstance(src, Xmm):
                if src.index in clean:
                    clean.add(dst.index)
                else:
                    clean.discard(dst.index)
            else:  # memory load: unknown provenance
                clean.discard(dst.index)
        return
    if op is Op.CVTSS2SD:
        clean.add(instr.operands[0].index)
        return
    _kill_writes(instr, clean)
