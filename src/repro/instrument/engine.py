"""Top-level instrumentation entry point.

``instrument(program, config)`` produces the mixed-precision executable
for a configuration.  The key rule from the paper (Section 2.3): *once
any instruction is replaced with its single-precision equivalent, every
floating-point instruction must be snippeted* — even the ones kept in
double precision — because any of them might receive a replaced value
and needs the check-and-upcast guard.  Anything the analysis misses
surfaces as NaN (the sentinel is a NaN payload), which fails verification
loudly instead of silently mis-rounding.

Modes
-----
``auto``
    Snippet everything iff the configuration marks at least one
    instruction narrow — single or a 16-bit lattice width (the paper's
    rule, generalized down the lattice).
``all``
    Snippet everything regardless, *including floating-point moves*,
    which get a check-only guard — the paper's base-case overhead
    experiment ("replacing all instructions with double-precision
    snippets ... does not affect the semantics or results").
``none``
    Copy verbatim (layout round-trip; used in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binary.model import Program
from repro.config.model import Config, Policy
from repro.instrument.dataflow import compute_precleaned
from repro.instrument.rewriter import rewrite
from repro.instrument.snippets import SnippetError, SnippetStats, live_widths
from repro.telemetry import NULL_TELEMETRY


class InstrumentError(Exception):
    """Instrumentation could not be applied."""


@dataclass(slots=True)
class InstrumentedProgram:
    """Result of instrumenting one program under one configuration."""

    program: Program
    original: Program
    config: Config
    stats: SnippetStats
    snippeted: bool
    #: ordered (template bytes, base address) pairs tiling the text when
    #: the program came out of an :class:`InstrumentCache`; the VM's
    #: compiled-closure cache keys on these.  ``None`` on the cold path.
    segments: tuple | None = None

    @property
    def growth(self) -> float:
        """Text-size growth factor of the rewritten binary."""
        return len(self.program.text) / max(1, len(self.original.text))


def _scratch_registers_unused(program: Program) -> bool:
    """True if no instruction in *program* touches the snippet-reserved
    registers (R12/R13, X14/X15) — compiler output never does."""
    from repro.isa.operands import Mem, Reg, Xmm
    from repro.isa.registers import SNIPPET_GPRS, SNIPPET_XMMS

    for instr in program.decode_all():
        for operand in instr.operands:
            if isinstance(operand, Reg) and operand.index in SNIPPET_GPRS:
                return False
            if isinstance(operand, Xmm) and operand.index in SNIPPET_XMMS:
                return False
            if isinstance(operand, Mem):
                if operand.base in SNIPPET_GPRS or operand.index in SNIPPET_GPRS:
                    return False
    return True


def instrument(
    program: Program,
    config: Config,
    mode: str = "auto",
    optimize_checks: bool = False,
    streamline: bool = False,
    telemetry=None,
    cache=None,
    policies: dict[int, Policy] | None = None,
) -> InstrumentedProgram:
    """Build the mixed-precision executable for *config* (see module doc).

    *streamline* implements the paper's Section 2.5 suggestion of
    emitting "more compact and efficient snippets": the scratch-register
    save/restore around every snippet is elided.  Only legal when the
    program provably never uses those registers; the engine verifies this
    statically and raises otherwise.

    *cache* may be an :class:`~repro.instrument.cache.InstrumentCache`
    bound to *program*; block templates are then reused across calls and
    only blocks whose policy slice changed are re-snippeted.  The output
    is byte-identical to the uncached path.  *policies* short-circuits
    ``config.instruction_policies()`` when the caller already has the
    resolved map (the evaluators do).
    """
    if mode not in ("auto", "all", "none"):
        raise InstrumentError(f"unknown mode {mode!r}")
    if cache is not None and cache.program is not program:
        raise InstrumentError("instrument cache is bound to a different program")
    if streamline:
        scratch_free = (
            cache.scratch_registers_unused()
            if cache is not None
            else _scratch_registers_unused(program)
        )
        if not scratch_free:
            raise InstrumentError(
                "streamline requested but the program uses snippet-reserved "
                "registers; save/restore cannot be elided safely"
            )
    if policies is None:
        policies = config.instruction_policies()
    has_narrow = any(p.is_narrow for p in policies.values())
    snippet_all = mode == "all" or (mode == "auto" and has_narrow)
    widths = live_widths(policies)

    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    segments = None
    if cache is not None:
        try:
            cached = cache.instrument(
                policies, snippet_all,
                wrap_moves=(mode == "all"), streamline=streamline,
                optimize_checks=optimize_checks, widths=widths,
            )
        except SnippetError as exc:
            raise InstrumentError(str(exc)) from exc
        new_program = cached.program
        stats = cached.stats
        segments = cached.segments
        telemetry.count("instr.block_cache_hits", cached.block_hits)
        telemetry.count("instr.block_cache_misses", cached.block_misses)
    else:
        precleaned = None
        if optimize_checks and snippet_all:
            precleaned = compute_precleaned(program, policies)

        stats = SnippetStats()
        try:
            new_program = rewrite(
                program, policies, snippet_all, stats, precleaned,
                wrap_moves=(mode == "all"), streamline=streamline,
                widths=widths,
            )
        except SnippetError as exc:
            raise InstrumentError(str(exc)) from exc
    result = InstrumentedProgram(
        program=new_program,
        original=program,
        config=config,
        stats=stats,
        snippeted=snippet_all,
        segments=segments,
    )
    if telemetry.enabled:
        telemetry.emit(
            "instr.stats",
            program=program.name,
            mode=mode,
            replaced_single=stats.replaced_single,
            wrapped_double=stats.wrapped_double,
            ignored=stats.ignored,
            copied=stats.copied,
            checks_emitted=stats.checks_emitted,
            checks_skipped=stats.checks_skipped,
            snippet_instructions=stats.snippet_instructions,
            saves_elided=stats.saves_elided,
            blocks_split=stats.blocks_split,
            bytes_grown=len(new_program.text) - len(program.text),
            growth=round(result.growth, 4),
        )
    return result
