"""Content-addressed per-block instrumentation cache.

The BFS tests hundreds of configurations that differ in a handful of
instruction flags, yet the seed pipeline re-snippets and re-encodes every
basic block for each of them.  This module makes the marginal cost of
instrumenting a configuration proportional to the *delta* from previously
seen configurations: each basic block is compiled once per distinct
*(policy slice, mode flags)* into a relocatable :class:`BlockTemplate`,
and :meth:`InstrumentCache.instrument` merely lays the cached templates
out and patches their relocations.

Why per-block content addressing is sound
-----------------------------------------
A block's emitted code is a pure function of

* the block's own instruction sequence (fixed for the lifetime of the
  cache, which is bound to one original program),
* the policies of the block's own candidates (``rewrite`` resolves every
  candidate with ``policies.get(addr, Policy.DOUBLE)``),
* the mode switches ``(snippet_all, wrap_moves, streamline,
  optimize_checks)`` plus the configuration's live narrow width tuple
  (a program-global fact: guard chains in *every* block test one
  sentinel per live width, so it keys templates like a mode switch),

because the redundant-check analysis (`compute_precleaned`) is strictly
intra-block — its clean set is empty at block entry.  Label *names* never
reach the byte stream (a ``LabelRef`` encodes as a zeroed ``Imm`` slot
resolved at layout time), so templates are position-independent byte
strings plus a relocation table.

Byte identity with the cold path
--------------------------------
Templates are built by the very same ``_emit_instruction`` /
snippet-emitter code the :class:`~repro.asm.builder.AsmBuilder` path
runs, blocks are laid out in the same order, and relocations write the
same 8-byte little-endian immediates ``AsmBuilder.link`` would resolve —
so the assembled text is byte-for-byte identical to an uncached
``rewrite`` of the same configuration (the differential tests in
``tests/instrument/test_incremental_cache.py`` enforce this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.builder import LabelRef
from repro.binary.model import BasicBlock, FunctionInfo, Program
from repro.config.model import Policy
from repro.instrument.dataflow import block_precleaned
from repro.instrument.rewriter import _addr_label, _emit_instruction
from repro.instrument.snippets import DEFAULT_WIDTHS, SnippetStats
from repro.isa.encode import encode_instruction
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, KIND_IMM, KIND_MEM, KIND_REG, KIND_XMM

_M64 = 0xFFFFFFFFFFFFFFFF

# Relocation kinds: template-relative, original-address label, function name.
_REL_LOCAL = 0
_REL_ADDR = 1
_REL_FUNC = 2


class _TemplateBuilder:
    """Minimal stand-in for :class:`AsmBuilder` during template capture.

    Records the emitted instruction stream and label marks of one block;
    performs no layout.  Fresh labels are template-local — their names
    never encode, so a per-template counter preserves byte identity with
    the builder's global counter.
    """

    __slots__ = ("items", "_counter")

    def __init__(self) -> None:
        self.items: list = []  # (opcode, operands, line) | label str
        self._counter = 0

    def emit(self, opcode, *operands, line: int = 0) -> None:
        self.items.append((opcode, operands, line))

    def mark(self, label: str) -> None:
        self.items.append(label)

    def fresh_label(self, stem: str = "L") -> str:
        self._counter += 1
        return f".{stem}{self._counter}"


def _operand_width(operand) -> int:
    kind = operand.kind  # LabelRef reports KIND_IMM
    if kind == KIND_REG or kind == KIND_XMM:
        return 2
    if kind == KIND_IMM:
        return 9
    if kind == KIND_MEM:
        return 12
    raise ValueError(f"cannot lay out operand {operand!r}")


@dataclass(slots=True)
class BlockTemplate:
    """One basic block, instrumented and encoded position-independently."""

    #: encoded block code with every label operand's payload zeroed
    code: bytes
    #: (payload offset, kind, value) — 8-byte LE patches at assembly time
    relocs: tuple
    #: (original instruction address, template-relative offset)
    defs: tuple
    #: (template-relative offset, source line) for debug info
    lines: tuple
    #: this block's share of the instrumentation counters
    stats: SnippetStats


def build_block_template(
    block: BasicBlock,
    entry_names: dict[int, str],
    policies: dict[int, Policy],
    snippet_all: bool,
    wrap_moves: bool,
    streamline: bool,
    optimize_checks: bool,
    widths: tuple = DEFAULT_WIDTHS,
) -> BlockTemplate:
    """Instrument one block into a relocatable template (the cold path of
    the cache; byte-compatible with the AsmBuilder-based rewriter)."""
    precleaned: dict[int, frozenset[int]] = {}
    if optimize_checks and snippet_all:
        block_precleaned(block.instructions, policies, precleaned)

    builder = _TemplateBuilder()
    stats = SnippetStats()
    for instr in block.instructions:
        builder.mark(_addr_label(instr.addr))
        _emit_instruction(
            builder, instr, entry_names, policies, snippet_all, stats,
            precleaned.get(instr.addr, frozenset()), wrap_moves, streamline,
            widths,
        )
    if stats.replaced_single + stats.wrapped_double:
        stats.blocks_split = 1

    # Layout pass: assign template-relative offsets, collect label defs.
    label_off: dict[str, int] = {}
    pending: list = []  # (opcode, operands, line, offset)
    offset = 0
    for item in builder.items:
        if isinstance(item, str):
            label_off[item] = offset
        else:
            opcode, operands, line = item
            pending.append((opcode, operands, line, offset))
            offset += 3 + sum(_operand_width(o) for o in operands)

    # Encoding pass: zero label payloads, record their patch positions.
    chunks: list[bytes] = []
    relocs: list = []
    lines: list = []
    for opcode, operands, line, off in pending:
        resolved = []
        payload = 3
        for operand in operands:
            if isinstance(operand, LabelRef):
                name = operand.name
                local = label_off.get(name)
                if local is not None:
                    relocs.append((off + payload + 1, _REL_LOCAL, local))
                elif name.startswith(".A"):
                    relocs.append((off + payload + 1, _REL_ADDR, int(name[2:], 16)))
                else:
                    relocs.append((off + payload + 1, _REL_FUNC, name))
                resolved.append(Imm(0))
            else:
                resolved.append(operand)
            payload += _operand_width(operand)
        raw = encode_instruction(Instruction(opcode, tuple(resolved)))
        assert len(raw) == payload, "layout/encoding width mismatch"
        if line:
            lines.append((off, line))
        chunks.append(raw)

    return BlockTemplate(
        code=b"".join(chunks),
        relocs=tuple(relocs),
        defs=tuple((instr.addr, label_off[_addr_label(instr.addr)])
                   for instr in block.instructions),
        lines=tuple(lines),
        stats=stats,
    )


@dataclass(slots=True)
class CachedRewrite:
    """Result of one cache-backed rewrite."""

    program: Program
    stats: SnippetStats
    #: ordered (template code bytes, base address) pairs tiling the text;
    #: the VM's compiled-closure cache keys on the (unpatched) code bytes
    segments: tuple
    block_hits: int
    block_misses: int


class InstrumentCache:
    """Per-program cache of instrumented block templates.

    Bound to one original :class:`Program`; :meth:`instrument` produces
    the mixed-precision executable for a policy map by assembling cached
    block templates, building only the templates whose policy slice has
    not been seen before.  Thread the same instance through every
    evaluation of a search (``repro.search.evaluator`` does).
    """

    def __init__(self, program: Program, max_templates: int = 65536) -> None:
        program.ensure_cfg()
        self.program = program
        self.max_templates = max_templates
        self.hits = 0
        self.misses = 0
        self._templates: dict = {}
        self._scratch_ok: bool | None = None

        self.entry_names = {fn.entry: fn.name for fn in program.functions}
        entry_name = self.entry_names.get(program.entry)
        if entry_name is None:
            raise ValueError("program entry is not a function entry")
        self.entry_name = entry_name

        # (function name, module, blocks, per-block candidate addresses)
        self._functions = [
            (
                fn.name,
                fn.module,
                fn.blocks,
                [
                    tuple(i.addr for i in block.instructions if i.is_candidate)
                    for block in fn.blocks
                ],
            )
            for fn in program.functions
        ]
        # Modules exactly as the rewriter's builder.module() calls register
        # them: unique function modules in first-appearance order.
        modules: list[str] = []
        for fn in program.functions:
            if fn.module not in modules:
                modules.append(fn.module)
        self._modules = modules or ["main"]

        # Reproduce the data section exactly as the builder lays it out
        # (same per-symbol concatenation, same drift assertion).
        image: list[int] = []
        for symbol in sorted(program.globals.values(), key=lambda s: s.addr):
            if symbol.addr != len(image):
                raise AssertionError("data layout drifted during rewrite")
            init = program.data_image[symbol.addr : symbol.addr + symbol.words]
            image.extend(c & _M64 for c in init)
        self._data_image = image
        self._globals = dict(program.globals)

    def scratch_registers_unused(self) -> bool:
        """Cached result of the streamline-safety scan."""
        if self._scratch_ok is None:
            from repro.instrument.engine import _scratch_registers_unused

            self._scratch_ok = _scratch_registers_unused(self.program)
        return self._scratch_ok

    def instrument(
        self,
        policies: dict[int, Policy],
        snippet_all: bool,
        wrap_moves: bool,
        streamline: bool,
        optimize_checks: bool,
        widths: tuple = DEFAULT_WIDTHS,
    ) -> CachedRewrite:
        """Assemble the executable implementing *policies* (see class doc)."""
        variant = (snippet_all, wrap_moves, streamline, optimize_checks, widths)
        templates = self._templates
        hits = misses = 0

        # Pass 1: fetch or build each block's template; lay out addresses.
        func_addrs: dict[str, int] = {}
        placed: list = []       # (name, module, entry, end)
        order: list = []        # (template, base address)
        addr_map: dict[int, int] = {}  # original address -> new address
        offset = 0
        for name, module, blocks, candidate_lists in self._functions:
            func_addrs[name] = offset
            start = offset
            for block, candidates in zip(blocks, candidate_lists):
                key = (
                    variant,
                    block.start,
                    tuple(policies.get(a, Policy.DOUBLE) for a in candidates),
                )
                template = templates.get(key)
                if template is None:
                    misses += 1
                    template = build_block_template(
                        block, self.entry_names, policies, snippet_all,
                        wrap_moves, streamline, optimize_checks, widths,
                    )
                    if len(templates) >= self.max_templates:
                        templates.clear()  # crude epoch flush; see docs
                    templates[key] = template
                else:
                    hits += 1
                order.append((template, offset))
                for orig_addr, rel in template.defs:
                    addr_map[orig_addr] = offset + rel
                offset += len(template.code)
            placed.append((name, module, start, offset))

        # Pass 2: concatenate and patch relocations.
        buf = bytearray()
        for template, _base in order:
            buf += template.code
        debug_lines: dict[int, int] = {}
        stats = SnippetStats()
        for template, base in order:
            for position, kind, value in template.relocs:
                if kind == _REL_LOCAL:
                    target = base + value
                elif kind == _REL_ADDR:
                    target = addr_map[value]
                else:
                    target = func_addrs[value]
                p = base + position
                buf[p : p + 8] = target.to_bytes(8, "little")
            for rel, line in template.lines:
                debug_lines[base + rel] = line
            stats.merge(template.stats)

        new_program = Program(
            text=bytes(buf),
            entry=func_addrs[self.entry_name],
            functions=[
                FunctionInfo(name, module, entry, end)
                for name, module, entry, end in placed
            ],
            data_image=list(self._data_image),
            globals=dict(self._globals),
            modules=list(self._modules),
            debug_lines=debug_lines,
            name=self.program.name,
        )
        self.hits += hits
        self.misses += misses
        return CachedRewrite(
            program=new_program,
            stats=stats,
            segments=tuple((template.code, base) for template, base in order),
            block_hits=hits,
            block_misses=misses,
        )
