"""Basic-block patching and binary rewriting (paper Section 2.4, Figure 7).

For every function, every basic block is walked instruction by
instruction.  Each floating-point candidate conceptually splits its block
into *before / instruction / after*; the snippet code is spliced where
the instruction was and the surrounding edges re-point to it.  Because
the splice is inline, re-linearizing the patched CFG is exactly the
original layout with snippets expanded in place — which is what this
rewriter emits through the :class:`~repro.asm.builder.AsmBuilder`.

Every original instruction address becomes a label in the new program;
branch operands are rewritten from absolute addresses to those labels, so
control flow survives arbitrary code growth.  Call targets resolve to
function-entry labels, and return addresses need no fix-up at all: the
rewritten ``call`` pushes the *new* return address at run time.
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder, LabelRef
from repro.binary.model import Program
from repro.config.model import Config, Policy
from repro.instrument.snippets import (
    DEFAULT_WIDTHS,
    POLICY_WIDTHS,
    SnippetStats,
    emit_double_snippet,
    emit_move_guard,
    emit_single_snippet,
)
from repro.isa.opcodes import Op
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_INFO
from repro.isa.operands import Imm


def _addr_label(addr: int) -> str:
    return f".A{addr:x}"


#: id(original program) -> (program, {site key: (items, stats delta)}).
#: One instruction's emission is a pure function of (instruction identity,
#: its policy, its precleaned set, the mode switches) — the same facts the
#: block-template cache keys on — so the expansion captured on first
#: emission is replayed verbatim on every later rewrite of the same
#: program.  Snippet labels are site-scoped (see ``_Emitter.fresh``), so
#: replayed and freshly generated labels can never collide.  The strong
#: program reference pins the id; the FIFO cap bounds memory when many
#: distinct programs flow through one process.
_REPLAY: dict[int, tuple[Program, dict]] = {}
_REPLAY_MAX = 8



def _replay_sites(program: Program) -> dict:
    entry = _REPLAY.get(id(program))
    if entry is None:
        if len(_REPLAY) >= _REPLAY_MAX:
            _REPLAY.pop(next(iter(_REPLAY)))
        entry = (program, {})
        _REPLAY[id(program)] = entry
    return entry[1]


def rewrite(
    program: Program,
    policies: dict[int, Policy],
    snippet_all: bool,
    stats: SnippetStats,
    precleaned: dict[int, frozenset[int]] | None = None,
    wrap_moves: bool = False,
    streamline: bool = False,
    widths: tuple = DEFAULT_WIDTHS,
) -> Program:
    """Produce a new executable implementing *policies* over *program*.

    ``policies`` maps candidate addresses to their resolved precision.
    When *snippet_all* is true, every candidate not marked IGNORE gets a
    snippet (narrow policy -> replacement snippet at that width, DOUBLE ->
    guard snippet); when false, the program is copied verbatim (used to
    round-trip layout).  ``precleaned`` optionally maps an instruction
    address to XMM registers proven clean there (redundant-check
    elimination).  ``widths`` is the configuration's live narrow width
    tuple (see :func:`repro.instrument.snippets.live_widths`).
    """
    builder = AsmBuilder(program.name + "+instr")

    # Reproduce the data section exactly (same addresses).
    for symbol in sorted(program.globals.values(), key=lambda s: s.addr):
        init = program.data_image[symbol.addr : symbol.addr + symbol.words]
        addr = builder.global_(symbol.name, symbol.words, init)
        if addr != symbol.addr:
            raise AssertionError("data layout drifted during rewrite")

    entry_names = {fn.entry: fn.name for fn in program.functions}
    entry_name = entry_names.get(program.entry)
    if entry_name is None:
        raise ValueError("program entry is not a function entry")
    precleaned = precleaned or {}

    sites = _replay_sites(program)
    variant = (snippet_all, wrap_moves, streamline, widths)
    for fn in program.functions:
        builder.module(fn.module)
        builder.func(fn.name)
        for block in fn.blocks:
            snippets_before = stats.replaced_single + stats.wrapped_double
            for instr in block.instructions:
                addr = instr.addr
                builder.mark(_addr_label(addr))
                key = (addr, policies.get(addr), precleaned.get(addr), variant)
                hit = sites.get(key)
                if hit is not None:
                    builder.replay(hit[0])
                    d_rs, d_wd, d_ig, d_cp, d_ce, d_cs, d_si, d_se, mn = hit[1]
                    stats.replaced_single += d_rs
                    stats.wrapped_double += d_wd
                    stats.ignored += d_ig
                    stats.copied += d_cp
                    stats.checks_emitted += d_ce
                    stats.checks_skipped += d_cs
                    stats.snippet_instructions += d_si
                    stats.saves_elided += d_se
                    if mn is not None:
                        stats.by_opcode[mn] = stats.by_opcode.get(mn, 0) + 1
                    continue
                pos = builder.checkpoint()
                b_rs = stats.replaced_single
                b_wd = stats.wrapped_double
                b_ig = stats.ignored
                b_cp = stats.copied
                b_ce = stats.checks_emitted
                b_cs = stats.checks_skipped
                b_si = stats.snippet_instructions
                b_se = stats.saves_elided
                _emit_instruction(
                    builder, instr, entry_names, policies, snippet_all, stats,
                    precleaned.get(addr, frozenset()), wrap_moves,
                    streamline, widths,
                )
                d_rs = stats.replaced_single - b_rs
                # by_opcode moves in lockstep with replaced_single (only
                # emit_single_snippet touches either), so the mnemonic is
                # the whole dict delta.
                sites[key] = (
                    builder.emitted_since(pos),
                    (
                        d_rs,
                        stats.wrapped_double - b_wd,
                        stats.ignored - b_ig,
                        stats.copied - b_cp,
                        stats.checks_emitted - b_ce,
                        stats.checks_skipped - b_cs,
                        stats.snippet_instructions - b_si,
                        stats.saves_elided - b_se,
                        OPCODE_INFO[instr.opcode].mnemonic if d_rs else None,
                    ),
                )
            if stats.replaced_single + stats.wrapped_double > snippets_before:
                stats.blocks_split += 1
        builder.endfunc()

    new_program = builder.link(entry=entry_name)
    new_program.name = program.name
    return new_program


def _emit_instruction(
    builder: AsmBuilder,
    instr: Instruction,
    entry_names: dict[int, str],
    policies: dict[int, Policy],
    snippet_all: bool,
    stats: SnippetStats,
    precleaned: frozenset[int],
    wrap_moves: bool,
    streamline: bool,
    widths: tuple = DEFAULT_WIDTHS,
) -> None:
    info = OPCODE_INFO[instr.opcode]

    # Rewrite control-flow targets to labels.
    if info.is_call:
        target = instr.operands[0].value
        name = entry_names.get(target)
        if name is None:
            raise ValueError(f"call at {instr.addr:#x} targets non-function {target:#x}")
        builder.emit(instr.opcode, LabelRef(name), line=instr.line)
        stats.copied += 1
        return
    if info.is_branch:
        target = instr.operands[0].value
        builder.emit(instr.opcode, LabelRef(_addr_label(target)), line=instr.line)
        stats.copied += 1
        return

    if wrap_moves and snippet_all and instr.opcode in (Op.MOVSD, Op.MOVAPD, Op.MOVSS):
        emit_move_guard(builder, instr, stats, streamline)
        return

    if instr.is_candidate and snippet_all:
        policy = policies.get(instr.addr, Policy.DOUBLE)
        width = POLICY_WIDTHS.get(policy)
        if width is not None:
            emit_single_snippet(
                builder, instr, stats, streamline=streamline,
                width=width, widths=widths,
            )
            return
        if policy is Policy.DOUBLE:
            emit_double_snippet(
                builder, instr, stats, precleaned, streamline, widths
            )
            return
        stats.ignored += 1  # IGNORE: fall through to verbatim copy

    builder.emit(instr.opcode, *instr.operands, line=instr.line)
    if not (instr.is_candidate and snippet_all):
        stats.copied += 1
