"""Basic-block patching and binary rewriting (paper Section 2.4, Figure 7).

For every function, every basic block is walked instruction by
instruction.  Each floating-point candidate conceptually splits its block
into *before / instruction / after*; the snippet code is spliced where
the instruction was and the surrounding edges re-point to it.  Because
the splice is inline, re-linearizing the patched CFG is exactly the
original layout with snippets expanded in place — which is what this
rewriter emits through the :class:`~repro.asm.builder.AsmBuilder`.

Every original instruction address becomes a label in the new program;
branch operands are rewritten from absolute addresses to those labels, so
control flow survives arbitrary code growth.  Call targets resolve to
function-entry labels, and return addresses need no fix-up at all: the
rewritten ``call`` pushes the *new* return address at run time.
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder, LabelRef
from repro.binary.model import Program
from repro.config.model import Config, Policy
from repro.instrument.snippets import (
    SnippetStats,
    emit_double_snippet,
    emit_move_guard,
    emit_single_snippet,
)
from repro.isa.opcodes import Op
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_INFO
from repro.isa.operands import Imm


def _addr_label(addr: int) -> str:
    return f".A{addr:x}"


def rewrite(
    program: Program,
    policies: dict[int, Policy],
    snippet_all: bool,
    stats: SnippetStats,
    precleaned: dict[int, frozenset[int]] | None = None,
    wrap_moves: bool = False,
    streamline: bool = False,
) -> Program:
    """Produce a new executable implementing *policies* over *program*.

    ``policies`` maps candidate addresses to their resolved precision.
    When *snippet_all* is true, every candidate not marked IGNORE gets a
    snippet (SINGLE -> replacement snippet, DOUBLE -> guard snippet); when
    false, the program is copied verbatim (used to round-trip layout).
    ``precleaned`` optionally maps an instruction address to XMM registers
    proven clean there (redundant-check elimination).
    """
    builder = AsmBuilder(program.name + "+instr")

    # Reproduce the data section exactly (same addresses).
    for symbol in sorted(program.globals.values(), key=lambda s: s.addr):
        init = program.data_image[symbol.addr : symbol.addr + symbol.words]
        addr = builder.global_(symbol.name, symbol.words, init)
        if addr != symbol.addr:
            raise AssertionError("data layout drifted during rewrite")

    entry_names = {fn.entry: fn.name for fn in program.functions}
    entry_name = entry_names.get(program.entry)
    if entry_name is None:
        raise ValueError("program entry is not a function entry")
    precleaned = precleaned or {}

    for fn in program.functions:
        builder.module(fn.module)
        builder.func(fn.name)
        for block in fn.blocks:
            snippets_before = stats.replaced_single + stats.wrapped_double
            for instr in block.instructions:
                builder.mark(_addr_label(instr.addr))
                _emit_instruction(
                    builder, instr, entry_names, policies, snippet_all, stats,
                    precleaned.get(instr.addr, frozenset()), wrap_moves,
                    streamline,
                )
            if stats.replaced_single + stats.wrapped_double > snippets_before:
                stats.blocks_split += 1
        builder.endfunc()

    new_program = builder.link(entry=entry_name)
    new_program.name = program.name
    return new_program


def _emit_instruction(
    builder: AsmBuilder,
    instr: Instruction,
    entry_names: dict[int, str],
    policies: dict[int, Policy],
    snippet_all: bool,
    stats: SnippetStats,
    precleaned: frozenset[int],
    wrap_moves: bool,
    streamline: bool,
) -> None:
    info = OPCODE_INFO[instr.opcode]

    # Rewrite control-flow targets to labels.
    if info.is_call:
        target = instr.operands[0].value
        name = entry_names.get(target)
        if name is None:
            raise ValueError(f"call at {instr.addr:#x} targets non-function {target:#x}")
        builder.emit(instr.opcode, LabelRef(name), line=instr.line)
        stats.copied += 1
        return
    if info.is_branch:
        target = instr.operands[0].value
        builder.emit(instr.opcode, LabelRef(_addr_label(target)), line=instr.line)
        stats.copied += 1
        return

    if wrap_moves and snippet_all and instr.opcode in (Op.MOVSD, Op.MOVAPD, Op.MOVSS):
        emit_move_guard(builder, instr, stats, streamline)
        return

    if instr.is_candidate and snippet_all:
        policy = policies.get(instr.addr, Policy.DOUBLE)
        if policy is Policy.SINGLE:
            emit_single_snippet(builder, instr, stats, streamline=streamline)
            return
        if policy is Policy.DOUBLE:
            emit_double_snippet(builder, instr, stats, precleaned, streamline)
            return
        stats.ignored += 1  # IGNORE: fall through to verbatim copy

    builder.emit(instr.opcode, *instr.operands, line=instr.line)
    if not (instr.is_candidate and snippet_all):
        stats.copied += 1
