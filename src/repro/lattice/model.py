"""The ordered precision lattice: which widths the search may descend to.

The paper's configuration space is binary — every candidate is either
double or replaced-single.  This module generalizes it to an ordered
chain of widths, widest first::

    f64  ->  f32  ->  bf16  ->  f16

Each rung below the top is a :class:`Width`: a (name, exponent bits,
mantissa bits) descriptor plus the high-word sentinel and config flag
character that make it concrete in the VM and the exchange format.  A
:class:`Lattice` is an ordered tuple of such rungs; the search refines
*downward* through it (a site that passes at f32 becomes a bf16/f16
candidate).

Two canonical instances matter everywhere:

* :data:`BINARY_LATTICE` — ``f64,f32``, the paper's original space.  A
  search over it is differential-tested byte-identical to the
  pre-lattice binary search, and its policy digests are byte-identical
  to schema-v1 stores.
* :data:`FULL_LATTICE` — ``f64,f32,bf16,f16``, the default descent
  chain for lattice-aware searches.

Lattices are named by *spec strings* (``"f64,f32,bf16,f16"``) so they
ride through JSON-serialized :class:`~repro.search.bfs.SearchOptions`
unchanged, and by *canonical descriptors*
(``"f64(11,52)>f32(8,23)>..."``) that enter
:func:`repro.store.policy_digest` so results from different lattices can
never dedup against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model import Policy
from repro.fpbits.replace import REPLACED_FLAG, REPLACED_FLAG_BF16, REPLACED_FLAG_F16


@dataclass(frozen=True)
class Width:
    """One rung of the lattice.

    ``exp_bits``/``man_bits`` parameterize the format (mantissa bits
    exclude the hidden bit), so range bounds for custom widths derive
    from the descriptor alone.  ``flag`` is the config-file flag
    character (:class:`~repro.config.model.Policy` value); ``sentinel``
    is the high-word replacement marker, None only for the f64 top.
    """

    name: str
    exp_bits: int
    man_bits: int
    flag: str
    sentinel: int | None

    @property
    def bits(self) -> int:
        return 1 + self.exp_bits + self.man_bits

    @property
    def precision(self) -> int:
        """Significand precision including the hidden bit."""
        return self.man_bits + 1

    @property
    def max_finite(self) -> float:
        """Largest finite value: (2 - 2^-man) * 2^emax."""
        emax = (1 << (self.exp_bits - 1)) - 1
        return (2.0 - 2.0 ** -self.man_bits) * 2.0**emax

    @property
    def min_normal(self) -> float:
        """Smallest positive normal value: 2^(1 - emax)."""
        emax = (1 << (self.exp_bits - 1)) - 1
        return 2.0 ** (1 - emax)

    @property
    def policy(self) -> Policy:
        return Policy(self.flag)

    def descriptor(self) -> str:
        return f"{self.name}({self.exp_bits},{self.man_bits})"


#: The widths the VM, snippets, and exchange format know how to execute.
#: Custom (exp, man) descriptors can be *described* and range-checked,
#: but only these names are searchable.
F64 = Width("f64", 11, 52, Policy.DOUBLE.value, None)
F32 = Width("f32", 8, 23, Policy.SINGLE.value, REPLACED_FLAG)
BF16 = Width("bf16", 8, 7, Policy.BF16.value, REPLACED_FLAG_BF16)
F16 = Width("f16", 5, 10, Policy.HALF.value, REPLACED_FLAG_F16)

WIDTHS = {w.name: w for w in (F64, F32, BF16, F16)}
_BY_POLICY = {w.policy: w for w in (F64, F32, BF16, F16)}


class LatticeError(ValueError):
    """A lattice spec names unknown widths or breaks the ordering rules."""


@dataclass(frozen=True)
class Lattice:
    """An ordered chain of widths, widest first, anchored at f64."""

    widths: tuple[Width, ...]

    def __post_init__(self):
        if not self.widths or self.widths[0] is not F64:
            raise LatticeError("a lattice must start at f64")
        if len(self.widths) < 2:
            raise LatticeError("a lattice needs at least one narrow width")
        names = [w.name for w in self.widths]
        if len(set(names)) != len(names):
            raise LatticeError(f"duplicate widths in lattice: {names}")
        if self.widths[1] is not F32:
            raise LatticeError("the first narrow width must be f32")
        for wide, narrow in zip(self.widths[1:], self.widths[2:]):
            if narrow.policy.rank() <= wide.policy.rank():
                raise LatticeError(
                    f"lattice must descend: {wide.name} -> {narrow.name}"
                )

    # -- identity -------------------------------------------------------------

    def spec(self) -> str:
        """The comma-joined spec string; parse_lattice round-trips it."""
        return ",".join(w.name for w in self.widths)

    def descriptor(self) -> str:
        """Canonical descriptor for digests: names plus (exp, man) bits."""
        return ">".join(w.descriptor() for w in self.widths)

    @property
    def is_binary(self) -> bool:
        """True for the paper's original f64->f32 space."""
        return len(self.widths) == 2

    # -- navigation -----------------------------------------------------------

    @property
    def narrow_widths(self) -> tuple[Width, ...]:
        """Every rung below f64, widest first."""
        return self.widths[1:]

    def width_for(self, policy: Policy) -> Width:
        """The Width a policy flag denotes (KeyError if not in lattice)."""
        width = _BY_POLICY.get(policy)
        if width is None or width not in self.widths:
            raise KeyError(f"policy {policy!r} not in lattice {self.spec()}")
        return width

    def below(self, width: Width) -> Width | None:
        """The next-narrower rung, or None at the bottom."""
        idx = self.widths.index(width)
        return self.widths[idx + 1] if idx + 1 < len(self.widths) else None

    def __iter__(self):
        return iter(self.widths)

    def __len__(self) -> int:
        return len(self.widths)


def parse_lattice(spec: "str | Lattice") -> Lattice:
    """Parse a spec string (``"f64,f32,bf16,f16"``) into a Lattice.

    Identity on Lattice instances, so call sites accept either form.
    """
    if isinstance(spec, Lattice):
        return spec
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in names if name not in WIDTHS]
    if unknown:
        raise LatticeError(
            f"unknown width(s) {unknown} (known: {sorted(WIDTHS)})"
        )
    return Lattice(tuple(WIDTHS[name] for name in names))


#: The paper's original two-level space; the default everywhere.
BINARY_LATTICE = parse_lattice("f64,f32")

#: The full default descent chain.
FULL_LATTICE = parse_lattice("f64,f32,bf16,f16")

#: Spec string of the default lattice (SearchOptions' default value).
BINARY_SPEC = BINARY_LATTICE.spec()


def fits_width(width: Width, min_abs: float, max_abs: float) -> bool:
    """Can every observed magnitude in [min_abs, max_abs] be represented
    at *width* without overflowing to infinity or flushing to subnormal?

    The bounds come from the shadow observer's per-instruction value
    ranges (zero magnitudes are ignored by passing ``min_abs == 0``).
    Used to predict the lowest safe width and prune descent candidates.
    """
    if max_abs > width.max_finite:
        return False
    if 0.0 < min_abs < width.min_normal:
        return False
    return True
