"""The precision-lattice subsystem: ordered width chains below binary64.

See :mod:`repro.lattice.model` for the data model.  Everything the rest
of the system needs — spec parsing, the canonical BINARY/FULL lattices,
per-width sentinels and range bounds — is re-exported here.
"""

from repro.lattice.model import (
    BF16,
    BINARY_LATTICE,
    BINARY_SPEC,
    F16,
    F32,
    F64,
    FULL_LATTICE,
    Lattice,
    LatticeError,
    WIDTHS,
    Width,
    fits_width,
    parse_lattice,
)

__all__ = [
    "BF16",
    "BINARY_LATTICE",
    "BINARY_SPEC",
    "F16",
    "F32",
    "F64",
    "FULL_LATTICE",
    "Lattice",
    "LatticeError",
    "WIDTHS",
    "Width",
    "fits_width",
    "parse_lattice",
]
