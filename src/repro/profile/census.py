"""Per-site cycle census: where a workload's cycles actually go.

The profiler runs a workload's original double-precision build once
with per-instruction execution counting and turns the tallies into a
schema-versioned profile document:

* **sites** — every executed instruction with its text address, static
  cycle attribution (execution count times the instruction's
  fall-through cost, the same attribution :meth:`VM.opcode_stats`
  uses), and its config-tree node id when the instruction is a
  precision-replacement candidate (``node`` is ``""`` otherwise);
* **opcodes** — the per-mnemonic roll-up;
* **blocks / functions / modules** — candidate cycles summed up the
  config tree, i.e. exactly the per-site cost signal a cost-aware
  search objective weighs when it decides which subtree to descend.

Counting can come from the VM's native ``profile=True`` loop or from a
:class:`~repro.profile.observer.CycleObserver` riding the observer
hook; the two are bit-identical by construction (and by differential
test), so ``use_observer`` is a mechanism choice, not a semantics one.
"""

from __future__ import annotations

import json

from repro.config.generator import build_tree
from repro.config.model import LEVEL_BLOCK, LEVEL_FUNCTION, LEVEL_MODULE
from repro.profile.observer import CycleObserver
from repro.telemetry import NULL_TELEMETRY
from repro.vm.machine import VM

#: Schema version of the profile document (bump on shape changes).
PROFILE_VERSION = 1


def collect_profile(
    workload, tree=None, use_observer: bool = False, telemetry=None
) -> dict:
    """Profile *workload*'s original build; returns the profile document.

    The run uses the workload's own VM parameters, so the profiled
    execution is the exact run the search's baseline evaluation
    performs.  *tree* (a pre-built config tree) is accepted to avoid a
    rebuild.  With *telemetry* attached, the census lands in the trace
    as one ``profile.census`` plus one ``profile.site`` per site.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    program = workload.program
    if tree is None:
        tree = build_tree(program)
    if use_observer:
        observer = CycleObserver()
        vm = VM(program, observer=observer, **getattr(workload, "vm_params", dict)())
        result = vm.run()
        stats = vm.instruction_stats(counts=observer.counts())
    else:
        vm = VM(program, profile=True, **getattr(workload, "vm_params", dict)())
        result = vm.run()
        stats = vm.instruction_stats()
    profile = build_profile(workload, tree, stats, result)
    emit_profile(profile, tel)
    return profile


def build_profile(workload, tree, stats, result) -> dict:
    """Assemble the profile document from an instruction census."""
    sites = []
    opcodes: dict[str, list] = {}
    rollups = {LEVEL_BLOCK: {}, LEVEL_FUNCTION: {}, LEVEL_MODULE: {}}
    attributed = 0
    candidate_cycles = 0
    for addr, mnemonic, execs, cycles in sorted(stats):
        node = tree.by_addr.get(addr)
        site = {
            "addr": addr,
            "node": node.node_id if node is not None else "",
            "mnemonic": mnemonic,
            "execs": execs,
            "cycles": cycles,
        }
        sites.append(site)
        attributed += cycles
        entry = opcodes.setdefault(mnemonic, [0, 0])
        entry[0] += execs
        entry[1] += cycles
        if node is None:
            continue
        candidate_cycles += cycles
        parent = node.parent
        while parent is not None:
            table = rollups.get(parent.level)
            if table is not None:
                entry = table.setdefault(parent.node_id, [0, 0])
                entry[0] += execs
                entry[1] += cycles
                # structural context beyond the schema floor: lets trace
                # tools rebuild the flame hierarchy without the tree
                if parent.level == LEVEL_BLOCK:
                    site["block"] = parent.node_id
                elif parent.level == LEVEL_FUNCTION:
                    site["function"] = parent.label
            parent = parent.parent
    return {
        "version": PROFILE_VERSION,
        "program": tree.program_name,
        "workload": getattr(workload, "name", tree.program_name),
        "klass": getattr(workload, "klass", ""),
        "steps": result.steps,
        "cycles": result.cycles,
        # statically attributed cycles never exceed the true clock
        # (taken-branch extras are excluded, as in VM.opcode_stats)
        "attributed_cycles": attributed,
        # the slice of attributed cycles spent in precision candidates —
        # the denominator a cost-aware objective normalizes against
        "candidate_cycles": candidate_cycles,
        "sites": sites,
        "opcodes": _unpack(opcodes),
        "blocks": _unpack(rollups[LEVEL_BLOCK]),
        "functions": _unpack(rollups[LEVEL_FUNCTION]),
        "modules": _unpack(rollups[LEVEL_MODULE]),
    }


def _unpack(table: dict) -> dict:
    return {
        nid: {"execs": e, "cycles": c} for nid, (e, c) in sorted(table.items())
    }


def emit_profile(profile: dict, telemetry) -> None:
    """Emit the profile as ``profile.census`` + ``profile.site`` events."""
    if not telemetry.enabled:
        return
    telemetry.emit(
        "profile.census",
        program=profile["program"],
        steps=profile["steps"],
        cycles=profile["cycles"],
        sites=len(profile["sites"]),
        attributed_cycles=profile["attributed_cycles"],
    )
    for site in profile["sites"]:
        telemetry.emit("profile.site", **site)


def dumps(profile: dict) -> str:
    """Canonical serialization (stable key order, trailing newline)."""
    return json.dumps(profile, indent=2, sort_keys=True) + "\n"


def load_profile(path: str) -> dict:
    """Read a profile.json back; rejects unknown schema versions."""
    with open(path, "r", encoding="utf-8") as handle:
        profile = json.load(handle)
    version = profile.get("version")
    if version != PROFILE_VERSION:
        raise ValueError(
            f"unsupported profile version {version!r} "
            f"(expected {PROFILE_VERSION})"
        )
    return profile
