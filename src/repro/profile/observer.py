"""Execution-count observer for the profiler.

Plugs into the VM's observer hook (``VM(observer=...)``): every
instruction gets a wrapper closure that bumps a per-site counter and
then runs the original closure.  The tallies are *exactly* the VM's own
``profile=True`` counters:

* both count an instruction at the moment it executes — the native
  counting loop increments ``counts[index]`` immediately before calling
  the closure, the wrapper increments its cell immediately before
  calling the wrapped closure, and a closure that traps has already
  been counted on both paths;
* a step-budget exhaustion stops both loops after exactly the remaining
  number of executions.

So a profile built from this observer is bit-identical to one built
from the VM's native counters (differential-tested in
tests/profile/test_profile.py), and the observer can ride along any
other observer via :class:`repro.analysis.analyzer.ChainedObserver`.
"""

from __future__ import annotations


class CycleObserver:
    """Counts executions per instruction through the observer hook."""

    def __init__(self) -> None:
        #: instruction index -> single-cell execution counter
        self.cells: dict[int, list] = {}

    def wrap(self, vm, index: int, instr, addr: int, closure):
        cell = [0]
        self.cells[index] = cell

        def counted(i, _cell=cell, _closure=closure):
            _cell[0] += 1
            return _closure(i)

        return counted

    def counts(self) -> list:
        """Execution counts as a dense list aligned to instruction index."""
        if not self.cells:
            return []
        size = max(self.cells) + 1
        out = [0] * size
        for index, cell in self.cells.items():
            out[index] = cell[0]
        return out
