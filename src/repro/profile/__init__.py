"""Profiling: per-site cycle census with config-tree attribution.

The substrate for cost-aware search objectives — see
:mod:`repro.profile.census` for the document shape and
:mod:`repro.profile.observer` for the hook-based counter that is
bit-identical to the VM's native ``profile=True`` tallies.
"""

from repro.profile.census import (
    PROFILE_VERSION,
    build_profile,
    collect_profile,
    dumps,
    emit_profile,
    load_profile,
)
from repro.profile.observer import CycleObserver

__all__ = [
    "PROFILE_VERSION",
    "CycleObserver",
    "build_profile",
    "collect_profile",
    "dumps",
    "emit_profile",
    "load_profile",
]
