"""Campaign lifecycle: the directory, the journal, the metadata file.

The journal is deliberately append-only JSONL: each line is one
self-contained frontier snapshot (see
:meth:`repro.search.bfs.SearchEngine._snapshot` for the producer), so a
reader only ever needs the *last parseable* line.  Writes are flushed
and fsynced per checkpoint; a process killed mid-write leaves at most
one truncated trailing line, which :meth:`Campaign.latest_checkpoint`
skips — resume then falls back to the previous batch boundary and the
result store replays the difference.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.search.bfs import SearchOptions
from repro.store import ResultStore

#: campaign.json schema version.
CAMPAIGN_VERSION = 1

STATUS_RUNNING = "running"
STATUS_INTERRUPTED = "interrupted"
STATUS_COMPLETE = "complete"


class CampaignError(RuntimeError):
    """Malformed or incompatible campaign directory."""


def options_to_dict(options: SearchOptions) -> dict:
    """JSON-serializable form of :class:`SearchOptions`."""
    return dataclasses.asdict(options)


def options_from_dict(data: dict) -> SearchOptions:
    """Rebuild :class:`SearchOptions`, ignoring unknown keys so campaign
    files survive option additions in later versions."""
    known = {f.name for f in dataclasses.fields(SearchOptions)}
    return SearchOptions(**{k: v for k, v in data.items() if k in known})


class Campaign:
    """One durable search campaign rooted at a directory.

    Use :meth:`create` for a fresh campaign and :meth:`open` to resume
    an existing one; the constructor itself is shared plumbing.  The
    object is a context manager; :meth:`close` flushes the journal and
    closes the store and is safe to call repeatedly (including from
    ``KeyboardInterrupt`` cleanup paths).
    """

    def __init__(self, path: str, meta: dict, *, fresh: bool) -> None:
        self.path = str(path)
        self.meta = meta
        self._journal_path = os.path.join(self.path, "journal.jsonl")
        self._store: ResultStore | None = None
        self._journal = open(self._journal_path, "a")
        self._closed = False
        self.checkpoints_written = 0
        #: test/CI hook — raise KeyboardInterrupt after this many
        #: checkpoints have been written (None = never).  Exercises the
        #: exact mid-campaign interrupt path a real Ctrl-C takes.
        self.interrupt_after: int | None = None
        if fresh:
            self._write_meta()

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        workload: str,
        klass: str,
        options: SearchOptions,
    ) -> "Campaign":
        """Initialize a new campaign directory (must not already hold one)."""
        path = str(path)
        os.makedirs(path, exist_ok=True)
        meta_path = os.path.join(path, "campaign.json")
        if os.path.exists(meta_path):
            raise CampaignError(
                f"{path}: campaign already exists (resume it, or pick a new directory)"
            )
        meta = {
            "version": CAMPAIGN_VERSION,
            "workload": workload,
            "klass": klass,
            "options": options_to_dict(options),
            "status": STATUS_RUNNING,
            "created": time.time(),
        }
        return cls(path, meta, fresh=True)

    @classmethod
    def open(cls, path: str) -> "Campaign":
        """Open an existing campaign directory for resumption."""
        meta_path = os.path.join(str(path), "campaign.json")
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            raise CampaignError(f"{path}: no campaign.json here") from None
        except ValueError as exc:
            raise CampaignError(f"{meta_path}: unreadable ({exc})") from None
        version = meta.get("version")
        if version != CAMPAIGN_VERSION:
            raise CampaignError(
                f"{path}: campaign version {version!r}, expected {CAMPAIGN_VERSION}"
            )
        return cls(path, meta, fresh=False)

    # -- accessors --------------------------------------------------------------

    @property
    def workload(self) -> str:
        return self.meta["workload"]

    @property
    def klass(self) -> str:
        return self.meta["klass"]

    @property
    def status(self) -> str:
        return self.meta["status"]

    @property
    def options(self) -> SearchOptions:
        return options_from_dict(self.meta["options"])

    @property
    def store(self) -> ResultStore:
        """The campaign's result store (opened lazily, closed with us)."""
        if self._store is None:
            self._store = ResultStore(os.path.join(self.path, "results.sqlite"))
        return self._store

    # -- journal ----------------------------------------------------------------

    def checkpoint(self, snapshot: dict) -> None:
        """Append one frontier snapshot; durable once this returns."""
        line = json.dumps(snapshot, sort_keys=True)
        self._journal.write(line + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        self.checkpoints_written += 1
        if (
            self.interrupt_after is not None
            and self.checkpoints_written >= self.interrupt_after
        ):
            raise KeyboardInterrupt(
                f"campaign test hook: interrupted after "
                f"{self.checkpoints_written} checkpoints"
            )

    def latest_checkpoint(self) -> dict | None:
        """The last parseable journal snapshot (None on a fresh campaign).

        A truncated trailing line — the signature of a SIGKILL mid-write
        — is skipped silently; earlier lines are complete by
        construction (each was flushed before the next began).
        """
        latest = None
        try:
            with open(self._journal_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        latest = json.loads(line)
                    except ValueError:
                        break  # truncated tail; keep the previous snapshot
        except FileNotFoundError:
            return None
        return latest

    # -- status transitions -----------------------------------------------------

    def mark_complete(self, result_row: dict | None = None) -> None:
        self.meta["status"] = STATUS_COMPLETE
        if result_row is not None:
            self.meta["result"] = result_row
        self.meta["finished"] = time.time()
        self._write_meta()

    def mark_interrupted(self) -> None:
        if self.meta["status"] != STATUS_COMPLETE:
            self.meta["status"] = STATUS_INTERRUPTED
            self._write_meta()

    def _write_meta(self) -> None:
        # Write-then-rename so campaign.json is never observed half-written.
        meta_path = os.path.join(self.path, "campaign.json")
        tmp_path = meta_path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(self.meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, meta_path)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._journal.flush()
        os.fsync(self._journal.fileno())
        self._journal.close()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Campaign {self.path} {self.meta.get('status')}>"
