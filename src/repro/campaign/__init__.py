"""Durable search campaigns: journaled frontier state + result store.

A *campaign* is one automatic search made durable on disk.  Where the
in-memory :class:`~repro.search.bfs.SearchEngine` loses the whole run to
a crash, timeout, or Ctrl-C, a campaign directory carries everything
needed to continue from the exact batch boundary the search last
completed:

``campaign.json``
    Metadata: workload name/class, the serialized
    :class:`~repro.search.bfs.SearchOptions`, status
    (``running`` / ``interrupted`` / ``complete``), schema version.
``journal.jsonl``
    One frontier snapshot per completed batch — queue contents (with
    their priority sequence numbers), passing items, evaluation
    history, counters.  Appended and flushed after every batch, so a
    SIGKILL loses at most the batch in flight.
``results.sqlite``
    The campaign's :class:`~repro.store.ResultStore`.  Evaluations from
    the lost in-flight batch are still here (the store commits per
    outcome), so resuming replays them as store hits instead of
    re-running them.

``repro search --resume <dir>`` reloads all three and continues;
differential tests assert the resumed search composes a final
configuration byte-identical to an uninterrupted run.
"""

from repro.campaign.core import (
    CAMPAIGN_VERSION,
    Campaign,
    CampaignError,
    options_from_dict,
    options_to_dict,
)

__all__ = [
    "CAMPAIGN_VERSION",
    "Campaign",
    "CampaignError",
    "options_from_dict",
    "options_to_dict",
]
