"""The network worker: a stateless evaluation client.

``repro worker HOST:PORT`` connects to a coordinator, learns which
workload the search is over from the ``welcome`` message, rebuilds that
workload *locally* (programs are compiled deterministically, so the
coordinator only ships a name — and the content-addressed
``workload_id`` in the handshake catches any version skew between the
two hosts), then loops: lease a task, execute it through the shared
:mod:`repro.search.execution` kernel, report the outcome.  All search
state lives on the coordinator; a worker can be killed, restarted, or
added mid-search without changing the result.

Against a multi-campaign job service (protocol v3) the ``welcome``
carries no workload at all — each ``task`` frame names its own
``workload``/``klass``/``workload_id`` — so one worker serves every
concurrent campaign.  Workloads (and their incremental VM state) are
built lazily and cached per ``workload_id``, with the same skew check
per task that the v2 handshake does once.  The handshake negotiates the
protocol version: the worker offers everything it speaks and the
coordinator picks the highest shared version, answering a structured
``unsupported`` frame (instead of a silent disconnect) when there is no
overlap.

A heartbeat thread sends one-way ``heartbeat`` frames at a quarter of
the coordinator's lease timeout so a long-running evaluation does not
look like a dead worker.  Heartbeats are never answered — the main
loop's request/response pairing stays strict.

Fault injection: when the environment variable named by
:data:`EXIT_SENTINEL_VAR` points at an existing file, the worker unlinks
the file and ``os._exit(1)``-s right before executing its next task —
the crash-exactly-once idiom the differential and CI smoke tests use to
prove lost leases are requeued (the unlink happens first, so a respawned
or sibling worker does not crash again).
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.cluster.protocol import (
    BYE,
    ERROR,
    EVENTS,
    HEARTBEAT,
    HELLO,
    LEASE,
    OK,
    PROTOCOL_VERSION,
    RESULT,
    ROLE_WORKER,
    SUPPORTED_VERSIONS,
    TASK,
    UNSUPPORTED,
    WAIT,
    WELCOME,
    ProtocolError,
    outcome_to_wire,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.config.generator import build_tree
from repro.config.model import Config, Policy
from repro.search.evaluator import IncrementalState
from repro.search.execution import execute_config
from repro.telemetry import ListSink, Telemetry
from repro.workloads import make_workload

#: environment variable holding a sentinel-file path; see module docstring.
EXIT_SENTINEL_VAR = "REPRO_WORKER_EXIT_SENTINEL"


class WorkerError(RuntimeError):
    """Handshake refusal or workload mismatch — not worth retrying."""


def _maybe_crash() -> None:
    sentinel = os.environ.get(EXIT_SENTINEL_VAR)
    if sentinel and os.path.exists(sentinel):
        try:
            os.unlink(sentinel)  # crash exactly once across restarts
        except OSError:
            pass
        os._exit(1)


def connect(
    address: str,
    connect_retries: int = 50,
    connect_backoff: float = 0.1,
) -> socket.socket:
    """Dial the coordinator, retrying while it is still coming up."""
    host, port = parse_address(address)
    last_error: Exception | None = None
    for attempt in range(connect_retries + 1):
        try:
            return socket.create_connection((host, port), timeout=30)
        except OSError as exc:
            last_error = exc
            time.sleep(connect_backoff * min(attempt + 1, 10))
    raise WorkerError(f"cannot reach coordinator at {address}: {last_error}")


def _handshake(sock: socket.socket) -> dict:
    send_frame(sock, {
        "type": HELLO,
        "version": PROTOCOL_VERSION,
        "versions": list(SUPPORTED_VERSIONS),
        "role": ROLE_WORKER,
        "host": socket.gethostname(),
        "pid": os.getpid(),
    })
    welcome = recv_frame(sock)
    if welcome is None:
        raise WorkerError("coordinator closed the connection during handshake")
    if welcome.get("type") == UNSUPPORTED:
        raise WorkerError(
            f"{welcome.get('message', 'protocol version refused')} "
            f"(coordinator supports {welcome.get('supported')})"
        )
    if welcome.get("type") == ERROR:
        raise WorkerError(welcome.get("message", "handshake refused"))
    if welcome.get("type") != WELCOME:
        raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
    return welcome


class _WorkloadCache:
    """Per-``workload_id`` build of (workload, tree, incremental state).

    A v2 coordinator pins one workload in the welcome; a v3 job service
    ships the workload per task instead.  Either way the build is
    validated against the coordinator's content-addressed id, so version
    skew between hosts surfaces as a refusal rather than wrong results.
    """

    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry
        self._built: dict[str, tuple] = {}

    def get(self, name: str, klass: str, expected_id: str,
            incremental: bool) -> tuple:
        entry = self._built.get(expected_id)
        if entry is not None:
            return entry
        from repro.store import workload_id

        workload = make_workload(name, klass or "W")
        local_id = workload_id(workload)
        if local_id != expected_id:
            raise WorkerError(
                f"workload {name!r} class {klass!r} builds to id "
                f"{local_id[:12]} here but the coordinator expects "
                f"{expected_id[:12]} — version skew between hosts"
            )
        tree = build_tree(workload.program)
        state = (
            IncrementalState(workload, telemetry=self.telemetry)
            if incremental
            else None
        )
        entry = (workload, tree, state)
        self._built[expected_id] = entry
        return entry


def _forward_events(sock, send_lock, task, events_sink) -> None:
    """Ship the task's buffered telemetry as one one-way frame.

    Sent *before* the result/error frame so the coordinator merges the
    evidence into its trace ahead of the outcome it explains (TCP
    preserves the order).  Never answered; an empty buffer sends
    nothing.
    """
    events = list(events_sink.events)
    events_sink.events.clear()
    if not events:
        return
    with send_lock:
        send_frame(sock, {"type": EVENTS, "task": task, "events": events})


class _Heartbeat(threading.Thread):
    """One-way keepalives under the shared send lock."""

    def __init__(self, sock, lock: threading.Lock, interval: float) -> None:
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self.sock = sock
        self.lock = lock
        self.interval = interval
        self.stopping = threading.Event()

    def run(self) -> None:
        while not self.stopping.wait(self.interval):
            try:
                with self.lock:
                    send_frame(self.sock, {"type": HEARTBEAT})
            except OSError:
                return  # connection gone; main loop will notice too

    def stop(self) -> None:
        self.stopping.set()


def run_worker(
    address: str,
    max_tasks: int | None = None,
    connect_retries: int = 50,
    connect_backoff: float = 0.1,
) -> dict:
    """Serve one coordinator until it says ``bye`` (or *max_tasks* runs
    out); returns ``{"tasks": n, "workload": name}`` run statistics."""
    sock = connect(address, connect_retries, connect_backoff)
    send_lock = threading.Lock()
    heartbeat = None
    tasks_done = 0
    welcome = {}
    try:
        welcome = _handshake(sock)
        # Local telemetry buffer: per-task events are flushed to the
        # coordinator as one-way `events` frames so the search's trace
        # covers worker-side activity too (protocol v2).  Cache counters
        # ride this stream as metric.count events, superseding the
        # deltas fold-in the coordinator used to do from RESULT frames.
        events_sink = ListSink()
        wtel = Telemetry(sinks=[events_sink])
        builds = _WorkloadCache(wtel)
        # Welcome-pinned workload (v2 single-search coordinators); a job
        # service sends an empty workload and names one per task.
        pinned = None
        if welcome.get("workload"):
            pinned = builds.get(
                welcome["workload"],
                welcome.get("klass", ""),
                welcome["workload_id"],
                bool(welcome.get("incremental")),
            )
        default_checks = bool(welcome.get("optimize_checks"))
        interval = max(0.005, float(welcome.get("lease_timeout", 30.0)) / 4)
        heartbeat = _Heartbeat(sock, send_lock, interval)
        heartbeat.start()
        while max_tasks is None or tasks_done < max_tasks:
            with send_lock:
                send_frame(sock, {"type": LEASE})
            reply = recv_frame(sock)
            if reply is None or reply.get("type") == BYE:
                break
            kind = reply.get("type")
            if kind == WAIT:
                time.sleep(float(reply.get("delay", 0.02)))
                continue
            if kind != TASK:
                raise ProtocolError(f"expected task/wait/bye, got {kind!r}")
            _maybe_crash()
            if "workload_id" in reply:
                # v3 multi-campaign task: the frame names its workload.
                workload, tree, state = builds.get(
                    reply["workload"],
                    reply.get("klass", ""),
                    reply["workload_id"],
                    bool(reply.get("incremental")),
                )
                optimize_checks = bool(
                    reply.get("optimize_checks", default_checks)
                )
            elif pinned is not None:
                workload, tree, state = pinned
                optimize_checks = default_checks
            else:
                raise WorkerError(
                    "task names no workload and the welcome pinned none"
                )
            flags = {
                nid: Policy(policy) for nid, policy in reply["flags"].items()
            }
            config = Config(tree, flags)
            started = time.perf_counter()
            try:
                outcome, deltas = execute_config(
                    workload, config, state, optimize_checks, telemetry=wtel
                )
            except Exception as exc:  # an evaluation bug, not a protocol one
                _forward_events(sock, send_lock, reply["task"], events_sink)
                with send_lock:
                    send_frame(sock, {
                        "type": ERROR,
                        "task": reply["task"],
                        "message": f"{type(exc).__name__}: {exc}",
                    })
            else:
                wtel.emit(
                    "eval.remote",
                    task=reply["task"],
                    passed=outcome.passed,
                    cycles=outcome.cycles,
                    trap=outcome.trap,
                    reason=outcome.reason,
                    wall_s=round(time.perf_counter() - started, 6),
                )
                _forward_events(sock, send_lock, reply["task"], events_sink)
                with send_lock:
                    send_frame(sock, {
                        "type": RESULT,
                        "task": reply["task"],
                        "outcome": outcome_to_wire(outcome),
                        "deltas": list(deltas),
                    })
                tasks_done += 1
            ack = recv_frame(sock)
            if ack is None:
                break
            if ack.get("type") != OK:
                raise ProtocolError(f"expected ok, got {ack.get('type')!r}")
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        try:
            with send_lock:
                send_frame(sock, {"type": BYE})
        except OSError:
            pass
        sock.close()
    return {"tasks": tasks_done, "workload": welcome.get("workload", "")}
