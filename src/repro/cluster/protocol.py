"""The coordinator/worker wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding a single object with a ``type`` key.  The format is
deliberately boring: debuggable with ``nc`` + ``xxd``, versioned with a
single integer, and byte-order-explicit so heterogeneous hosts agree.

Message flow (worker-initiated request/response, except heartbeats)::

    worker                         coordinator
    ------                         -----------
    hello {version, versions,
           role, host, pid}     ->
                                <- welcome {version, workload, klass,
                                            workload_id, incremental,
                                            optimize_checks,
                                            lease_timeout}
                                   | unsupported {supported, message}
                                     (structured refusal + clean close;
                                      `versions` lists everything the
                                      worker speaks so both sides can
                                      settle on the highest shared
                                      version — a v2 worker still
                                      serves a single-job coordinator)
    lease {}                    ->
                                <- task {task, flags, digest}
                                   | wait {delay}   (no work right now)
                                   | bye {}         (search over)
    events {task, events}       ->    (one-way: never answered, sent
                                       right before result/error — the
                                       worker's telemetry events for
                                       that task, merged by the
                                       coordinator into the unified
                                       trace tagged with the worker id)
    result {task, outcome,
            deltas}             ->
                                <- ok {}
    error {task, message}       ->
                                <- ok {}
    heartbeat {}                ->    (one-way: never answered, sent by
                                       the worker's heartbeat thread to
                                       keep its leases alive during long
                                       evaluations)
    bye {}                      ->    (clean disconnect)

Client flow (protocol v3, ``hello`` with ``role: "client"`` — spoken by
:mod:`repro.service` against a ``repro serve --service`` coordinator)::

    client                         service
    ------                         -------
    hello {version, versions,
           role: "client"}      ->
                                <- welcome {version, service: true}
                                   | unsupported {supported, message}
    submit {workload, klass,
            tenant, options}    ->
                                <- submitted {job}
                                   | rejected {code, message}
    status {job}                ->
                                <- job {job, state, ...}
                                   | rejected {code: "unknown_job"}
    result {job}                ->
                                <- job {job, state, row, config, ...}
    cancel {job}                ->
                                <- job {job, state}
    list {}                     ->
                                <- jobs {jobs: [...]}
    bye {}                      ->    (clean disconnect)

Worker and client frames share one framing layer and one handshake; the
``role`` field routes the connection after ``welcome``.  A worker ``result``
carries a ``task`` key, a client ``result`` carries a ``job`` key — they
never travel on the same connection.

Every worker→coordinator message refreshes the worker's liveness
deadline; a worker silent for longer than the lease timeout — or whose
connection reaches EOF, the usual fate of a SIGKILLed process — is
declared lost and its leases are requeued.

Both a synchronous (blocking-socket, worker-side) and an asyncio
(coordinator-side) implementation of the framing live here so the two
endpoints cannot drift.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

#: bump on any incompatible message-shape change; hello/welcome carry it
#: and mismatches are refused at handshake time.
#: v2: one-way ``events`` frames forward worker telemetry to the
#: coordinator for merged-trace aggregation.
#: v3: version negotiation (hello ``versions`` list, ``unsupported``
#: refusals), connection roles (worker/client), client job frames
#: (submit/status/result/cancel/list), and per-task workload fields so
#: one worker serves many concurrent campaigns.
PROTOCOL_VERSION = 3

#: every version this endpoint can speak; the handshake settles on the
#: highest version both sides list (a peer that predates ``versions``
#: implicitly offers only its single ``version``).
SUPPORTED_VERSIONS = (2, 3)

#: frames above this are a protocol violation (a config flag map for a
#: huge program is ~100 KiB; 16 MiB is three orders of magnitude slack).
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

# message types
HELLO = "hello"
WELCOME = "welcome"
LEASE = "lease"
TASK = "task"
WAIT = "wait"
RESULT = "result"
ERROR = "error"
HEARTBEAT = "heartbeat"
EVENTS = "events"
OK = "ok"
BYE = "bye"
# handshake refusal (v3): structured "I don't speak your version"
UNSUPPORTED = "unsupported"
# client job frames (v3, role: "client")
SUBMIT = "submit"
SUBMITTED = "submitted"
STATUS = "status"
CANCEL = "cancel"
LIST = "list"
JOB = "job"
JOBS = "jobs"
REJECTED = "rejected"

# connection roles carried in hello (v3); absent = worker (v2 peers)
ROLE_WORKER = "worker"
ROLE_CLIENT = "client"


class ProtocolError(RuntimeError):
    """Malformed frame, oversized frame, or an unexpected message."""


def pack_frame(message: dict) -> bytes:
    """Serialize one message to its wire form (header + JSON payload)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(payload)) + payload


def _decode(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed message: {message!r}")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise ProtocolError(f"frame header claims {length} bytes (> MAX_FRAME)")


# -- synchronous (worker-side) endpoints ------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(pack_frame(message))


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket; None on clean EOF at a
    frame boundary, :class:`ProtocolError` on EOF mid-frame."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length, eof_ok=False)
    return _decode(payload)


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- asyncio (coordinator-side) endpoints -----------------------------------


async def send_frame_async(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(pack_frame(message))
    await writer.drain()


async def recv_frame_async(reader: asyncio.StreamReader) -> dict | None:
    """Asyncio twin of :func:`recv_frame` (None on clean EOF)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError(
            f"connection closed mid-frame (wanted {length} bytes)"
        ) from None
    return _decode(payload)


# -- shared helpers ----------------------------------------------------------


def parse_address(address: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (port may be 0 = let the OS pick)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {address!r} is not HOST:PORT")
    return host, int(port)


def offered_versions(hello: dict) -> list[int]:
    """Every protocol version a ``hello`` frame offers.

    v3 peers send an explicit ``versions`` list; older peers only carry
    the single ``version`` integer, which counts as a one-element offer
    so negotiation covers them uniformly.
    """
    offered = hello.get("versions")
    if not isinstance(offered, (list, tuple)):
        offered = [hello.get("version")]
    return sorted({int(v) for v in offered if isinstance(v, int)})


def negotiate_version(hello: dict, supported=SUPPORTED_VERSIONS) -> int | None:
    """Pick the highest version both sides speak, or None if disjoint."""
    shared = set(offered_versions(hello)) & set(supported)
    return max(shared) if shared else None


def unsupported_frame(hello: dict, supported=SUPPORTED_VERSIONS) -> dict:
    """The structured refusal sent when negotiation finds no overlap."""
    offered = offered_versions(hello)
    return {
        "type": UNSUPPORTED,
        "supported": sorted(supported),
        "message": (
            f"peer offers protocol version(s) {offered or '?'}, "
            f"this coordinator speaks {sorted(supported)}"
        ),
    }


def outcome_to_wire(outcome) -> list:
    """EvalOutcome -> JSON-safe list (NamedTuples serialize as lists
    anyway; this pins the order as part of the protocol)."""
    return [bool(outcome.passed), int(outcome.cycles), outcome.trap, outcome.reason]


def outcome_from_wire(wire) -> tuple:
    from repro.search.results import EvalOutcome

    passed, cycles, trap, reason = wire
    return EvalOutcome(bool(passed), int(cycles), str(trap), str(reason))
