"""The cluster coordinator: lease-based dispatch over TCP workers.

:class:`ClusterEvaluator` is the third sibling of the evaluator family
(serial :class:`~repro.search.evaluator.Evaluator`, fork-pool
:class:`~repro.search.parallel.ParallelEvaluator`): the search engine
hands it batches of configurations, and it shards them across however
many ``repro worker`` processes are currently connected.  The engine —
and therefore the whole search trajectory — cannot tell the difference:
batch deduplication, store replay, and counter semantics are the shared
:mod:`repro.search.batching` logic, outcomes come back in submission
order, and every evaluation a worker runs goes through the shared
:mod:`repro.search.execution` kernel, so the final configuration is
byte-identical to a serial search (differential-tested).

Multi-campaign dispatch (protocol v3)
-------------------------------------
The coordinator no longer assumes a single search: work is organised
into *channels*, one per campaign (:class:`_Channel`), each with its own
pending queue, backoff list, and in-flight batch.  A standalone
``ClusterEvaluator`` registers exactly one channel; the
:mod:`repro.service` job server registers one per submitted job and
shares a single coordinator — and therefore one worker pool — across
all of them.  Leases are multiplexed fairly with deficit round-robin:
each ready channel accumulates ``quantum`` credit per scheduler pass
and spends one credit per granted lease, so a large campaign cannot
starve a small one, and per-tenant in-flight quotas (``max_inflight``)
cap how much of the pool any one tenant can hold at once.

Threading model
---------------
The asyncio TCP server runs on one dedicated background thread; all
coordinator state (workers, channels, leases, queues) lives on that
loop and is never touched from an engine thread.  ``evaluate_batch``
submits a batch with ``run_coroutine_threadsafe`` and blocks, draining
its channel's event queue into the telemetry hub while it waits — so
traces keep a single writer (that engine's thread) and ``--progress``
still renders worker occupancy live.  Under the service each job's
engine thread does the same against its own channel, so per-job traces
stay single-writer too.

Fault tolerance
---------------
Liveness is heartbeat-based: any worker message refreshes its deadline,
and a worker silent for ``lease_timeout`` seconds — or whose connection
reaches EOF, the usual fate of a SIGKILLed process — is declared lost.
Its leases are requeued under the shared
:class:`~repro.search.retry.RetryPolicy` (exponential per-task backoff);
a task that keeps losing its worker through every retry is classified
``worker_crash`` exactly like a fork-pool crash.  Results are
first-wins: if a presumed-dead worker resurfaces and reports a requeued
task, the duplicate is ignored — evaluations are deterministic, so
either copy is the same outcome — and re-connected workers never
re-execute configs the store already decided, because decided configs
are filtered out parent-side before tasks are ever created.  Cancelling
a job aborts only its channel: its queued tasks are dropped, its leases
are released from the quota ledger, and every other channel keeps
running untouched.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
import time
from collections import deque

from repro.cluster.protocol import (
    BYE,
    CANCEL,
    ERROR,
    EVENTS,
    HEARTBEAT,
    HELLO,
    LEASE,
    LIST,
    OK,
    PROTOCOL_VERSION,
    RESULT,
    ROLE_CLIENT,
    STATUS,
    SUBMIT,
    SUPPORTED_VERSIONS,
    REJECTED,
    TASK,
    WAIT,
    WELCOME,
    ProtocolError,
    negotiate_version,
    outcome_from_wire,
    pack_frame,
    parse_address,
    recv_frame_async,
    send_frame_async,
    unsupported_frame,
)
from repro.config.model import Config
from repro.search.batching import plan_batch, record_batch
from repro.search.execution import DELTA_COUNTERS
from repro.search.results import EvalOutcome
from repro.search.retry import RetryPolicy
from repro.telemetry import NULL_TELEMETRY

#: how long an idle worker is told to wait before polling for work again
#: (doubles as the heartbeat that keeps it alive while the queue is dry).
POLL_DELAY = 0.02

#: channel id used by a standalone (single-search) ClusterEvaluator.
DEFAULT_CHANNEL = ""


class ClusterError(RuntimeError):
    """Coordinator-side setup or dispatch failure."""


class JobCancelled(RuntimeError):
    """A campaign's channel was aborted while a batch was in flight.

    Raised out of ``evaluate_batch`` on the engine thread of the
    cancelled job (and only that job); the service turns it into a
    ``cancelled`` job state.
    """


class _Task:
    """One leased unit of work: a deduplicated configuration."""

    __slots__ = ("task_id", "index", "flags", "digest", "job", "attempts",
                 "not_before", "done", "inflight")

    def __init__(self, task_id: int, index: int, flags: dict, digest: str,
                 job: str = DEFAULT_CHANNEL):
        self.task_id = task_id
        self.index = index          # position in the owning batch
        self.flags = flags          # wire form: node id -> policy char
        self.digest = digest
        self.job = job              # owning channel id ("" = standalone)
        self.attempts = 0           # crashes so far (not normal failures)
        self.not_before = 0.0       # backoff gate for requeued tasks
        self.done = False
        self.inflight = False       # currently leased (quota accounting)

    def payload(self) -> dict:
        return {
            "type": TASK,
            "task": self.task_id,
            "flags": self.flags,
            "digest": self.digest,
        }


class _Batch:
    """One engine batch in flight on the loop."""

    __slots__ = ("outcomes", "remaining", "deltas", "done")

    def __init__(self, size: int, loop) -> None:
        self.outcomes: list = [None] * size
        self.remaining = size
        self.deltas = [0] * len(DELTA_COUNTERS)
        self.done = loop.create_future()

    def finish_one(self, index: int, outcome: EvalOutcome, deltas=None) -> None:
        self.outcomes[index] = outcome
        if deltas:
            for i, delta in enumerate(deltas[: len(self.deltas)]):
                self.deltas[i] += int(delta)
        self.remaining -= 1
        if self.remaining == 0 and not self.done.done():
            self.done.set_result(None)

    def abort(self, exc: BaseException) -> None:
        if not self.done.done():
            self.done.set_exception(exc)


class _Channel:
    """Loop-side state for one campaign sharing the worker pool."""

    __slots__ = ("job_id", "tenant", "quantum", "deficit", "info", "events",
                 "pending", "delayed", "batch", "leased")

    def __init__(self, job_id: str, tenant: str, quantum: float,
                 info: dict | None, events: deque) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.quantum = quantum      # DRR credit earned per scheduler pass
        self.deficit = 0.0          # unspent credit (reset while idle)
        #: per-task workload fields merged into task payloads (service
        #: mode; None = the welcome already pinned the workload).
        self.info = info
        self.events = events        # (kind, fields) — drained engine-side
        self.pending: deque[_Task] = deque()
        self.delayed: list[_Task] = []
        self.batch: _Batch | None = None
        self.leased = 0             # tasks of this channel currently leased

    def promote(self, now: float) -> None:
        """Move backoff-expired tasks back onto the pending queue."""
        if not self.delayed:
            return
        still_delayed = []
        for task in self.delayed:
            if task.done:
                continue
            if task.not_before <= now:
                self.pending.append(task)
            else:
                still_delayed.append(task)
        self.delayed[:] = still_delayed

    def pop_ready(self) -> _Task | None:
        while self.pending:
            task = self.pending.popleft()
            if not task.done:
                return task
        return None


class _WorkerConn:
    """Loop-side connection state for one network worker."""

    __slots__ = ("wid", "name", "writer", "version", "leases", "last_seen",
                 "reaped")

    def __init__(self, wid: str, name: str, writer, version: int,
                 now: float) -> None:
        self.wid = wid
        self.name = name
        self.writer = writer
        self.version = version      # negotiated protocol version
        self.leases: dict[int, _Task] = {}
        self.last_seen = now
        self.reaped = False


class _Coordinator:
    """Everything that runs on the event-loop thread."""

    def __init__(
        self,
        welcome: dict,
        retry: RetryPolicy,
        lease_timeout: float,
        events: deque,
        versions=SUPPORTED_VERSIONS,
        client_api=None,
        max_inflight: int | None = None,
        lease_log: bool = False,
    ) -> None:
        self.welcome = welcome
        self.retry = retry
        self.lease_timeout = lease_timeout
        self.events = events        # global (kind, fields) queue
        self.versions = tuple(versions)
        #: service hook answering client job frames (None = worker-only)
        self.client_api = client_api
        #: per-tenant cap on simultaneously leased tasks (None = off;
        #: channels with an empty tenant are never capped)
        self.max_inflight = max_inflight
        self.workers: dict[str, _WorkerConn] = {}
        self.channels: dict[str, _Channel] = {}
        self._ring: deque[str] = deque()   # DRR visit order over channels
        self.tasks: dict[int, _Task] = {}
        self.tenant_inflight: dict[str, int] = {}
        #: (job_id, tenant, tenant_inflight_after_grant) per granted
        #: lease, recorded only when requested — the fairness tests and
        #: the service bench read interleaving straight off this.
        self.lease_log: list | None = [] if lease_log else None
        self.closing = False
        self.server = None
        self.sweeper = None
        self._worker_seq = 0
        self._task_seq = 0
        # stats (read engine-side after drain; plain ints, GIL-safe)
        self.workers_seen = 0
        self.leases_granted = 0
        self.requeues = 0
        self.crashed_tasks = 0

    def event(self, kind: str, **fields) -> None:
        self.events.append((kind, fields))

    def job_event(self, job_id: str, kind: str, **fields) -> None:
        """Route an event to the owning channel's queue (so it lands in
        that job's trace); fall back to the global queue if the channel
        is already gone."""
        channel = self.channels.get(job_id)
        if channel is not None:
            if job_id:
                fields.setdefault("job", job_id)
            channel.events.append((kind, fields))
        else:
            self.events.append((kind, fields))

    # -- lifecycle (loop thread) --------------------------------------------

    async def start(self, host: str, port: int) -> tuple[str, int]:
        self.server = await asyncio.start_server(self._handle, host, port)
        self.sweeper = asyncio.ensure_future(self._sweep())
        bound = self.server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def shutdown(self) -> None:
        self.closing = True
        if self.sweeper is not None:
            self.sweeper.cancel()
        for job_id in list(self.channels):
            self._abort_channel(job_id, "coordinator shutting down")
        for worker in list(self.workers.values()):
            worker.reaped = True  # a closed connection is not a lost worker
            with contextlib.suppress(Exception):
                worker.writer.write(pack_frame({"type": BYE}))
            with contextlib.suppress(Exception):
                worker.writer.close()
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()

    # -- channel registry (loop thread; sync core is also used before the
    #    loop starts, when the owning evaluator wires its own channel) ----

    def register_channel(
        self,
        job_id: str,
        tenant: str = "",
        quantum: float = 1.0,
        info: dict | None = None,
        events: deque | None = None,
    ) -> _Channel:
        if job_id in self.channels:
            raise ClusterError(f"channel {job_id!r} already registered")
        channel = _Channel(
            job_id, tenant, max(0.05, float(quantum)),
            info, events if events is not None else self.events,
        )
        self.channels[job_id] = channel
        self._ring.append(job_id)
        return channel

    async def open_channel(self, job_id: str, tenant: str = "",
                           quantum: float = 1.0, info: dict | None = None,
                           events: deque | None = None) -> None:
        self.register_channel(job_id, tenant, quantum, info, events)

    async def close_channel(self, job_id: str) -> None:
        self._abort_channel(job_id, "channel closed")
        self.channels.pop(job_id, None)
        with contextlib.suppress(ValueError):
            self._ring.remove(job_id)

    async def cancel_channel(self, job_id: str) -> bool:
        """Abort a channel's queues and in-flight batch (the channel
        stays registered until its owner closes it)."""
        return self._abort_channel(job_id, "job cancelled")

    def _abort_channel(self, job_id: str, why: str) -> bool:
        channel = self.channels.get(job_id)
        if channel is None:
            return False
        for task in list(self.tasks.values()):
            if task.job != job_id:
                continue
            self._release(task)
            task.done = True
            del self.tasks[task.task_id]
        channel.pending.clear()
        channel.delayed.clear()
        batch, channel.batch = channel.batch, None
        if batch is not None:
            batch.abort(JobCancelled(f"{job_id or 'search'}: {why}"))
            return True
        return False

    # -- batch dispatch (loop thread) ---------------------------------------

    async def run_batch(self, job_id: str, payload: list) -> tuple[list, list]:
        """Queue *payload* (``(flags, digest)`` pairs) as leasable tasks
        on *job_id*'s channel and wait until every one is decided."""
        channel = self.channels.get(job_id)
        if channel is None:
            raise ClusterError(f"no channel {job_id!r}")
        loop = asyncio.get_running_loop()
        batch = _Batch(len(payload), loop)
        channel.batch = batch
        tasks = []
        for index, (flags, digest) in enumerate(payload):
            self._task_seq += 1
            task = _Task(self._task_seq, index, flags, digest, job_id)
            self.tasks[task.task_id] = task
            channel.pending.append(task)
            tasks.append(task)
        try:
            await batch.done
        finally:
            if channel.batch is batch:
                channel.batch = None
                channel.pending.clear()
                channel.delayed.clear()
            for task in tasks:
                self._release(task)
                task.done = True
                self.tasks.pop(task.task_id, None)
        return batch.outcomes, batch.deltas

    def _quota_blocked(self, channel: _Channel) -> bool:
        if self.max_inflight is None or not channel.tenant:
            return False
        return (
            self.tenant_inflight.get(channel.tenant, 0) >= self.max_inflight
        )

    def _next_task(self) -> _Task | None:
        """Deficit round-robin over every ready channel.

        Each visited channel earns ``quantum`` credit and a lease costs
        one credit, so with the default quantum of 1.0 ready channels
        alternate strictly; fractional quanta throttle a channel to a
        share of the pool.  Idle channels forfeit their credit (classic
        DRR, so a long-idle campaign cannot burst later), and channels
        whose tenant is at its in-flight quota are skipped without
        earning credit.
        """
        ring = self._ring
        if not ring:
            return None
        now = asyncio.get_running_loop().time()
        for _ in range(2 * len(ring)):
            job_id = ring[0]
            ring.rotate(-1)
            channel = self.channels.get(job_id)
            if channel is None:
                continue
            channel.promote(now)
            if not channel.pending:
                channel.deficit = 0.0
                continue
            if self._quota_blocked(channel):
                continue
            channel.deficit += channel.quantum
            if channel.deficit < 1.0:
                continue
            task = channel.pop_ready()
            if task is None:
                channel.deficit = 0.0
                continue
            channel.deficit -= 1.0
            return task
        return None

    # -- connection handling (loop thread) ----------------------------------

    async def _handle(self, reader, writer) -> None:
        worker = None
        try:
            role, worker = await self._handshake(reader, writer)
            if role == ROLE_CLIENT:
                await self._serve_client(reader, writer)
            elif worker is not None:
                await self._serve(worker, reader, writer)
        except (ProtocolError, ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            if worker is not None:
                self._reap(worker, "disconnect")
            with contextlib.suppress(Exception):
                writer.close()

    async def _handshake(self, reader, writer):
        hello = await recv_frame_async(reader)
        if hello is None or hello.get("type") != HELLO:
            return None, None
        version = negotiate_version(hello, self.versions)
        if version is None:
            # Structured refusal (v3 satellite): the peer learns exactly
            # which versions would have been accepted, then we close
            # cleanly instead of silently dropping the connection.
            await send_frame_async(
                writer, unsupported_frame(hello, self.versions)
            )
            return None, None
        if hello.get("role") == ROLE_CLIENT:
            if self.client_api is None:
                await send_frame_async(writer, {
                    "type": ERROR,
                    "message": "this coordinator does not accept job "
                               "submissions (start it with --service)",
                })
                return None, None
            await send_frame_async(
                writer,
                {"type": WELCOME, "version": version, "service": True},
            )
            return ROLE_CLIENT, None
        self._worker_seq += 1
        wid = f"w{self._worker_seq}"
        name = f"{hello.get('host', '?')}:{hello.get('pid', '?')}"
        now = asyncio.get_running_loop().time()
        worker = _WorkerConn(wid, name, writer, version, now)
        self.workers[wid] = worker
        self.workers_seen += 1
        self.event("cluster.worker_join", worker=wid, name=name)
        reply = dict(self.welcome)
        reply["version"] = version
        await send_frame_async(writer, reply)
        return None, worker

    async def _serve_client(self, reader, writer) -> None:
        """Request/response loop for a job-submission client.

        Handlers run on an executor thread, not the loop: they take the
        registry lock, start job threads, and (for cancel) block on a
        coroutine scheduled back onto this very loop — which would
        deadlock if called inline.
        """
        loop = asyncio.get_running_loop()
        while True:
            message = await recv_frame_async(reader)
            if message is None or message.get("type") == BYE:
                return
            kind = message.get("type")
            if kind not in (SUBMIT, STATUS, RESULT, CANCEL, LIST):
                raise ProtocolError(f"unexpected client message {kind!r}")
            try:
                reply = await loop.run_in_executor(
                    None, self.client_api.handle_client, message
                )
            except Exception as exc:  # service bug: report, keep serving
                reply = {
                    "type": REJECTED,
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            await send_frame_async(writer, reply)

    async def _serve(self, worker: _WorkerConn, reader, writer) -> None:
        while True:
            message = await recv_frame_async(reader)
            if message is None:
                return  # EOF: worker gone (reaped by caller)
            worker.last_seen = asyncio.get_running_loop().time()
            kind = message.get("type")
            if kind == LEASE:
                if self.closing:
                    await send_frame_async(writer, {"type": BYE})
                    worker.reaped = True  # clean exit: not "lost"
                    self.workers.pop(worker.wid, None)
                    return
                task = self._next_task()
                if task is None:
                    await send_frame_async(
                        writer, {"type": WAIT, "delay": POLL_DELAY}
                    )
                else:
                    self._grant(worker, task)
                    payload = task.payload()
                    channel = self.channels.get(task.job)
                    if channel is not None and channel.info is not None:
                        payload["job"] = task.job
                        payload.update(channel.info)
                    await send_frame_async(writer, payload)
            elif kind == RESULT:
                self._complete(worker, message)
                await send_frame_async(writer, {"type": OK})
            elif kind == ERROR:
                # The worker survived but its evaluation blew up
                # (instrumentation bug, unpicklable trap, ...): treat it
                # like a crash of that one task — requeue elsewhere.
                worker.leases.pop(message.get("task"), None)
                self._task_lost(message.get("task"), "worker_error")
                await send_frame_async(writer, {"type": OK})
            elif kind == HEARTBEAT:
                self.event(
                    "cluster.heartbeat",
                    worker=worker.wid, busy=len(worker.leases),
                )
            elif kind == EVENTS:
                # One-way telemetry forwarding (protocol v2): merge the
                # worker's per-task events into the owning channel's
                # queue, tagged with the worker id.  The worker's own
                # clock is preserved as `worker_ts`; the engine-side
                # drain stamps the merged trace's single monotonic `ts`
                # on emission.
                task_id = message.get("task")
                task = self.tasks.get(task_id)
                job_id = task.job if task is not None else DEFAULT_CHANNEL
                for forwarded in message.get("events", ()):
                    if not isinstance(forwarded, dict) or "kind" not in forwarded:
                        continue
                    fields = dict(forwarded)
                    event_kind = fields.pop("kind")
                    fields["worker_ts"] = fields.pop("ts", 0.0)
                    fields["worker"] = worker.wid
                    fields.setdefault("task", task_id)
                    self.job_event(job_id, event_kind, **fields)
            elif kind == BYE:
                worker.reaped = True
                self.workers.pop(worker.wid, None)
                self._requeue_leases(worker, "bye")
                return
            else:
                raise ProtocolError(f"unexpected message {kind!r}")

    # -- lease accounting (loop thread) --------------------------------------

    def _grant(self, worker: _WorkerConn, task: _Task) -> None:
        worker.leases[task.task_id] = task
        task.inflight = True
        channel = self.channels.get(task.job)
        tenant = channel.tenant if channel is not None else ""
        if channel is not None:
            channel.leased += 1
        if tenant:
            self.tenant_inflight[tenant] = (
                self.tenant_inflight.get(tenant, 0) + 1
            )
        self.leases_granted += 1
        if self.lease_log is not None:
            self.lease_log.append(
                (task.job, tenant, self.tenant_inflight.get(tenant, 0))
            )
        self.job_event(
            task.job, "cluster.lease",
            worker=worker.wid, task=task.task_id, busy=len(worker.leases),
        )

    def _release(self, task: _Task) -> None:
        """Return a task's lease to the quota ledger (idempotent)."""
        if not task.inflight:
            return
        task.inflight = False
        channel = self.channels.get(task.job)
        if channel is not None:
            channel.leased = max(0, channel.leased - 1)
            if channel.tenant:
                left = self.tenant_inflight.get(channel.tenant, 0) - 1
                if left > 0:
                    self.tenant_inflight[channel.tenant] = left
                else:
                    self.tenant_inflight.pop(channel.tenant, None)

    def _complete(self, worker: _WorkerConn, message: dict) -> None:
        task_id = message.get("task")
        worker.leases.pop(task_id, None)
        task = self.tasks.get(task_id)
        if task is None or task.done:
            return  # late duplicate from a presumed-dead worker: first wins
        self._release(task)
        task.done = True
        channel = self.channels.get(task.job)
        if channel is not None and channel.batch is not None:
            channel.batch.finish_one(
                task.index,
                outcome_from_wire(message["outcome"]),
                message.get("deltas"),
            )

    def _task_lost(self, task_id, reason: str) -> None:
        task = self.tasks.get(task_id)
        if task is None or task.done:
            return
        self._release(task)
        task.attempts += 1
        channel = self.channels.get(task.job)
        if self.retry.exhausted(task.attempts):
            # Kept killing (or losing) its executor: classify, descend.
            self.crashed_tasks += 1
            self.job_event(task.job, "eval.worker_crash", attempts=task.attempts)
            task.done = True
            if channel is not None and channel.batch is not None:
                channel.batch.finish_one(
                    task.index,
                    self.retry.crash_outcome(
                        task.attempts, what="cluster worker died"
                    ),
                )
            return
        self.requeues += 1
        now = asyncio.get_running_loop().time()
        task.not_before = now + self.retry.delay(task.attempts)
        if channel is not None:
            channel.delayed.append(task)
        self.job_event(
            task.job, "cluster.requeue",
            task=task.task_id, attempts=task.attempts, reason=reason,
        )

    def _requeue_leases(self, worker: _WorkerConn, reason: str) -> None:
        leases = list(worker.leases.values())
        worker.leases.clear()
        for task in leases:
            self._task_lost(task.task_id, reason)

    def _reap(self, worker: _WorkerConn, reason: str) -> None:
        """A worker is gone (EOF, protocol error, expired heartbeat)."""
        if worker.reaped:
            return
        worker.reaped = True
        self.workers.pop(worker.wid, None)
        self.event(
            "cluster.worker_lost",
            worker=worker.wid, leases=len(worker.leases), reason=reason,
        )
        self._requeue_leases(worker, reason)

    async def _sweep(self) -> None:
        """Expire workers whose heartbeats stopped (network partition,
        frozen process — a SIGKILL usually surfaces as EOF instead)."""
        interval = max(0.01, min(1.0, self.lease_timeout / 4))
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for worker in list(self.workers.values()):
                if now - worker.last_seen > self.lease_timeout:
                    self._reap(worker, "expired")
                    with contextlib.suppress(Exception):
                        worker.writer.close()


class BaseLeaseEvaluator:
    """Engine-thread side of lease dispatch, shared by the standalone
    :class:`ClusterEvaluator` and the service's per-job
    :class:`~repro.service.evaluator.ServiceEvaluator`.

    Subclasses own the wiring (who creates the loop/coordinator, which
    channel the batches ride) and call :meth:`_init_lease_state` before
    first use; everything here — caches, counters, batch planning,
    telemetry draining — is identical across both, which is what keeps
    a service job byte-identical to a standalone search.
    """

    #: channel this evaluator submits batches on.
    job_id = DEFAULT_CHANNEL

    def _init_lease_state(
        self,
        workload,
        tree,
        optimize_checks: bool,
        telemetry,
        incremental: bool,
        store,
        store_workload: str,
        retry: RetryPolicy | None,
        lattice=None,
    ) -> None:
        self.workload = workload
        self.tree = tree
        self.optimize_checks = optimize_checks
        self.incremental = incremental
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache: dict = {}
        self.semantic_cache: dict = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.store = store
        self.store_workload = store_workload
        self.store_hits = 0
        #: lattice spec salting the store's policy digests (see Evaluator)
        self.lattice = lattice
        #: configurations actually run on some worker (excludes replays)
        self.executions = 0
        #: policy digests counted toward ``evaluations`` (see Evaluator)
        self.decided: set = set()
        self.retry = retry if retry is not None else RetryPolicy()
        self._drain_interval = 0.05
        self._closed = False
        # set by the subclass: the loop the coordinator runs on, the
        # coordinator itself, and the deque its channel events land in.
        self._loop: asyncio.AbstractEventLoop
        self._coord: _Coordinator
        self._events: deque

    def _store_id(self) -> str:
        if not self.store_workload:
            from repro.store import workload_id

            self.store_workload = workload_id(self.workload)
        return self.store_workload

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("evaluator is closed")

    # -- telemetry bridge ----------------------------------------------------

    def _drain_events(self) -> None:
        """Emit queued coordinator events from the engine thread (the
        trace's single writer)."""
        telemetry = self.telemetry
        events = self._events
        while events:
            kind, fields = events.popleft()
            if not telemetry.enabled:
                continue
            if kind == "eval.worker_crash":
                telemetry.count("eval.worker_crashes")
            elif kind == "cluster.requeue":
                telemetry.count("cluster.requeues")
            elif kind == "cluster.lease":
                telemetry.count("cluster.leases")
            telemetry.emit(kind, **fields)

    # -- Evaluator protocol ---------------------------------------------------

    def evaluate(self, config: Config) -> EvalOutcome:
        return self.evaluate_batch([config])[0]

    def evaluate_batch(self, configs: list[Config]) -> list[EvalOutcome]:
        self._check_open()
        # Parent-side dedup (shared with ParallelEvaluator): what remains
        # in plan.jobs is exactly what a serial evaluator would execute —
        # re-connected or duplicate workers can never re-run a decided
        # config because decided configs never become tasks.
        plan = plan_batch(self, configs)
        outcomes: list = []
        batch_wall = 0.0
        if plan.jobs:
            payload = [
                (
                    {nid: policy.value for nid, policy in job.config.flags.items()},
                    job.digest,
                )
                for job in plan.jobs
            ]
            start = time.perf_counter()
            future = asyncio.run_coroutine_threadsafe(
                self._coord.run_batch(self.job_id, payload), self._loop
            )
            try:
                while True:
                    try:
                        outcomes, deltas = future.result(self._drain_interval)
                        break
                    except concurrent.futures.TimeoutError:
                        self._drain_events()  # keep progress/traces live
            finally:
                self._drain_events()
            batch_wall = time.perf_counter() - start
            # Cache counters arrive through the forwarded worker event
            # stream (metric.count, protocol v2); the RESULT deltas stay
            # on the wire as a cross-check but are not folded in twice.
            del deltas
        self._drain_events()
        return record_batch(self, plan, outcomes, batch_wall)

    def close(self) -> None:  # pragma: no cover - subclass responsibility
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ClusterEvaluator(BaseLeaseEvaluator):
    """Evaluator that dispatches batches to network workers.

    Parameters mirror :class:`~repro.search.parallel.ParallelEvaluator`
    where they overlap; the extras:

    bind:
        ``HOST:PORT`` to listen on (port 0 = let the OS pick; the bound
        address is in :attr:`address`).
    retry:
        Shared :class:`~repro.search.retry.RetryPolicy` for tasks whose
        worker dies (requeue with exponential backoff, classify as
        ``worker_crash`` on exhaustion).
    lease_timeout:
        Seconds of worker silence (no result/heartbeat/poll) before its
        leases are requeued and the connection is declared lost.
        Workers heartbeat at a quarter of this, so only a dead — not
        merely busy — worker expires.

    Workers may connect at any time, including mid-search; a batch with
    no connected workers simply waits for the first one to join.  The
    coordinator it embeds speaks protocol v2 and v3, so older workers
    keep working for this single-job case.
    """

    def __init__(
        self,
        workload,
        tree,
        bind: str = "127.0.0.1:0",
        optimize_checks: bool = False,
        telemetry=None,
        incremental: bool = True,
        store=None,
        store_workload: str = "",
        retry: RetryPolicy | None = None,
        lease_timeout: float = 30.0,
        lattice=None,
    ) -> None:
        from repro.store import workload_id

        self._init_lease_state(
            workload, tree, optimize_checks, telemetry, incremental,
            store, store_workload, retry, lattice=lattice,
        )
        self.lease_timeout = lease_timeout

        name = getattr(workload, "name", tree.program_name)
        klass = getattr(workload, "klass", "")
        if klass and name.endswith("." + klass):
            name = name[: -(len(klass) + 1)]
        welcome = {
            "type": WELCOME,
            "version": PROTOCOL_VERSION,
            "workload": name,
            "klass": klass,
            "workload_id": workload_id(workload),
            "incremental": incremental,
            "optimize_checks": optimize_checks,
            "lease_timeout": lease_timeout,
        }

        self._events = deque()
        self._coord = _Coordinator(
            welcome, self.retry, lease_timeout, self._events
        )
        # The one channel of a standalone search shares the global event
        # queue, so draining stays exactly as it was pre-service.
        self._coord.register_channel(DEFAULT_CHANNEL, events=self._events)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster", daemon=True
        )
        self._thread.start()
        host, port = parse_address(bind)
        try:
            self.host, self.port = asyncio.run_coroutine_threadsafe(
                self._coord.start(host, port), self._loop
            ).result(timeout=10)
        except BaseException:
            self._stop_loop()
            raise

    # -- coordinator stats ---------------------------------------------------

    @property
    def address(self) -> str:
        """The bound ``host:port`` workers should connect to."""
        return f"{self.host}:{self.port}"

    @property
    def workers_connected(self) -> int:
        return len(self._coord.workers)

    @property
    def workers_seen(self) -> int:
        return self._coord.workers_seen

    @property
    def leases_granted(self) -> int:
        return self._coord.leases_granted

    @property
    def requeues(self) -> int:
        return self._coord.requeues

    @property
    def crashed_configs(self) -> int:
        return self._coord.crashed_tasks

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(
                self._coord.shutdown(), self._loop
            ).result(timeout=5)
        except (concurrent.futures.TimeoutError, RuntimeError):
            pass
        finally:
            self._stop_loop()
            self._drain_events()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._loop.is_running():
            self._loop.close()
