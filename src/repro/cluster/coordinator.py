"""The cluster coordinator: lease-based dispatch over TCP workers.

:class:`ClusterEvaluator` is the third sibling of the evaluator family
(serial :class:`~repro.search.evaluator.Evaluator`, fork-pool
:class:`~repro.search.parallel.ParallelEvaluator`): the search engine
hands it batches of configurations, and it shards them across however
many ``repro worker`` processes are currently connected.  The engine —
and therefore the whole search trajectory — cannot tell the difference:
batch deduplication, store replay, and counter semantics are the shared
:mod:`repro.search.batching` logic, outcomes come back in submission
order, and every evaluation a worker runs goes through the shared
:mod:`repro.search.execution` kernel, so the final configuration is
byte-identical to a serial search (differential-tested).

Threading model
---------------
The asyncio TCP server runs on one dedicated background thread; all
coordinator state (workers, leases, the pending queue) lives on that
loop and is never touched from the engine thread.  ``evaluate_batch``
submits a batch with ``run_coroutine_threadsafe`` and blocks, draining
the coordinator's event queue into the telemetry hub while it waits —
so traces keep a single writer (the engine thread) and ``--progress``
still renders worker occupancy live.

Fault tolerance
---------------
Liveness is heartbeat-based: any worker message refreshes its deadline,
and a worker silent for ``lease_timeout`` seconds — or whose connection
reaches EOF, the usual fate of a SIGKILLed process — is declared lost.
Its leases are requeued under the shared
:class:`~repro.search.retry.RetryPolicy` (exponential per-task backoff);
a task that keeps losing its worker through every retry is classified
``worker_crash`` exactly like a fork-pool crash.  Results are
first-wins: if a presumed-dead worker resurfaces and reports a requeued
task, the duplicate is ignored — evaluations are deterministic, so
either copy is the same outcome — and re-connected workers never
re-execute configs the store already decided, because decided configs
are filtered out parent-side before tasks are ever created.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
import time
from collections import deque

from repro.cluster.protocol import (
    BYE,
    ERROR,
    EVENTS,
    HEARTBEAT,
    HELLO,
    LEASE,
    OK,
    PROTOCOL_VERSION,
    RESULT,
    TASK,
    WAIT,
    WELCOME,
    ProtocolError,
    outcome_from_wire,
    pack_frame,
    parse_address,
    recv_frame_async,
    send_frame_async,
)
from repro.config.model import Config
from repro.search.batching import plan_batch, record_batch
from repro.search.execution import DELTA_COUNTERS
from repro.search.results import EvalOutcome
from repro.search.retry import RetryPolicy
from repro.telemetry import NULL_TELEMETRY

#: how long an idle worker is told to wait before polling for work again
#: (doubles as the heartbeat that keeps it alive while the queue is dry).
POLL_DELAY = 0.02


class ClusterError(RuntimeError):
    """Coordinator-side setup or dispatch failure."""


class _Task:
    """One leased unit of work: a deduplicated configuration."""

    __slots__ = ("task_id", "index", "flags", "digest", "attempts",
                 "not_before", "done")

    def __init__(self, task_id: int, index: int, flags: dict, digest: str):
        self.task_id = task_id
        self.index = index          # position in the current batch
        self.flags = flags          # wire form: node id -> policy char
        self.digest = digest
        self.attempts = 0           # crashes so far (not normal failures)
        self.not_before = 0.0       # backoff gate for requeued tasks
        self.done = False

    def payload(self) -> dict:
        return {
            "type": TASK,
            "task": self.task_id,
            "flags": self.flags,
            "digest": self.digest,
        }


class _Batch:
    """One engine batch in flight on the loop."""

    __slots__ = ("outcomes", "remaining", "deltas", "done")

    def __init__(self, size: int, loop) -> None:
        self.outcomes: list = [None] * size
        self.remaining = size
        self.deltas = [0] * len(DELTA_COUNTERS)
        self.done = loop.create_future()

    def finish_one(self, index: int, outcome: EvalOutcome, deltas=None) -> None:
        self.outcomes[index] = outcome
        if deltas:
            for i, delta in enumerate(deltas[: len(self.deltas)]):
                self.deltas[i] += int(delta)
        self.remaining -= 1
        if self.remaining == 0 and not self.done.done():
            self.done.set_result(None)


class _WorkerConn:
    """Loop-side connection state for one network worker."""

    __slots__ = ("wid", "name", "writer", "leases", "last_seen", "reaped")

    def __init__(self, wid: str, name: str, writer, now: float) -> None:
        self.wid = wid
        self.name = name
        self.writer = writer
        self.leases: dict[int, _Task] = {}
        self.last_seen = now
        self.reaped = False


class _Coordinator:
    """Everything that runs on the event-loop thread."""

    def __init__(
        self,
        welcome: dict,
        retry: RetryPolicy,
        lease_timeout: float,
        events: deque,
    ) -> None:
        self.welcome = welcome
        self.retry = retry
        self.lease_timeout = lease_timeout
        self.events = events        # (kind, fields) — drained engine-side
        self.workers: dict[str, _WorkerConn] = {}
        self.pending: deque[_Task] = deque()
        self.delayed: list[_Task] = []
        self.tasks: dict[int, _Task] = {}
        self.batch: _Batch | None = None
        self.closing = False
        self.server = None
        self.sweeper = None
        self._worker_seq = 0
        self._task_seq = 0
        # stats (read engine-side after drain; plain ints, GIL-safe)
        self.workers_seen = 0
        self.leases_granted = 0
        self.requeues = 0
        self.crashed_tasks = 0

    def event(self, kind: str, **fields) -> None:
        self.events.append((kind, fields))

    # -- lifecycle (loop thread) --------------------------------------------

    async def start(self, host: str, port: int) -> tuple[str, int]:
        self.server = await asyncio.start_server(self._handle, host, port)
        self.sweeper = asyncio.ensure_future(self._sweep())
        bound = self.server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def shutdown(self) -> None:
        self.closing = True
        if self.sweeper is not None:
            self.sweeper.cancel()
        for worker in list(self.workers.values()):
            worker.reaped = True  # a closed connection is not a lost worker
            with contextlib.suppress(Exception):
                worker.writer.write(pack_frame({"type": BYE}))
            with contextlib.suppress(Exception):
                worker.writer.close()
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()

    # -- batch dispatch (loop thread) ---------------------------------------

    async def run_batch(self, payload: list) -> tuple[list, list]:
        """Queue *payload* (``(flags, digest)`` pairs) as leasable tasks
        and wait until every one is decided."""
        loop = asyncio.get_running_loop()
        batch = _Batch(len(payload), loop)
        self.batch = batch
        for index, (flags, digest) in enumerate(payload):
            self._task_seq += 1
            task = _Task(self._task_seq, index, flags, digest)
            self.tasks[task.task_id] = task
            self.pending.append(task)
        try:
            await batch.done
        finally:
            self.batch = None
            self.tasks.clear()
            self.pending.clear()
            self.delayed.clear()
        return batch.outcomes, batch.deltas

    def _next_task(self) -> _Task | None:
        now = asyncio.get_running_loop().time()
        if self.delayed:
            still_delayed = []
            for task in self.delayed:
                if task.done:
                    continue
                if task.not_before <= now:
                    self.pending.append(task)
                else:
                    still_delayed.append(task)
            self.delayed[:] = still_delayed
        while self.pending:
            task = self.pending.popleft()
            if not task.done:
                return task
        return None

    # -- connection handling (loop thread) ----------------------------------

    async def _handle(self, reader, writer) -> None:
        worker = None
        try:
            worker = await self._handshake(reader, writer)
            if worker is None:
                return
            await self._serve(worker, reader, writer)
        except (ProtocolError, ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            if worker is not None:
                self._reap(worker, "disconnect")
            with contextlib.suppress(Exception):
                writer.close()

    async def _handshake(self, reader, writer) -> _WorkerConn | None:
        hello = await recv_frame_async(reader)
        if hello is None or hello.get("type") != HELLO:
            return None
        if hello.get("version") != PROTOCOL_VERSION:
            await send_frame_async(writer, {
                "type": ERROR,
                "message": f"protocol version {hello.get('version')!r}, "
                           f"coordinator speaks {PROTOCOL_VERSION}",
            })
            return None
        self._worker_seq += 1
        wid = f"w{self._worker_seq}"
        name = f"{hello.get('host', '?')}:{hello.get('pid', '?')}"
        now = asyncio.get_running_loop().time()
        worker = _WorkerConn(wid, name, writer, now)
        self.workers[wid] = worker
        self.workers_seen += 1
        self.event("cluster.worker_join", worker=wid, name=name)
        await send_frame_async(writer, dict(self.welcome))
        return worker

    async def _serve(self, worker: _WorkerConn, reader, writer) -> None:
        while True:
            message = await recv_frame_async(reader)
            if message is None:
                return  # EOF: worker gone (reaped by caller)
            worker.last_seen = asyncio.get_running_loop().time()
            kind = message.get("type")
            if kind == LEASE:
                if self.closing:
                    await send_frame_async(writer, {"type": BYE})
                    worker.reaped = True  # clean exit: not "lost"
                    self.workers.pop(worker.wid, None)
                    return
                task = self._next_task()
                if task is None:
                    await send_frame_async(
                        writer, {"type": WAIT, "delay": POLL_DELAY}
                    )
                else:
                    worker.leases[task.task_id] = task
                    self.leases_granted += 1
                    self.event(
                        "cluster.lease",
                        worker=worker.wid, task=task.task_id,
                        busy=len(worker.leases),
                    )
                    await send_frame_async(writer, task.payload())
            elif kind == RESULT:
                self._complete(worker, message)
                await send_frame_async(writer, {"type": OK})
            elif kind == ERROR:
                # The worker survived but its evaluation blew up
                # (instrumentation bug, unpicklable trap, ...): treat it
                # like a crash of that one task — requeue elsewhere.
                worker.leases.pop(message.get("task"), None)
                self._task_lost(message.get("task"), "worker_error")
                await send_frame_async(writer, {"type": OK})
            elif kind == HEARTBEAT:
                self.event(
                    "cluster.heartbeat",
                    worker=worker.wid, busy=len(worker.leases),
                )
            elif kind == EVENTS:
                # One-way telemetry forwarding (protocol v2): merge the
                # worker's per-task events into the coordinator's queue,
                # tagged with the worker id.  The worker's own clock is
                # preserved as `worker_ts`; the engine-side drain stamps
                # the merged trace's single monotonic `ts` on emission.
                task_id = message.get("task")
                for forwarded in message.get("events", ()):
                    if not isinstance(forwarded, dict) or "kind" not in forwarded:
                        continue
                    fields = dict(forwarded)
                    event_kind = fields.pop("kind")
                    fields["worker_ts"] = fields.pop("ts", 0.0)
                    fields["worker"] = worker.wid
                    fields.setdefault("task", task_id)
                    self.event(event_kind, **fields)
            elif kind == BYE:
                worker.reaped = True
                self.workers.pop(worker.wid, None)
                self._requeue_leases(worker, "bye")
                return
            else:
                raise ProtocolError(f"unexpected message {kind!r}")

    # -- lease accounting (loop thread) --------------------------------------

    def _complete(self, worker: _WorkerConn, message: dict) -> None:
        task_id = message.get("task")
        worker.leases.pop(task_id, None)
        task = self.tasks.get(task_id)
        if task is None or task.done:
            return  # late duplicate from a presumed-dead worker: first wins
        task.done = True
        if self.batch is not None:
            self.batch.finish_one(
                task.index,
                outcome_from_wire(message["outcome"]),
                message.get("deltas"),
            )

    def _task_lost(self, task_id, reason: str) -> None:
        task = self.tasks.get(task_id)
        if task is None or task.done:
            return
        task.attempts += 1
        if self.retry.exhausted(task.attempts):
            # Kept killing (or losing) its executor: classify, descend.
            self.crashed_tasks += 1
            self.event("eval.worker_crash", attempts=task.attempts)
            task.done = True
            if self.batch is not None:
                self.batch.finish_one(
                    task.index,
                    self.retry.crash_outcome(
                        task.attempts, what="cluster worker died"
                    ),
                )
            return
        self.requeues += 1
        now = asyncio.get_running_loop().time()
        task.not_before = now + self.retry.delay(task.attempts)
        self.delayed.append(task)
        self.event(
            "cluster.requeue",
            task=task.task_id, attempts=task.attempts, reason=reason,
        )

    def _requeue_leases(self, worker: _WorkerConn, reason: str) -> None:
        leases = list(worker.leases.values())
        worker.leases.clear()
        for task in leases:
            self._task_lost(task.task_id, reason)

    def _reap(self, worker: _WorkerConn, reason: str) -> None:
        """A worker is gone (EOF, protocol error, expired heartbeat)."""
        if worker.reaped:
            return
        worker.reaped = True
        self.workers.pop(worker.wid, None)
        self.event(
            "cluster.worker_lost",
            worker=worker.wid, leases=len(worker.leases), reason=reason,
        )
        self._requeue_leases(worker, reason)

    async def _sweep(self) -> None:
        """Expire workers whose heartbeats stopped (network partition,
        frozen process — a SIGKILL usually surfaces as EOF instead)."""
        interval = max(0.01, min(1.0, self.lease_timeout / 4))
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for worker in list(self.workers.values()):
                if now - worker.last_seen > self.lease_timeout:
                    self._reap(worker, "expired")
                    with contextlib.suppress(Exception):
                        worker.writer.close()


class ClusterEvaluator:
    """Evaluator that dispatches batches to network workers.

    Parameters mirror :class:`~repro.search.parallel.ParallelEvaluator`
    where they overlap; the extras:

    bind:
        ``HOST:PORT`` to listen on (port 0 = let the OS pick; the bound
        address is in :attr:`address`).
    retry:
        Shared :class:`~repro.search.retry.RetryPolicy` for tasks whose
        worker dies (requeue with exponential backoff, classify as
        ``worker_crash`` on exhaustion).
    lease_timeout:
        Seconds of worker silence (no result/heartbeat/poll) before its
        leases are requeued and the connection is declared lost.
        Workers heartbeat at a quarter of this, so only a dead — not
        merely busy — worker expires.

    Workers may connect at any time, including mid-search; a batch with
    no connected workers simply waits for the first one to join.
    """

    def __init__(
        self,
        workload,
        tree,
        bind: str = "127.0.0.1:0",
        optimize_checks: bool = False,
        telemetry=None,
        incremental: bool = True,
        store=None,
        store_workload: str = "",
        retry: RetryPolicy | None = None,
        lease_timeout: float = 30.0,
    ) -> None:
        from repro.store import workload_id

        self.workload = workload
        self.tree = tree
        self.optimize_checks = optimize_checks
        self.incremental = incremental
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache: dict = {}
        self.semantic_cache: dict = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.store = store
        self.store_workload = store_workload
        self.store_hits = 0
        #: configurations actually run on some worker (excludes replays)
        self.executions = 0
        #: policy digests counted toward ``evaluations`` (see Evaluator)
        self.decided: set = set()
        self.retry = retry if retry is not None else RetryPolicy()
        self.lease_timeout = lease_timeout
        self._drain_interval = 0.05

        name = getattr(workload, "name", tree.program_name)
        klass = getattr(workload, "klass", "")
        if klass and name.endswith("." + klass):
            name = name[: -(len(klass) + 1)]
        welcome = {
            "type": WELCOME,
            "version": PROTOCOL_VERSION,
            "workload": name,
            "klass": klass,
            "workload_id": workload_id(workload),
            "incremental": incremental,
            "optimize_checks": optimize_checks,
            "lease_timeout": lease_timeout,
        }

        self._events: deque = deque()
        self._coord = _Coordinator(
            welcome, self.retry, lease_timeout, self._events
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster", daemon=True
        )
        self._thread.start()
        host, port = parse_address(bind)
        try:
            self.host, self.port = asyncio.run_coroutine_threadsafe(
                self._coord.start(host, port), self._loop
            ).result(timeout=10)
        except BaseException:
            self._stop_loop()
            raise
        self._closed = False

    # -- coordinator stats ---------------------------------------------------

    @property
    def address(self) -> str:
        """The bound ``host:port`` workers should connect to."""
        return f"{self.host}:{self.port}"

    @property
    def workers_connected(self) -> int:
        return len(self._coord.workers)

    @property
    def workers_seen(self) -> int:
        return self._coord.workers_seen

    @property
    def leases_granted(self) -> int:
        return self._coord.leases_granted

    @property
    def requeues(self) -> int:
        return self._coord.requeues

    @property
    def crashed_configs(self) -> int:
        return self._coord.crashed_tasks

    def _store_id(self) -> str:
        if not self.store_workload:
            from repro.store import workload_id

            self.store_workload = workload_id(self.workload)
        return self.store_workload

    # -- telemetry bridge ----------------------------------------------------

    def _drain_events(self) -> None:
        """Emit queued coordinator events from the engine thread (the
        trace's single writer)."""
        telemetry = self.telemetry
        events = self._events
        while events:
            kind, fields = events.popleft()
            if not telemetry.enabled:
                continue
            if kind == "eval.worker_crash":
                telemetry.count("eval.worker_crashes")
            elif kind == "cluster.requeue":
                telemetry.count("cluster.requeues")
            elif kind == "cluster.lease":
                telemetry.count("cluster.leases")
            telemetry.emit(kind, **fields)

    # -- Evaluator protocol ---------------------------------------------------

    def evaluate(self, config: Config) -> EvalOutcome:
        return self.evaluate_batch([config])[0]

    def evaluate_batch(self, configs: list[Config]) -> list[EvalOutcome]:
        if self._closed:
            raise ClusterError("evaluator is closed")
        # Parent-side dedup (shared with ParallelEvaluator): what remains
        # in plan.jobs is exactly what a serial evaluator would execute —
        # re-connected or duplicate workers can never re-run a decided
        # config because decided configs never become tasks.
        plan = plan_batch(self, configs)
        outcomes: list = []
        batch_wall = 0.0
        if plan.jobs:
            payload = [
                (
                    {nid: policy.value for nid, policy in job.config.flags.items()},
                    job.digest,
                )
                for job in plan.jobs
            ]
            start = time.perf_counter()
            future = asyncio.run_coroutine_threadsafe(
                self._coord.run_batch(payload), self._loop
            )
            while True:
                try:
                    outcomes, deltas = future.result(self._drain_interval)
                    break
                except concurrent.futures.TimeoutError:
                    self._drain_events()  # keep progress/traces live
            batch_wall = time.perf_counter() - start
            # Cache counters arrive through the forwarded worker event
            # stream (metric.count, protocol v2); the RESULT deltas stay
            # on the wire as a cross-check but are not folded in twice.
            del deltas
        self._drain_events()
        return record_batch(self, plan, outcomes, batch_wall)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(
                self._coord.shutdown(), self._loop
            ).result(timeout=5)
        except (concurrent.futures.TimeoutError, RuntimeError):
            pass
        finally:
            self._stop_loop()
            self._drain_events()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "ClusterEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
