"""Distributed search service: coordinator + network workers.

The paper observes the search "is highly parallelizable, and the system
can launch many independent tests if cores are available"; this package
extends that beyond one machine.  A coordinator (``repro serve``, or any
``repro search --cluster``) owns the search frontier and leases
individual configuration evaluations to stateless TCP workers
(``repro worker HOST:PORT``) over the length-prefixed JSON protocol in
:mod:`repro.cluster.protocol`.  Leases are heartbeat-guarded: a worker
that dies or partitions mid-task has its work requeued under the shared
:class:`~repro.search.retry.RetryPolicy`, and results are deduplicated
first-wins — so the final configuration is byte-identical to a serial
search no matter how many workers join, leave, or crash along the way.

See ``docs/CLUSTER.md`` for the protocol and failure matrix.
"""

from repro.cluster.coordinator import (
    ClusterError,
    ClusterEvaluator,
    JobCancelled,
)
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ProtocolError,
    parse_address,
)
from repro.cluster.worker import EXIT_SENTINEL_VAR, WorkerError, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ClusterError",
    "ClusterEvaluator",
    "EXIT_SENTINEL_VAR",
    "JobCancelled",
    "ProtocolError",
    "WorkerError",
    "parse_address",
    "run_worker",
]
