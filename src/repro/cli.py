"""Command-line interface: ``python -m repro <command> ...``.

The CLI mirrors how the paper's tool chain was driven: compile (or take)
a binary, generate a configuration template, edit flags, instrument, run,
and let the automatic search do the whole loop on a benchmark.

Commands
--------
compile     MH sources -> executable image (pickled Program)
run         execute a program (optionally multi-rank / profiled)
disasm      disassemble a program
config      emit the initial configuration exchange file (paper Fig. 3)
instrument  rewrite a program under a configuration file
view        render the configuration tree (paper Fig. 4, as text)
workloads   list registered workloads (and check their conformance)
analyze     shadow-value analysis of a registered workload (JSON report)
profile     per-site cycle census of a registered workload (profile.json)
search      automatic mixed-precision search on a registered workload
serve       run a search as a cluster coordinator (network workers),
            or a multi-tenant job service with --service ROOT
submit      submit a campaign to a job service (`repro serve --service`)
jobs        list or cancel jobs on a job service
result      fetch a finished job's row + best configuration
worker      evaluation worker for a coordinator (`repro serve`)
store       result-store maintenance (JSONL export/import)
trace       trace toolkit: summary | compare | profile | flame
experiment  regenerate one of the paper's tables/figures

Program images are plain pickles of :class:`repro.binary.model.Program`;
anything ending in ``.mh`` (or any readable text) is compiled on the fly.

Workload names resolve through the SDK registry (:mod:`repro.sdk`):
built-ins plus anything loaded with ``--plugin module[:attr]`` (or
``--plugin path/to/file.py``) or published on the ``repro.workloads``
entry-point group.  ``repro workloads`` prints the live catalogue.

Exit codes (documented in README.md and docs/CLUSTER.md): 0 success,
1 runtime failure, 2 usage error (argparse), 3 missing input (a store
database or JSONL file that does not exist), 4 unusable store (locked
by another process, or an incompatible schema version), 130 interrupted
search (resumable when run under ``--campaign``).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import pickle
import sys

from repro import __version__

from repro.asm.disassembler import disassemble_program
from repro.binary.model import Program
from repro.compiler import CompileOptions, compile_program
from repro.config.fileformat import dump_config, load_config
from repro.config.generator import build_tree
from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.mpi.runner import run_mpi_program
from repro.search.bfs import SearchEngine, SearchOptions
from repro.telemetry import (
    JsonlSink,
    MetricsRegistry,
    ProgressRenderer,
    Telemetry,
)
from repro.viewer.tree import render_config_tree, render_search_summary
from repro.vm.machine import run_program
from repro.workloads import make_workload


def _load_plugins(args) -> None:
    """Register every workload named by ``--plugin`` before lookups."""
    from repro.sdk import PluginError, load_plugin

    for ref in getattr(args, "plugin", None) or ():
        try:
            load_plugin(ref)
        except PluginError as exc:
            raise SystemExit(f"--plugin: {exc}")


def _build_telemetry(args) -> tuple[Telemetry, MetricsRegistry | None]:
    """Assemble the Telemetry hub requested by --trace/--metrics/--progress.

    Returns the hub (disabled and free when no flag was given) plus the
    metrics registry, if one was requested, for end-of-run reporting.
    """
    sinks = []
    if getattr(args, "trace", None):
        sinks.append(JsonlSink(args.trace))
    if getattr(args, "progress", False):
        sinks.append(ProgressRenderer())
    metrics = MetricsRegistry() if getattr(args, "metrics", False) else None
    return Telemetry(sinks=sinks, metrics=metrics), metrics


def _clear_progress(telemetry: Telemetry) -> None:
    """Blank any live progress line before ordinary stderr output."""
    for sink in telemetry.sinks:
        if isinstance(sink, ProgressRenderer):
            sink.clear()


def _load_program(paths: list[str], options: CompileOptions) -> Program:
    """Load a pickled image, or compile one or more MH sources."""
    if len(paths) == 1 and paths[0].endswith((".rpx", ".bin", ".pickle")):
        with open(paths[0], "rb") as handle:
            program = pickle.load(handle)
        if not isinstance(program, Program):
            raise SystemExit(f"{paths[0]}: not a program image")
        return program
    sources = []
    for path in paths:
        with open(path, "r") as handle:
            sources.append(handle.read())
    return compile_program(sources, options)


def _save_program(program: Program, path: str) -> None:
    with open(path, "wb") as handle:
        pickle.dump(program, handle)


def _compile_options(args) -> CompileOptions:
    return CompileOptions(
        name=getattr(args, "name", "a.out") or "a.out",
        real_type=getattr(args, "real", "f64"),
        transcendentals=getattr(args, "transcendentals", "instruction"),
    )


def cmd_compile(args) -> int:
    program = _load_program(args.sources, _compile_options(args))
    _save_program(program, args.output)
    stats = program.stats()
    print(f"{args.output}: {stats['instructions']} instructions, "
          f"{stats['candidates']} candidates, {stats['functions']} functions, "
          f"{stats['data_words']} data words")
    return 0


def cmd_run(args) -> int:
    program = _load_program(args.target, _compile_options(args))
    telemetry, metrics = _build_telemetry(args)
    with telemetry:
        if args.mpi > 1:
            result = run_mpi_program(
                program, args.mpi, seed=args.seed, stack_words=args.stack,
                telemetry=telemetry,
            )
            print(f"[{args.mpi} ranks, makespan {result.elapsed} cycles, "
                  f"{result.collectives} collectives]")
            values = result.values()
        else:
            run = run_program(
                program, seed=args.seed, stack_words=args.stack,
                profile=args.profile, telemetry=telemetry,
            )
            print(f"[{run.cycles} cycles, {run.steps} instructions]")
            values = run.values()
            if args.profile:
                hot = sorted(run.exec_counts.items(), key=lambda kv: -kv[1])[:10]
                print("hottest instructions:")
                for addr, count in hot:
                    print(f"  {addr:#08x}: {count}")
    for value in values:
        print(value)
    if metrics is not None:
        print(metrics.summary(), end="")
    return 0


def cmd_disasm(args) -> int:
    program = _load_program(args.target, _compile_options(args))
    print(disassemble_program(program))
    return 0


def cmd_config(args) -> int:
    program = _load_program(args.target, _compile_options(args))
    tree = build_tree(program)
    text = dump_config(Config.all_double(tree))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {tree.candidate_count} candidates to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_instrument(args) -> int:
    program = _load_program(args.target, _compile_options(args))
    tree = build_tree(program)
    if args.config:
        with open(args.config) as handle:
            config = load_config(tree, handle.read())
    else:
        config = Config.all_single(tree) if args.all_single else Config.all_double(tree)
    result = instrument(
        program, config, mode=args.mode, optimize_checks=args.optimize_checks,
        streamline=args.streamline,
    )
    _save_program(result.program, args.output)
    stats = result.stats
    print(f"{args.output}: {stats.replaced_single} single snippets, "
          f"{stats.wrapped_double} double guards, {stats.ignored} ignored; "
          f"text growth {result.growth:.2f}x")
    return 0


def cmd_view(args) -> int:
    program = _load_program(args.target, _compile_options(args))
    tree = build_tree(program)
    if args.config:
        with open(args.config) as handle:
            config = load_config(tree, handle.read())
    else:
        config = Config.all_double(tree)
    profile = None
    if args.profile:
        profile = run_program(program, profile=True).exec_counts
    analysis = None
    if args.analysis:
        from repro.analysis import AnalysisReport

        with open(args.analysis) as handle:
            analysis = AnalysisReport.loads(handle.read())
    print(
        render_config_tree(config, profile=profile, analysis=analysis),
        end="",
    )
    return 0


def cmd_workloads(args) -> int:
    """List the registry; with --check, run conformance over it."""
    from repro.sdk import REGISTRY, run_conformance

    _load_plugins(args)
    specs = REGISTRY.specs()
    for name, error in REGISTRY.plugin_errors:
        print(f"workloads: entry point {name!r} failed to load: {error}",
              file=sys.stderr)
    name_w = max([len(s.name) for s in specs] + [8])
    cls_w = max([len(",".join(s.classes)) for s in specs] + [7])
    origin_w = max([len(s.origin) for s in specs] + [6])
    print(f"{'NAME':<{name_w}} {'CLASSES':<{cls_w}} {'VERIFY':<8} "
          f"{'MPI':<3} {'ORIGIN':<{origin_w}} DESCRIPTION")
    for spec in specs:
        print(f"{spec.name:<{name_w}} {','.join(spec.classes):<{cls_w}} "
              f"{spec.verify:<8} {'yes' if spec.mpi else 'no':<3} "
              f"{spec.origin:<{origin_w}} {spec.description}")
    if not args.check:
        return 0
    failed = 0
    for spec in specs:
        report = run_conformance(spec)
        if report.passed:
            print(f"conformance {report.workload}.{report.klass}: "
                  f"PASS ({len(report.checks)} checks)")
        else:
            failed += 1
            print(report.summary(), file=sys.stderr)
    if failed:
        print(f"workloads: {failed} of {len(specs)} specs failed "
              f"conformance", file=sys.stderr)
        return 1
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze

    _load_plugins(args)
    klass = args.klass_opt if args.klass_opt is not None else args.klass
    workload = make_workload(args.workload, klass)
    telemetry, metrics = _build_telemetry(args)
    with telemetry:
        report = analyze(workload, telemetry=telemetry)
    text = report.dumps()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        hist = ", ".join(
            f"{k}={v}" for k, v in report.verdict_histogram().items()
        )
        print(f"{args.output}: {report.observed}/{report.candidates} "
              f"candidates observed; verdicts: {hist or 'none'}")
    else:
        print(text)
    if metrics is not None:
        print(metrics.summary(), end="", file=sys.stderr)
    return 0


def cmd_search(args) -> int:
    _load_plugins(args)
    campaign = None
    store = None
    if args.resume:
        if args.workload:
            raise SystemExit(
                "search: --resume takes the workload from the campaign "
                "directory; drop the positional argument"
            )
        from repro.campaign import Campaign

        campaign = Campaign.open(args.resume)
        workload = make_workload(campaign.workload, campaign.klass)
        options = campaign.options
        if args.cluster:
            # The bind address is host-specific, not part of the durable
            # search definition — a resumed campaign may serve anywhere.
            options = dataclasses.replace(
                options,
                cluster=args.cluster,
                lease_timeout=args.lease_timeout,
            )
    else:
        if not args.workload:
            raise SystemExit(
                "search: a workload is required (or --resume CAMPAIGN)"
            )
        klass = args.klass_opt if args.klass_opt is not None else args.klass
        workload = make_workload(args.workload, klass)
        try:
            options = SearchOptions(
                stop_level=args.stop_level,
                workers=args.workers,
                refine=args.refine,
                incremental=not args.no_incremental,
                analysis=args.analysis,
                cluster=args.cluster or "",
                lease_timeout=args.lease_timeout,
                lattice=args.lattice,
            )
        except ValueError as exc:
            raise SystemExit(f"search: {exc}")
        if args.campaign:
            from repro.campaign import Campaign

            campaign = Campaign.create(args.campaign, args.workload, klass, options)
    if args.store:
        if campaign is not None:
            raise SystemExit(
                "search: --store conflicts with --campaign/--resume "
                "(a campaign owns its own result store)"
            )
        from repro.store import ResultStore

        store = ResultStore(args.store)
    telemetry, metrics = _build_telemetry(args)
    try:
        with telemetry:
            engine = SearchEngine(
                workload, options, telemetry=telemetry,
                campaign=campaign, store=store,
            )
            if options.cluster:
                # Announce the bound address (port 0 lets the OS pick)
                # so workers know where to dial before run() blocks.
                _clear_progress(telemetry)
                print(
                    f"serving {workload.name} on "
                    f"{engine.evaluator.address} — connect workers with: "
                    f"repro worker {engine.evaluator.address}",
                    file=sys.stderr, flush=True,
                )
            result = engine.run()
    except KeyboardInterrupt:
        _clear_progress(telemetry)
        where = args.resume or args.campaign
        if where:
            print(f"interrupted; resume with: repro search --resume {where}",
                  file=sys.stderr)
        else:
            print("interrupted (no --campaign directory, progress not kept)",
                  file=sys.stderr)
        return 130
    finally:
        if campaign is not None:
            campaign.close()
        if store is not None:
            store.close()
    if args.verbose:
        print(render_search_summary(result), end="")
        print()
    row = result.row()
    if not args.quiet:
        pruned = (
            f" ({result.analysis_pruned} pruned by analysis)"
            if result.analysis_used and result.analysis_pruned
            else ""
        )
        if result.store_replays:
            pruned += f" ({result.store_replays} replayed from store)"
        resumed = " [resumed]" if result.resumed else ""
        print(f"search {result.workload}{resumed}: "
              f"{result.candidates} candidates, "
              f"{result.configs_tested} configurations tested{pruned}, "
              f"static {row['static_pct']}% / dynamic {row['dynamic_pct']}%, "
              f"final {row['final']} in {result.wall_seconds:.2f}s")
    if result.refined_config is not None and not args.quiet:
        print(f"refined: static {result.refined_static_pct * 100:.1f}%  "
              f"dynamic {result.refined_dynamic_pct * 100:.1f}%  "
              f"verified {result.refined_verified}")
    if args.trace and not args.quiet:
        print(f"wrote trace to {args.trace}")
    if metrics is not None:
        print(metrics.summary(), end="")
    if args.report:
        from repro.viewer.report import render_markdown_report

        with open(args.report, "w") as handle:
            handle.write(
                render_markdown_report(
                    result, workload, metrics=metrics,
                    analysis=engine.analysis_report,
                )
            )
        print(f"wrote report to {args.report}")
    if args.explain:
        from repro.profile import collect_profile
        from repro.viewer.explain import render_explain_report

        events = None
        if args.trace:
            from repro.telemetry.tools import load_events

            events = load_events(args.trace)
        with open(args.explain, "w") as handle:
            handle.write(
                render_explain_report(
                    result,
                    analysis=engine.analysis_report,
                    events=events,
                    profile=collect_profile(workload),
                )
            )
        print(f"wrote explanation to {args.explain}")
    if args.output and result.final_config is not None:
        best = (
            result.refined_config
            if result.refined_config is not None and result.refined_verified
            else result.final_config
        )
        with open(args.output, "w") as handle:
            handle.write(dump_config(best, lattice=options.lattice))
        print(f"wrote configuration to {args.output}")
    return 0


def cmd_profile(args) -> int:
    from repro.profile import collect_profile, dumps

    _load_plugins(args)
    klass = args.klass_opt if args.klass_opt is not None else args.klass
    workload = make_workload(args.workload, klass)
    telemetry, metrics = _build_telemetry(args)
    with telemetry:
        profile = collect_profile(
            workload, use_observer=args.observer, telemetry=telemetry
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dumps(profile))
        print(f"wrote profile to {args.output}")
    candidates = sum(1 for site in profile["sites"] if site["node"])
    print(
        f"profile {profile['workload']} class {profile['klass'] or '-'}: "
        f"{profile['steps']} steps, {profile['cycles']} cycles, "
        f"{len(profile['sites'])} sites ({candidates} candidates), "
        f"{profile['candidate_cycles']} candidate cycles"
    )
    hot = sorted(
        (s for s in profile["sites"] if s["node"]),
        key=lambda s: (-s["cycles"], s["addr"]),
    )[: args.top]
    if hot:
        print("hottest candidate sites:")
        for site in hot:
            share = 100.0 * site["cycles"] / max(1, profile["cycles"])
            print(
                f"  {site['node']:<8} {site['addr']:#08x} "
                f"{site['mnemonic']:<8} {site['execs']:>10} execs "
                f"{site['cycles']:>12} cycles ({share:.1f}%)"
            )
    if metrics is not None:
        print(metrics.summary(), end="")
    return 0


def cmd_trace(args) -> int:
    from repro.telemetry import tools

    try:
        if args.trace_command == "summary":
            print(tools.summarize(tools.load_events(args.file)))
        elif args.trace_command == "compare":
            print(
                tools.compare(
                    tools.load_events(args.file_a),
                    tools.load_events(args.file_b),
                    label_a=args.file_a,
                    label_b=args.file_b,
                )
            )
        elif args.trace_command == "profile":
            print(tools.profile_view(tools.load_events(args.file), top=args.top))
        else:  # flame
            text = tools.flame_view(tools.load_events(args.file))
            if args.output:
                with open(args.output, "w") as handle:
                    handle.write(text + "\n" if text else "")
                stacks = len(text.splitlines())
                print(f"wrote {stacks} stacks to {args.output}")
            else:
                print(text)
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    """Single-job coordinator by default; --service hosts many."""
    if args.service:
        return _serve_service(args)
    args.cluster = args.address
    return cmd_search(args)


def _serve_service(args) -> int:
    import time

    from repro.service import PrecisionService
    from repro.service.jobs import TERMINAL_STATES
    from repro.telemetry import JsonlSink, Telemetry

    _load_plugins(args)
    if args.workload:
        print("serve: --service takes no workload (clients submit them)",
              file=sys.stderr)
        return 2
    sink = None
    telemetry = None
    if args.trace:
        sink = JsonlSink(args.trace)
        telemetry = Telemetry(sinks=[sink])
    service = PrecisionService(
        args.service,
        bind=args.address,
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        lease_timeout=args.lease_timeout,
        telemetry=telemetry,
    )
    if not args.quiet:
        print(f"service listening on {service.address} "
              f"(root {args.service})", flush=True)
    code = 0
    try:
        if args.run_jobs is not None:
            # Exit once N jobs have finished — the harness the smoke
            # tests and CI drive instead of signalling a daemon.
            while True:
                done = sum(
                    1 for job in service.registry.jobs()
                    if job.state in TERMINAL_STATES
                )
                if done >= args.run_jobs:
                    break
                time.sleep(0.1)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        if not args.quiet:
            print("\nservice: interrupted", file=sys.stderr)
        code = 130
    finally:
        service.close()
        if sink is not None:
            sink.close()
    return code


def _submit_options(args) -> dict:
    """SearchOptions JSON carried on a submit frame (same defaults as
    `repro search`)."""
    return {
        "stop_level": args.stop_level,
        "workers": args.workers,
        "refine": args.refine,
        "incremental": not args.no_incremental,
        "analysis": args.analysis,
        "lattice": args.lattice,
    }


def _print_job_outcome(reply: dict, quiet: bool) -> None:
    if quiet:
        return
    row = reply.get("row")
    if row:
        print(f"{reply['job']} {reply['state']}: {row['benchmark']} "
              f"tested {row['tested']}, static {row['static_pct']}%, "
              f"dynamic {row['dynamic_pct']}%, final {row['final']}")
    else:
        suffix = f" ({reply['error']})" if reply.get("error") else ""
        print(f"{reply['job']} {reply['state']}{suffix}")


def cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    _load_plugins(args)
    klass = args.klass_opt or args.klass
    try:
        with ServiceClient(args.address) as client:
            job = client.submit(
                args.workload, klass,
                options=_submit_options(args),
                tenant=args.tenant,
                quantum=args.quantum,
            )
            if not args.wait:
                print(job)
                return 0
            reply = client.wait(job, timeout=args.timeout)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    _print_job_outcome(reply, args.quiet)
    if args.output and reply.get("config"):
        with open(args.output, "w") as handle:
            handle.write(reply["config"])
        if not args.quiet:
            print(f"wrote configuration to {args.output}")
    return 0 if reply["state"] == "complete" else 1


def cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        with ServiceClient(args.address) as client:
            if args.cancel:
                reply = client.cancel(args.cancel)
                print(f"{reply['job']}: {reply['state']}")
                return 0
            jobs = client.jobs()
    except ServiceError as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("no jobs")
        return 0
    print(f"{'JOB':<6} {'TENANT':<12} {'WORKLOAD':<14} {'STATE':<10} "
          f"{'TESTED':>7} {'EXEC':>7}")
    for job in jobs:
        print(f"{job['job']:<6} {job['tenant']:<12} "
              f"{job['workload'] + '.' + job['klass']:<14} "
              f"{job['state']:<10} {job['tested']:>7} {job['executions']:>7}")
    return 0


def cmd_result(args) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        with ServiceClient(args.address) as client:
            if args.wait:
                reply = client.wait(args.job, timeout=args.timeout)
            else:
                reply = client.result(args.job)
    except ServiceError as exc:
        print(f"result: {exc}", file=sys.stderr)
        return 1
    if reply["state"] in ("queued", "running"):
        print(f"{args.job}: still {reply['state']} (use --wait)",
              file=sys.stderr)
        return 1
    _print_job_outcome(reply, args.quiet)
    if args.output and reply.get("config"):
        with open(args.output, "w") as handle:
            handle.write(reply["config"])
        if not args.quiet:
            print(f"wrote configuration to {args.output}")
    return 0 if reply["state"] == "complete" else 1


def cmd_worker(args) -> int:
    from repro.cluster import WorkerError, run_worker

    _load_plugins(args)
    try:
        stats = run_worker(
            args.address,
            max_tasks=args.max_tasks,
            connect_retries=args.connect_retries,
        )
    except WorkerError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\nworker: interrupted", file=sys.stderr)
        return 130
    if not args.quiet:
        print(f"worker done: {stats['tasks']} tasks "
              f"({stats['workload'] or 'no workload'})")
    return 0


#: missing input: the store database (export) or JSONL file (import)
EXIT_STORE_MISSING = 3
#: store exists but can't be used: locked by another process, or an
#: incompatible schema version
EXIT_STORE_UNAVAILABLE = 4


def cmd_store(args) -> int:
    import sqlite3

    from repro.store import ResultStore, StoreCollisionError, StoreSchemaError

    if args.store_command == "export" and not os.path.exists(args.db):
        print(f"store export: no such store: {args.db}", file=sys.stderr)
        return EXIT_STORE_MISSING
    if args.store_command == "import" and not os.path.exists(args.file):
        print(f"store import: no such file: {args.file}", file=sys.stderr)
        return EXIT_STORE_MISSING
    try:
        with ResultStore(args.db, timeout=args.timeout) as store:
            if args.store_command == "export":
                count = store.export_jsonl(args.file, workload=args.workload)
                print(f"exported {count} outcomes to {args.file}")
            else:  # import
                try:
                    count = store.import_jsonl(args.file)
                except StoreCollisionError as exc:
                    print(f"store import: {exc}", file=sys.stderr)
                    return 1
                print(f"imported {count} outcomes into {args.db}")
    except StoreSchemaError as exc:
        print(f"store: {exc}", file=sys.stderr)
        return EXIT_STORE_UNAVAILABLE
    except sqlite3.OperationalError as exc:
        print(f"store: {args.db}: {exc}", file=sys.stderr)
        return EXIT_STORE_UNAVAILABLE
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import amg, fig8, fig9, fig10, fig11, guided, resume
    from repro.experiments.tables import format_table

    name = args.figure
    if name == "resume":
        print(
            format_table(
                resume.run(classes=(args.klass,)),
                title="Checkpoint/resume differential",
            ),
            end="",
        )
        return 0
    if name == "guided":
        print(
            format_table(
                guided.run(classes=(args.klass,)),
                title="Guided vs unguided search",
            ),
            end="",
        )
        return 0
    if name == "fig8":
        print(format_table(fig8.run(klass=args.klass), title="Figure 8"), end="")
    elif name == "fig9":
        print(format_table(fig9.run(classes=(args.klass,)), title="Figure 9"), end="")
    elif name == "fig10":
        print(format_table(fig10.run(classes=(args.klass,)), title="Figure 10"), end="")
    elif name == "fig11":
        print(format_table(fig11.run(klass=args.klass), title="Figure 11"), end="")
    elif name == "amg":
        row = {k: v for k, v in amg.run(args.klass).items() if not k.startswith("_")}
        print(format_table([row], title="AMG (Section 3.2)"), end="")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name}")
    return 0


#: help text for workload-name arguments; the authoritative list is the
#: registry (`repro workloads`), which plugins extend at run time.
_WORKLOAD_HELP = ("a registered workload: bt|cg|ep|ft|lu|mg|sp|amg|superlu|"
                  "heat|nekcg, or one added by --plugin "
                  "(see `repro workloads`)")


def _add_plugin_flag(parser) -> None:
    parser.add_argument("--plugin", action="append", metavar="MODULE[:ATTR]",
                        default=[],
                        help="register workloads from a plugin module "
                             "(dotted name or path/to/file.py) before "
                             "resolving names; repeatable")


def _add_telemetry_flags(parser, progress: bool) -> None:
    parser.add_argument("--trace", metavar="FILE",
                        help="write a replayable JSONL event trace here")
    parser.add_argument("--metrics", action="store_true",
                        help="print aggregated telemetry metrics at the end")
    if progress:
        parser.add_argument("--progress", action="store_true",
                            help="live progress line on stderr")


def _add_compile_flags(parser) -> None:
    parser.add_argument("--real", choices=("f64", "f32"), default="f64",
                        help="meaning of the 'real' type (default f64)")
    parser.add_argument("--transcendentals", choices=("instruction", "library"),
                        default="instruction")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mixed-precision binary analysis on the virtual ISA "
        "(reproduction of Lam et al.)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MH sources to a program image")
    p.add_argument("sources", nargs="+")
    p.add_argument("-o", "--output", default="a.rpx")
    p.add_argument("--name", default="a.out")
    _add_compile_flags(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="run a program (source or image)")
    p.add_argument("target", nargs="+")
    p.add_argument("--mpi", type=int, default=1, metavar="RANKS")
    p.add_argument("--seed", type=lambda s: int(s, 0), default=0x9E3779B97F4A7C15)
    p.add_argument("--stack", type=int, default=8192)
    p.add_argument("--profile", action="store_true")
    _add_telemetry_flags(p, progress=False)
    _add_compile_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("disasm", help="disassemble a program")
    p.add_argument("target", nargs="+")
    _add_compile_flags(p)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("config", help="emit the initial configuration file")
    p.add_argument("target", nargs="+")
    p.add_argument("-o", "--output")
    _add_compile_flags(p)
    p.set_defaults(func=cmd_config)

    p = sub.add_parser("instrument", help="rewrite a program under a configuration")
    p.add_argument("target", nargs="+")
    p.add_argument("--config", help="configuration exchange file")
    p.add_argument("--all-single", action="store_true",
                   help="shortcut: replace everything (no --config needed)")
    p.add_argument("--mode", choices=("auto", "all", "none"), default="auto")
    p.add_argument("--optimize-checks", action="store_true",
                   help="redundant-check elimination (Section 2.5)")
    p.add_argument("--streamline", action="store_true",
                   help="compact snippets without scratch save/restore "
                        "(Section 2.5; needs a scratch-free program)")
    p.add_argument("-o", "--output", default="a.instr.rpx")
    _add_compile_flags(p)
    p.set_defaults(func=cmd_instrument)

    p = sub.add_parser("view", help="render the configuration tree")
    p.add_argument("target", nargs="+")
    p.add_argument("--config")
    p.add_argument("--profile", action="store_true")
    p.add_argument("--analysis", metavar="REPORT",
                   help="JSON analysis report (from `repro analyze -o`): "
                        "adds shadow verdict/error columns")
    _add_compile_flags(p)
    p.set_defaults(func=cmd_view)

    p = sub.add_parser(
        "workloads",
        help="list registered workloads (built-ins and plugins)",
    )
    p.add_argument("--check", action="store_true",
                   help="run the conformance harness over every registered "
                        "spec (smallest class) and exit non-zero on failure")
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "analyze",
        help="shadow-value analysis: one observed run, JSON report",
    )
    p.add_argument("workload", help=_WORKLOAD_HELP)
    p.add_argument("klass", nargs="?", default="W", help="problem class (S/W/A/C)")
    p.add_argument("--class", dest="klass_opt", default=None, metavar="KLASS",
                   help="problem class (same as the positional argument)")
    p.add_argument("-o", "--output",
                   help="write the JSON report here instead of stdout")
    _add_telemetry_flags(p, progress=False)
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "profile",
        help="per-site cycle census: one profiled run, schema-versioned "
             "profile.json",
    )
    p.add_argument("workload", help=_WORKLOAD_HELP)
    p.add_argument("klass", nargs="?", default="W", help="problem class (S/W/A/C)")
    p.add_argument("--class", dest="klass_opt", default=None, metavar="KLASS",
                   help="problem class (same as the positional argument)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the profile document here (profile.json)")
    p.add_argument("--observer", action="store_true",
                   help="count executions through the VM observer hook "
                        "instead of the native profile loop (bit-identical "
                        "output; differential-test mechanism)")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="candidate sites in the human summary (default 10)")
    _add_telemetry_flags(p, progress=False)
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("search", help="automatic search on a built-in workload")
    p.add_argument("workload", nargs="?",
                   help=_WORKLOAD_HELP + " (omitted with --resume)")
    p.add_argument("klass", nargs="?", default="W", help="problem class (S/W/A/C)")
    p.add_argument("--class", dest="klass_opt", default=None, metavar="KLASS",
                   help="problem class (same as the positional argument)")
    p.add_argument("--analysis", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="shadow-value analysis guidance: one extra observed "
                        "run up front prunes candidates whose singleton "
                        "verdict is already decided (--no-analysis restores "
                        "the paper's unguided search; the final configuration "
                        "is identical either way)")
    p.add_argument("--stop-level", default="instruction",
                   choices=("module", "function", "block", "instruction"))
    p.add_argument("--lattice", default="f64,f32", metavar="SPEC",
                   help="precision lattice to search down, e.g. "
                        "f64,f32,bf16,f16 (default f64,f32 — the paper's "
                        "binary double/single search); extra widths add a "
                        "lattice-descent phase that re-tests passing items "
                        "one width narrower at a time")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--refine", action="store_true",
                   help="second search phase when the union fails")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable the incremental evaluation caches "
                        "(block-template instrumentation reuse, persistent "
                        "VM); results are identical, only slower")
    p.add_argument("--campaign", metavar="DIR",
                   help="run as a durable campaign: journal the frontier "
                        "after every batch and record outcomes in "
                        "DIR/results.sqlite so the search survives "
                        "interruption (see --resume)")
    p.add_argument("--resume", metavar="DIR",
                   help="resume an interrupted campaign from its journal; "
                        "replays decided outcomes from the result store and "
                        "continues from the exact frontier")
    p.add_argument("--store", metavar="DB",
                   help="standalone result store (SQLite file): decided "
                        "outcomes persist across runs, so a repeated search "
                        "warm-starts without re-executing anything")
    p.add_argument("--cluster", metavar="HOST:PORT",
                   help="serve evaluations to network workers instead of "
                        "running them locally: bind a coordinator here "
                        "(port 0 picks a free port) and lease "
                        "configurations to `repro worker` processes; "
                        "--workers then sets the batch size, not a "
                        "process count")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="cluster: requeue a worker's leases after this "
                        "much silence (default 30)")
    p.add_argument("-o", "--output", help="write the best configuration here")
    p.add_argument("--report", help="write a Markdown analysis report here")
    p.add_argument("--explain", metavar="FILE",
                   help="write a per-site decision-provenance report here "
                        "(analysis verdicts, eval evidence, crash history, "
                        "cycle shares; richer with --trace)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the one-line human summary")
    p.add_argument("--verbose", action="store_true",
                   help="print the full evaluation history")
    _add_telemetry_flags(p, progress=True)
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "serve",
        help="run a search as a cluster coordinator "
             "(same flags as `search`, plus a bind address)",
    )
    p.add_argument("address", metavar="HOST:PORT",
                   help="address to serve on (port 0 picks a free port)")
    p.add_argument("workload", nargs="?",
                   help=_WORKLOAD_HELP + " (omitted with --resume)")
    p.add_argument("klass", nargs="?", default="W", help="problem class (S/W/A/C)")
    p.add_argument("--class", dest="klass_opt", default=None, metavar="KLASS",
                   help="problem class (same as the positional argument)")
    p.add_argument("--analysis", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="shadow-value analysis guidance (see `search`)")
    p.add_argument("--stop-level", default="instruction",
                   choices=("module", "function", "block", "instruction"))
    p.add_argument("--lattice", default="f64,f32", metavar="SPEC",
                   help="precision lattice to search down (see `search`)")
    p.add_argument("--workers", type=int, default=4,
                   help="batch size: configurations leased concurrently "
                        "(default 4)")
    p.add_argument("--refine", action="store_true",
                   help="second search phase when the union fails")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable the incremental evaluation caches")
    p.add_argument("--campaign", metavar="DIR",
                   help="journal the frontier + persist outcomes in DIR "
                        "(see `search --campaign`)")
    p.add_argument("--resume", metavar="DIR",
                   help="resume an interrupted campaign (see `search`)")
    p.add_argument("--store", metavar="DB",
                   help="standalone result store (see `search --store`)")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="requeue a worker's leases after this much "
                        "silence (default 30)")
    p.add_argument("-o", "--output", help="write the best configuration here")
    p.add_argument("--report", help="write a Markdown analysis report here")
    p.add_argument("--explain", metavar="FILE",
                   help="write a per-site decision-provenance report here "
                        "(see `search --explain`)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the one-line human summary")
    p.add_argument("--verbose", action="store_true",
                   help="print the full evaluation history")
    p.add_argument("--service", metavar="ROOT", default=None,
                   help="host a multi-tenant job service rooted at ROOT "
                        "instead of one search: clients submit campaigns "
                        "with `repro submit` (see docs/SERVICE.md)")
    p.add_argument("--max-inflight", type=int, default=None, metavar="N",
                   help="service mode: per-tenant cap on concurrently "
                        "leased configurations (default: unlimited)")
    p.add_argument("--max-queued", type=int, default=None, metavar="N",
                   help="service mode: per-tenant cap on active jobs; "
                        "submits beyond it are rejected (default: "
                        "unlimited)")
    p.add_argument("--run-jobs", type=int, default=None, metavar="N",
                   help="service mode: exit once N jobs have finished "
                        "(default: serve forever)")
    _add_telemetry_flags(p, progress=True)
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a campaign to a job service (`repro serve --service`)",
    )
    p.add_argument("address", metavar="HOST:PORT",
                   help="service address (printed by `repro serve --service`)")
    p.add_argument("workload", help=_WORKLOAD_HELP)
    p.add_argument("klass", nargs="?", default="W", help="problem class (S/W/A/C)")
    p.add_argument("--class", dest="klass_opt", default=None, metavar="KLASS",
                   help="problem class (same as the positional argument)")
    p.add_argument("--analysis", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="shadow-value analysis guidance (see `search`)")
    p.add_argument("--stop-level", default="instruction",
                   choices=("module", "function", "block", "instruction"))
    p.add_argument("--lattice", default="f64,f32", metavar="SPEC",
                   help="precision lattice to search down (see `search`)")
    p.add_argument("--workers", type=int, default=4,
                   help="batch size: configurations leased concurrently "
                        "(default 4)")
    p.add_argument("--refine", action="store_true",
                   help="second search phase when the union fails")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable the incremental evaluation caches")
    p.add_argument("--tenant", default="default",
                   help="tenant name for quotas and fair-share "
                        "(default 'default')")
    p.add_argument("--quantum", type=float, default=1.0,
                   help="fair-share weight relative to other jobs "
                        "(default 1.0)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print its result")
    p.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                   help="give up on --wait after this long (default 300)")
    p.add_argument("-o", "--output",
                   help="with --wait: write the best configuration here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the one-line human summary")
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "jobs", help="list or cancel jobs on a job service"
    )
    p.add_argument("address", metavar="HOST:PORT", help="service address")
    p.add_argument("--cancel", metavar="JOB", default=None,
                   help="cancel this job instead of listing")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "result", help="fetch a finished job's row + best configuration"
    )
    p.add_argument("address", metavar="HOST:PORT", help="service address")
    p.add_argument("job", help="job id (printed by `repro submit`)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                   help="give up on --wait after this long (default 300)")
    p.add_argument("-o", "--output",
                   help="write the job's best configuration here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the one-line human summary")
    p.set_defaults(func=cmd_result)

    p = sub.add_parser(
        "worker",
        help="evaluation worker: lease and execute configurations "
             "from a coordinator",
    )
    p.add_argument("address", metavar="HOST:PORT",
                   help="coordinator address (printed by `repro serve`)")
    p.add_argument("--max-tasks", type=int, default=None, metavar="N",
                   help="exit after N evaluations (default: serve until "
                        "the coordinator says bye)")
    p.add_argument("--connect-retries", type=int, default=50, metavar="N",
                   help="dial attempts while the coordinator comes up "
                        "(default 50)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the end-of-run summary line")
    _add_plugin_flag(p)
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("store", help="result-store maintenance")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    sp = store_sub.add_parser(
        "export", help="dump a store to canonical JSONL"
    )
    sp.add_argument("db", help="SQLite result store")
    sp.add_argument("file", help="JSONL output path")
    sp.add_argument("--workload", default=None, metavar="ID",
                    help="only rows of this workload id")
    sp.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS",
                    help="give up on a locked store after this long "
                         "(exit 4; default 5)")
    sp.set_defaults(func=cmd_store)
    sp = store_sub.add_parser(
        "import", help="merge an exported JSONL file into a store"
    )
    sp.add_argument("db", help="SQLite result store (created if missing)")
    sp.add_argument("file", help="JSONL input path")
    sp.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS",
                    help="give up on a locked store after this long "
                         "(exit 4; default 5)")
    sp.set_defaults(func=cmd_store)

    p = sub.add_parser(
        "trace",
        help="trace toolkit: read a JSONL trace back "
             "(every event re-validated against the schema)",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    tp = trace_sub.add_parser(
        "summary",
        help="per-kind/per-phase timing plus the replayed metrics table "
             "(byte-identical to the live run's summary)",
    )
    tp.add_argument("file", help="JSONL trace (from --trace)")
    tp.set_defaults(func=cmd_trace)
    tp = trace_sub.add_parser(
        "compare", help="diff two traces (e.g. warm vs cold, serial vs cluster)"
    )
    tp.add_argument("file_a", help="baseline trace")
    tp.add_argument("file_b", help="trace to compare against it")
    tp.set_defaults(func=cmd_trace)
    tp = trace_sub.add_parser(
        "profile", help="cycle attribution: top sites (or the opcode census)"
    )
    tp.add_argument("file", help="JSONL trace")
    tp.add_argument("--top", type=int, default=20, metavar="N",
                    help="rows to show (default 20)")
    tp.set_defaults(func=cmd_trace)
    tp = trace_sub.add_parser(
        "flame",
        help="collapsed-stack cycle attribution "
             "(flamegraph.pl / speedscope input)",
    )
    tp.add_argument("file", help="JSONL trace")
    tp.add_argument("-o", "--output", metavar="FILE",
                    help="write the collapsed stacks here instead of stdout")
    tp.set_defaults(func=cmd_trace)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument(
        "figure",
        choices=("fig8", "fig9", "fig10", "fig11", "amg", "guided", "resume"),
    )
    p.add_argument("klass", nargs="?", default="W")
    p.set_defaults(func=cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
