"""The single-configuration execution kernel shared by every remote
evaluation backend.

A :class:`~repro.search.parallel.ParallelEvaluator` worker process and a
:mod:`repro.cluster` network worker do exactly the same thing per job:
instrument the workload's program under one configuration (through the
per-process :class:`~repro.search.evaluator.IncrementalState` when
incremental evaluation is on), run it, verify, and classify traps — then
ship the outcome home together with the incremental-cache counter deltas
so the parent can fold worker-side cache activity into its telemetry.
This module is that kernel, factored out so the two backends cannot
drift: an outcome computed here is bit-identical to what the serial
:class:`~repro.search.evaluator.Evaluator` would have produced.
"""

from __future__ import annotations

from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.search.evaluator import trap_reason
from repro.search.results import REASON_VERIFY, EvalOutcome
from repro.vm.errors import VmTrap

#: cache-counter names shipped from workers to the parent, in order —
#: the aggregation contract of :func:`execute_config`'s deltas tuple.
DELTA_COUNTERS = (
    "instr.block_cache_hits",
    "instr.block_cache_misses",
    "vm.compile_cache_hits",
    "vm.compile_cache_misses",
    "vm.fuse_cache_hits",
    "vm.fuse_cache_misses",
)

#: the all-zero deltas of a non-incremental execution.
ZERO_DELTAS = (0,) * len(DELTA_COUNTERS)


def counter_totals(state) -> tuple[int, ...]:
    """Current absolute cache counters of an IncrementalState (or None)."""
    if state is None:
        return ZERO_DELTAS
    machine = state.machine
    if machine is None:
        return (state.icache.hits, state.icache.misses, 0, 0, 0, 0)
    return (
        state.icache.hits,
        state.icache.misses,
        machine.compile_cache_hits,
        machine.compile_cache_misses,
        machine.fuse_cache_hits,
        machine.fuse_cache_misses,
    )


def execute_config(
    workload,
    config: Config,
    state,
    optimize_checks: bool = False,
    telemetry=None,
) -> tuple[EvalOutcome, tuple[int, ...]]:
    """Instrument + run + verify one configuration.

    *state* is the executor's :class:`IncrementalState` (None restores
    the cold path).  Returns the outcome plus the cache-counter deltas
    this execution contributed (see :data:`DELTA_COUNTERS`).  With
    *telemetry* attached, instrumentation statistics and trap events
    land in the executor's local stream (cluster workers forward that
    stream to the coordinator).
    """
    if state is not None:
        before = counter_totals(state)
        policies = config.instruction_policies()
        instrumented = instrument(
            workload.program, config,
            optimize_checks=optimize_checks,
            cache=state.icache, policies=policies,
            telemetry=telemetry,
        )
        try:
            result = state.run(workload, instrumented)
        except VmTrap as exc:
            if telemetry is not None:
                telemetry.emit("vm.trap", message=str(exc))
            outcome = EvalOutcome(False, 0, str(exc), trap_reason(exc))
            return outcome, _deltas(state, before)
        passed = bool(workload.verify(result))
        outcome = EvalOutcome(
            passed, result.cycles, "", "" if passed else REASON_VERIFY
        )
        return outcome, _deltas(state, before)
    instrumented = instrument(
        workload.program, config, optimize_checks=optimize_checks,
        telemetry=telemetry,
    )
    try:
        result = workload.run(instrumented.program)
    except VmTrap as exc:
        if telemetry is not None:
            telemetry.emit("vm.trap", message=str(exc))
        return EvalOutcome(False, 0, str(exc), trap_reason(exc)), ZERO_DELTAS
    passed = bool(workload.verify(result))
    outcome = EvalOutcome(passed, result.cycles, "", "" if passed else REASON_VERIFY)
    return outcome, ZERO_DELTAS


def _deltas(state, before) -> tuple[int, ...]:
    after = counter_totals(state)
    return tuple(a - b for a, b in zip(after, before))
