"""Bounded-retry policy for evaluations lost to dying workers.

Both distributed evaluation backends — the fork-based
:class:`~repro.search.parallel.ParallelEvaluator` and the network
coordinator behind :class:`~repro.cluster.ClusterEvaluator` — face the
same failure: the process evaluating a configuration dies before
reporting an outcome (OOM kill, segfault in a native extension, a
SIGKILLed cluster worker, fault injection).  The shared policy is

* retry the configuration at most ``limit`` times, sleeping
  ``backoff * 2**(attempt-1)`` seconds before each retry round;
* a configuration that keeps killing its executor through every retry
  is *classified*, not fatal: it becomes a failed
  :class:`~repro.search.results.EvalOutcome` with reason
  :data:`~repro.search.results.REASON_WORKER_CRASH`, the search records
  it and descends exactly like a trap, and the campaign continues.

The two backends differ only in *when* they sleep (the pool evaluator
sleeps the parent between resubmission rounds; the coordinator delays
the individual task's next lease), which is why the policy carries no
clock of its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.results import REASON_WORKER_CRASH, EvalOutcome


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to retry a crashed evaluation, and how patiently.

    limit:
        Maximum retries per configuration (0 = classify on the first
        crash).  An evaluation is attempted at most ``limit + 1`` times.
    backoff:
        Base of the exponential backoff: attempt *n* (1-based) waits
        ``backoff * 2**(n-1)`` seconds before re-executing.
    """

    limit: int = 3
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.backoff < 0:
            raise ValueError("retry_backoff must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry round *attempt* (1-based)."""
        return self.backoff * (2 ** (attempt - 1))

    def exhausted(self, attempts: int) -> bool:
        """True once *attempts* crashes mean no further retry is due."""
        return attempts > self.limit

    def crash_outcome(
        self, attempts: int, what: str = "worker process died"
    ) -> EvalOutcome:
        """The classified failure for a config that crashed *attempts*
        times — recorded by the search like any other failed evaluation
        so a crash can never abort a campaign."""
        return EvalOutcome(
            False, 0, f"{what} (x{attempts} attempts)", REASON_WORKER_CRASH
        )
