"""Parallel configuration evaluation.

The paper notes the search "is highly parallelizable, and the system can
launch many independent tests if cores are available".  This module
provides that: a process pool (fork start method — the workload objects,
including their compiled programs and cached baselines, are inherited
by the children without pickling) evaluating batches of configurations.

Only the *evaluations* are parallel; the search loop itself stays
deterministic — batches are drained in submission order, so histories
and results are identical to a serial run with the same options.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.telemetry import NULL_TELEMETRY
from repro.vm.errors import VmTrap

# Per-worker state, installed by the fork (never pickled).
_STATE: dict = {}


def _worker_init(workload, tree, optimize_checks) -> None:
    _STATE["workload"] = workload
    _STATE["tree"] = tree
    _STATE["optimize_checks"] = optimize_checks


def _worker_eval(flags: dict) -> tuple[bool, int, str]:
    workload = _STATE["workload"]
    config = Config(_STATE["tree"], flags)
    instrumented = instrument(
        workload.program, config, optimize_checks=_STATE["optimize_checks"]
    )
    try:
        result = workload.run(instrumented.program)
    except VmTrap as exc:
        return (False, 0, str(exc))
    return (bool(workload.verify(result)), result.cycles, "")


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ParallelEvaluator:
    """Drop-in sibling of :class:`~repro.search.evaluator.Evaluator` with
    an additional ``evaluate_batch``; falls back to serial evaluation when
    fork is not available on the platform.

    Also a context manager: ``with ParallelEvaluator(...) as ev:`` closes
    the worker pool on exit even when a search raises mid-batch (the
    ``__del__`` best-effort path remains as a backstop).  Telemetry events
    are emitted from the parent process only — worker children never carry
    sinks, so trace files have a single writer.
    """

    def __init__(
        self,
        workload,
        tree,
        workers: int,
        optimize_checks: bool = False,
        telemetry=None,
    ):
        if workers < 2:
            raise ValueError("ParallelEvaluator needs workers >= 2")
        self.workload = workload
        self.tree = tree
        self.workers = workers
        self.optimize_checks = optimize_checks
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache: dict = {}
        self.evaluations = 0
        self.cache_hits = 0
        self._pool = None
        if fork_available():
            # Make sure lazily cached state (baseline, profile) exists
            # before forking so children share it.
            workload.baseline()
            if hasattr(workload, "profile"):
                workload.profile()
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(workload, tree, optimize_checks),
            )

    # -- Evaluator protocol ---------------------------------------------------

    def evaluate(self, config: Config) -> tuple[bool, int, str]:
        return self.evaluate_batch([config])[0]

    def evaluate_batch(self, configs: list[Config]) -> list[tuple[bool, int, str]]:
        keys = [frozenset(c.flags.items()) for c in configs]
        missing: dict = {}
        for key, config in zip(keys, configs):
            if key not in self.cache and key not in missing:
                missing[key] = config

        if missing:
            items = list(missing.items())
            start = time.perf_counter()
            if self._pool is not None:
                futures = [
                    self._pool.submit(_worker_eval, dict(config.flags))
                    for _key, config in items
                ]
                outcomes = [f.result() for f in futures]
            else:  # serial fallback (no fork on this platform)
                outcomes = [
                    _serial_eval(
                        self.workload, config, self.optimize_checks,
                        telemetry=self.telemetry,
                    )
                    for _key, config in items
                ]
            batch_wall = time.perf_counter() - start
            telemetry = self.telemetry
            for (key, _config), outcome in zip(items, outcomes):
                self.cache[key] = outcome
                self.evaluations += 1
                if telemetry.enabled:
                    passed, cycles, trap = outcome
                    if trap:
                        telemetry.emit("vm.trap", message=trap)
                    # Workers run concurrently, so per-config wall time is
                    # the batch wall amortized over its members.
                    telemetry.emit(
                        "eval.config", passed=passed, cycles=cycles, trap=trap,
                        wall_s=round(batch_wall / len(items), 6),
                    )

        results = []
        for key in keys:
            results.append(self.cache[key])
        hits = len(keys) - len(missing)
        self.cache_hits += hits
        if hits:
            self.telemetry.count("eval.cache_hits", hits)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


def _serial_eval(workload, config: Config, optimize_checks: bool, telemetry=None):
    instrumented = instrument(
        workload.program, config, optimize_checks=optimize_checks,
        telemetry=telemetry,
    )
    try:
        result = workload.run(instrumented.program)
    except VmTrap as exc:
        return (False, 0, str(exc))
    return (bool(workload.verify(result)), result.cycles, "")
