"""Parallel configuration evaluation.

The paper notes the search "is highly parallelizable, and the system can
launch many independent tests if cores are available".  This module
provides that: a process pool (fork start method — the workload objects,
including their compiled programs and cached baselines, are inherited
by the children without pickling) evaluating batches of configurations.

Only the *evaluations* are parallel; the search loop itself stays
deterministic — batches are drained in submission order, so histories
and results are identical to a serial run with the same options.

Incremental evaluation mirrors the serial :class:`Evaluator`: every
worker process owns an :class:`~repro.search.evaluator.IncrementalState`
(instrumentation-template cache + persistent VM) that persists across
the jobs it executes, and ships its cache-counter deltas back with each
outcome so the parent can aggregate them into the shared telemetry —
workers never carry telemetry sinks of their own.  Batch deduplication
(flag-identical and semantically identical configs) happens parent-side
before submission, so ``eval.cache_hits`` / ``eval.config`` counts are
identical to a serial run over the same sequence.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from concurrent.futures import ProcessPoolExecutor

from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.search.evaluator import IncrementalState, semantic_key, trap_reason
from repro.search.results import REASON_VERIFY, EvalOutcome
from repro.telemetry import NULL_TELEMETRY
from repro.vm.errors import VmTrap

# Per-worker state, installed by the fork (never pickled).
_STATE: dict = {}

#: cache-counter names shipped from workers to the parent, in order.
_DELTA_COUNTERS = (
    "instr.block_cache_hits",
    "instr.block_cache_misses",
    "vm.compile_cache_hits",
    "vm.compile_cache_misses",
)


def _worker_init(workload, tree, optimize_checks, incremental) -> None:
    _STATE["workload"] = workload
    _STATE["tree"] = tree
    _STATE["optimize_checks"] = optimize_checks
    _STATE["incremental"] = incremental
    _STATE["state"] = None


def _counter_totals(state) -> tuple[int, int, int, int]:
    if state is None:
        return (0, 0, 0, 0)
    machine = state.machine
    return (
        state.icache.hits,
        state.icache.misses,
        machine.compile_cache_hits if machine is not None else 0,
        machine.compile_cache_misses if machine is not None else 0,
    )


def _worker_eval(flags: dict):
    """Evaluate one config; returns (outcome, cache-counter deltas).

    The deltas (see ``_DELTA_COUNTERS``) let the parent aggregate the
    worker-side incremental-cache activity into its telemetry.
    """
    workload = _STATE["workload"]
    config = Config(_STATE["tree"], flags)
    state = _STATE["state"]
    if _STATE["incremental"] and state is None:
        state = _STATE["state"] = IncrementalState(workload)
    before = _counter_totals(state)
    if state is not None:
        policies = config.instruction_policies()
        instrumented = instrument(
            workload.program, config,
            optimize_checks=_STATE["optimize_checks"],
            cache=state.icache, policies=policies,
        )
        try:
            result = state.run(workload, instrumented)
        except VmTrap as exc:
            outcome = EvalOutcome(False, 0, str(exc), trap_reason(exc))
            return outcome, _deltas(state, before)
        passed = bool(workload.verify(result))
        outcome = EvalOutcome(
            passed, result.cycles, "", "" if passed else REASON_VERIFY
        )
        return outcome, _deltas(state, before)
    instrumented = instrument(
        workload.program, config, optimize_checks=_STATE["optimize_checks"]
    )
    try:
        result = workload.run(instrumented.program)
    except VmTrap as exc:
        return EvalOutcome(False, 0, str(exc), trap_reason(exc)), (0, 0, 0, 0)
    passed = bool(workload.verify(result))
    outcome = EvalOutcome(passed, result.cycles, "", "" if passed else REASON_VERIFY)
    return outcome, (0, 0, 0, 0)


def _deltas(state, before) -> tuple[int, int, int, int]:
    after = _counter_totals(state)
    return tuple(a - b for a, b in zip(after, before))


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _shutdown_pool(pool) -> None:
    """Module-level so ``weakref.finalize`` holds no reference to the
    evaluator (a bound method would keep it alive forever)."""
    pool.shutdown()


class ParallelEvaluator:
    """Drop-in sibling of :class:`~repro.search.evaluator.Evaluator` with
    an additional ``evaluate_batch``; falls back to serial evaluation when
    fork is not available on the platform.

    Also a context manager: ``with ParallelEvaluator(...) as ev:`` closes
    the worker pool on exit even when a search raises mid-batch (a
    ``weakref.finalize`` backstop reaps the pool if the evaluator is
    dropped without ``close()``).  Telemetry events are emitted from the
    parent process only — worker children never carry sinks, so trace
    files have a single writer.
    """

    def __init__(
        self,
        workload,
        tree,
        workers: int,
        optimize_checks: bool = False,
        telemetry=None,
        incremental: bool = True,
    ):
        if workers < 2:
            raise ValueError("ParallelEvaluator needs workers >= 2")
        self.workload = workload
        self.tree = tree
        self.workers = workers
        self.optimize_checks = optimize_checks
        self.incremental = incremental
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache: dict = {}
        self.semantic_cache: dict = {}
        self.evaluations = 0
        self.cache_hits = 0
        self._state = None  # parent-side IncrementalState (serial fallback)
        self._pool = None
        self._finalizer = None
        if fork_available():
            # Make sure lazily cached state (baseline, profile) exists
            # before forking so children share it.
            workload.baseline()
            if hasattr(workload, "profile"):
                workload.profile()
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(workload, tree, optimize_checks, incremental),
            )
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    # -- Evaluator protocol ---------------------------------------------------

    def evaluate(self, config: Config) -> EvalOutcome:
        return self.evaluate_batch([config])[0]

    def evaluate_batch(self, configs: list[Config]) -> list[EvalOutcome]:
        keys = [frozenset(c.flags.items()) for c in configs]

        # Parent-side dedup: drop flag-identical repeats, configs already
        # cached, and (incrementally) configs whose resolved policy map
        # matches a cached or already-submitted one.  What remains is
        # exactly the set a serial evaluator would have executed.
        jobs: list = []           # (key, skey, config) to execute
        job_index: dict = {}      # flag key -> job position
        alias: dict = {}          # flag key -> job position (semantic dup)
        skey_index: dict = {}     # semantic key -> job position
        for key, config in zip(keys, configs):
            if key in self.cache or key in job_index or key in alias:
                continue
            skey = None
            if self.incremental:
                skey = semantic_key(config.instruction_policies())
                hit = self.semantic_cache.get(skey)
                if hit is not None:
                    self.cache[key] = hit
                    continue
                pos = skey_index.get(skey)
                if pos is not None:
                    alias[key] = pos
                    continue
                skey_index[skey] = len(jobs)
            job_index[key] = len(jobs)
            jobs.append((key, skey, config))

        if jobs:
            start = time.perf_counter()
            if self._pool is not None:
                futures = [
                    self._pool.submit(_worker_eval, dict(config.flags))
                    for _key, _skey, config in jobs
                ]
                replies = [f.result() for f in futures]
                outcomes = [outcome for outcome, _deltas in replies]
                totals = [0, 0, 0, 0]
                for _outcome, deltas in replies:
                    for i, d in enumerate(deltas):
                        totals[i] += d
                for name, total in zip(_DELTA_COUNTERS, totals):
                    if total:
                        self.telemetry.count(name, total)
            else:  # serial fallback (no fork on this platform)
                outcomes = [
                    self._serial_eval(config) for _key, _skey, config in jobs
                ]
            batch_wall = time.perf_counter() - start
            telemetry = self.telemetry
            for (key, skey, _config), outcome in zip(jobs, outcomes):
                self.cache[key] = outcome
                if skey is not None:
                    self.semantic_cache[skey] = outcome
                self.evaluations += 1
                if telemetry.enabled:
                    passed, cycles, trap, reason = outcome
                    if trap:
                        telemetry.emit("vm.trap", message=trap)
                    # Workers run concurrently, so per-config wall time is
                    # the batch wall amortized over its members.
                    telemetry.emit(
                        "eval.config", passed=passed, cycles=cycles, trap=trap,
                        reason=reason,
                        wall_s=round(batch_wall / len(jobs), 6),
                    )
            for key, pos in alias.items():
                self.cache[key] = outcomes[pos]

        results = [self.cache[key] for key in keys]
        hits = len(keys) - len(jobs)
        self.cache_hits += hits
        if hits:
            self.telemetry.count("eval.cache_hits", hits)
        return results

    def _serial_eval(self, config: Config) -> EvalOutcome:
        if self.incremental and self._state is None:
            self._state = IncrementalState(self.workload, self.telemetry)
        state = self._state
        instrumented = instrument(
            self.workload.program, config,
            optimize_checks=self.optimize_checks, telemetry=self.telemetry,
            cache=state.icache if state is not None else None,
            policies=config.instruction_policies() if state is not None else None,
        )
        try:
            if state is not None:
                result = state.run(self.workload, instrumented)
            else:
                result = self.workload.run(instrumented.program)
        except VmTrap as exc:
            return EvalOutcome(False, 0, str(exc), trap_reason(exc))
        passed = bool(self.workload.verify(result))
        return EvalOutcome(
            passed, result.cycles, "", "" if passed else REASON_VERIFY
        )

    def close(self) -> None:
        if self._pool is not None:
            self._finalizer()  # idempotent: shuts the pool down once
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
