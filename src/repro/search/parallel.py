"""Parallel configuration evaluation.

The paper notes the search "is highly parallelizable, and the system can
launch many independent tests if cores are available".  This module
provides that: a process pool (fork start method — the workload objects,
including their compiled programs and cached baselines, are inherited
by the children without pickling) evaluating batches of configurations.

Only the *evaluations* are parallel; the search loop itself stays
deterministic — batches are drained in submission order, so histories
and results are identical to a serial run with the same options.

Incremental evaluation mirrors the serial :class:`Evaluator`: every
worker process owns an :class:`~repro.search.evaluator.IncrementalState`
(instrumentation-template cache + persistent VM) that persists across
the jobs it executes, and ships its cache-counter deltas back with each
outcome so the parent can aggregate them into the shared telemetry —
workers never carry telemetry sinks of their own.  Batch deduplication
(flag-identical and semantically identical configs) happens parent-side
before submission — :mod:`repro.search.batching`, shared with the
network :class:`~repro.cluster.ClusterEvaluator` — so
``eval.cache_hits`` / ``eval.config`` counts are identical to a serial
run over the same sequence.

Crash-fault tolerance
---------------------
A worker process that dies mid-evaluation (OOM kill, segfault in a
native extension, fault injection) breaks the whole
``ProcessPoolExecutor``: every unfinished future raises
``BrokenProcessPool``.  Instead of letting that abort a multi-hour
campaign, the evaluator reaps the broken pool, respawns a fresh one,
and resubmits the unfinished configurations under the shared
:class:`~repro.search.retry.RetryPolicy` (exponential backoff).  A
configuration that keeps killing its worker through ``retry_limit``
respawns is classified as a failed evaluation with reason
``worker_crash`` — the search records it and descends, exactly like a
trap.  Outcomes that completed before the crash are never re-run, and
a result store (``store=``) additionally persists each outcome the
moment it arrives, so even a parent-process SIGKILL loses at most the
in-flight configurations.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.config.model import Config
from repro.search.batching import plan_batch, record_batch
from repro.search.evaluator import IncrementalState
from repro.search.execution import (
    DELTA_COUNTERS,
    ZERO_DELTAS,
    execute_config,
)
from repro.search.results import EvalOutcome
from repro.search.retry import RetryPolicy
from repro.telemetry import NULL_TELEMETRY

# Per-worker state, installed by the fork (never pickled).
_STATE: dict = {}

#: Fault-injection hook for crash-recovery tests and CI smoke jobs:
#: when set (parent-side, *before* the pool forks — children inherit
#: it, including respawned pools), every worker calls it with the
#: config's flag map right before evaluating.  A hook simulates a
#: worker crash by calling ``os._exit()``; see
#: tests/campaign/test_worker_crash.py for the file-sentinel idiom
#: that crashes exactly once across respawns.
FAULT_HOOK = None


def _worker_init(workload, tree, optimize_checks, incremental) -> None:
    _STATE["workload"] = workload
    _STATE["tree"] = tree
    _STATE["optimize_checks"] = optimize_checks
    _STATE["incremental"] = incremental
    _STATE["state"] = None


def _worker_eval(flags: dict):
    """Evaluate one config; returns (outcome, cache-counter deltas).

    The deltas (see :data:`~repro.search.execution.DELTA_COUNTERS`) let
    the parent aggregate the worker-side incremental-cache activity into
    its telemetry.
    """
    if FAULT_HOOK is not None:
        FAULT_HOOK(flags)
    workload = _STATE["workload"]
    config = Config(_STATE["tree"], flags)
    state = _STATE["state"]
    if _STATE["incremental"] and state is None:
        state = _STATE["state"] = IncrementalState(workload)
    return execute_config(
        workload, config, state, _STATE["optimize_checks"]
    )


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _shutdown_pool(pool) -> None:
    """Module-level so ``weakref.finalize`` holds no reference to the
    evaluator (a bound method would keep it alive forever).

    ``cancel_futures`` matters on the interrupt path: a
    ``KeyboardInterrupt`` mid-batch leaves submitted-but-unstarted jobs
    in the pool's queue, and a plain ``shutdown()`` would block on all
    of them — keeping worker processes alive long after the search is
    dead.  Cancelling drains the queue; workers finish (at most) their
    current evaluation and exit, so no orphans survive the search.
    """
    pool.shutdown(wait=True, cancel_futures=True)


class ParallelEvaluator:
    """Drop-in sibling of :class:`~repro.search.evaluator.Evaluator` with
    an additional ``evaluate_batch``; falls back to serial evaluation when
    fork is not available on the platform.

    Also a context manager: ``with ParallelEvaluator(...) as ev:`` closes
    the worker pool on exit even when a search raises mid-batch (a
    ``weakref.finalize`` backstop reaps the pool if the evaluator is
    dropped without ``close()``).  Telemetry events are emitted from the
    parent process only — worker children never carry sinks, so trace
    files have a single writer.
    """

    def __init__(
        self,
        workload,
        tree,
        workers: int,
        optimize_checks: bool = False,
        telemetry=None,
        incremental: bool = True,
        store=None,
        store_workload: str = "",
        retry_limit: int = 3,
        retry_backoff: float = 0.05,
        lattice=None,
    ):
        if workers < 2:
            raise ValueError("ParallelEvaluator needs workers >= 2")
        self.workload = workload
        self.tree = tree
        self.workers = workers
        self.optimize_checks = optimize_checks
        self.incremental = incremental
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache: dict = {}
        self.semantic_cache: dict = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.store = store
        self.store_workload = store_workload
        self.store_hits = 0
        #: lattice spec salting the store's policy digests (see Evaluator)
        self.lattice = lattice
        #: configurations actually run (excludes every kind of replay)
        self.executions = 0
        #: policy digests counted toward ``evaluations`` — journaled and
        #: restored on resume so replay counting matches an
        #: uninterrupted run; see the serial Evaluator's field.
        self.decided: set = set()
        #: bounded-retry policy for crashed workers (shared with the
        #: cluster coordinator — see :mod:`repro.search.retry`).
        self.retry = RetryPolicy(retry_limit, retry_backoff)
        self.pool_respawns = 0
        self.crashed_configs = 0
        self._state = None  # parent-side IncrementalState (serial fallback)
        self._pool = None
        self._finalizer = None
        if fork_available():
            # Make sure lazily cached state (baseline, profile) exists
            # before forking so children share it.
            workload.baseline()
            if hasattr(workload, "profile"):
                workload.profile()
            self._pool = self._spawn_pool()
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    @property
    def retry_limit(self) -> int:
        return self.retry.limit

    @property
    def retry_backoff(self) -> float:
        return self.retry.backoff

    def _store_id(self) -> str:
        if not self.store_workload:
            from repro.store import workload_id

            self.store_workload = workload_id(self.workload)
        return self.store_workload

    def _spawn_pool(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(
                self.workload, self.tree, self.optimize_checks, self.incremental
            ),
        )

    def _respawn_pool(self) -> None:
        """Replace a broken pool with a fresh one (same fork'd state)."""
        if self._finalizer is not None:
            self._finalizer.detach()
        if self._pool is not None:
            # The pool is broken: surviving workers exit after their
            # current item, dead ones are reaped.  Nothing is pending
            # that we still want (unfinished configs are resubmitted).
            self._pool.shutdown(wait=True, cancel_futures=True)
        self.pool_respawns += 1
        self._pool = self._spawn_pool()
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    # -- Evaluator protocol ---------------------------------------------------

    def evaluate(self, config: Config) -> EvalOutcome:
        return self.evaluate_batch([config])[0]

    def evaluate_batch(self, configs: list[Config]) -> list[EvalOutcome]:
        # Parent-side dedup (shared with the cluster coordinator): what
        # remains in plan.jobs is exactly the set a serial evaluator
        # would have executed.
        plan = plan_batch(self, configs)
        outcomes: list = []
        batch_wall = 0.0
        if plan.jobs:
            start = time.perf_counter()
            if self._pool is not None:
                outcomes = self._run_jobs(
                    [dict(job.config.flags) for job in plan.jobs]
                )
            else:  # serial fallback (no fork on this platform)
                outcomes = [self._serial_eval(job.config) for job in plan.jobs]
            batch_wall = time.perf_counter() - start
        return record_batch(self, plan, outcomes, batch_wall)

    def _run_jobs(self, flag_maps: list[dict]) -> list[EvalOutcome]:
        """Execute *flag_maps* on the pool, surviving worker crashes.

        A dead worker breaks the whole pool: every unfinished future
        raises ``BrokenProcessPool`` (or comes back cancelled).  Results
        that completed before the crash are kept; the pool is respawned
        and the rest resubmitted under the retry policy, each config at
        most ``retry_limit`` times before it is classified as failed
        with reason ``worker_crash``.
        """
        telemetry = self.telemetry
        outcomes: list = [None] * len(flag_maps)
        totals = [0] * len(DELTA_COUNTERS)
        attempts = [0] * len(flag_maps)
        pending = list(range(len(flag_maps)))
        while pending:
            futures = {
                i: self._pool.submit(_worker_eval, flag_maps[i])
                for i in pending
            }
            crashed = []
            for i, future in futures.items():
                try:
                    outcome, deltas = future.result()
                except (BrokenProcessPool, CancelledError):
                    crashed.append(i)
                else:
                    outcomes[i] = outcome
                    for j, delta in enumerate(deltas):
                        totals[j] += delta
            if not crashed:
                break
            self._respawn_pool()
            retry = []
            for i in crashed:
                attempts[i] += 1
                if self.retry.exhausted(attempts[i]):
                    # This config (or its cohort) kept killing workers:
                    # classify as a failed evaluation and move on — a
                    # crash must never abort the campaign.
                    self.crashed_configs += 1
                    outcomes[i] = self.retry.crash_outcome(attempts[i])
                    if telemetry.enabled:
                        telemetry.count("eval.worker_crashes")
                        telemetry.emit(
                            "eval.worker_crash", attempts=attempts[i]
                        )
                else:
                    retry.append(i)
            if retry:
                attempt = max(attempts[i] for i in retry)
                delay = self.retry.delay(attempt)
                if telemetry.enabled:
                    telemetry.count("eval.retries", len(retry))
                    telemetry.emit(
                        "eval.retry", attempt=attempt, pending=len(retry),
                        backoff_s=round(delay, 3),
                    )
                time.sleep(delay)
            pending = retry
        for name, total in zip(DELTA_COUNTERS, totals):
            if total:
                telemetry.count(name, total)
        return outcomes

    def _serial_eval(self, config: Config) -> EvalOutcome:
        if self.incremental and self._state is None:
            self._state = IncrementalState(self.workload, self.telemetry)
        outcome, deltas = execute_config(
            self.workload, config, self._state, self.optimize_checks
        )
        if deltas != ZERO_DELTAS:
            for name, total in zip(DELTA_COUNTERS, deltas):
                if total:
                    self.telemetry.count(name, total)
        return outcome

    def close(self) -> None:
        if self._pool is not None:
            self._finalizer()  # idempotent: shuts the pool down once
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
