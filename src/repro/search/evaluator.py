"""Configuration evaluation: instrument, run, verify.

A crashed run (VM trap — out-of-bounds access from a corrupted index,
step-budget blowout from a wrecked loop bound, ...) counts as a failed
verification; this is the paper's deliberate "anything missed causes a
crash" property at work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.vm.errors import VmTrap


@dataclass(slots=True)
class Evaluator:
    """Evaluates configurations against a workload.

    Parameters
    ----------
    workload:
        Object with ``program`` (the original double-precision binary),
        ``run(program) -> ExecResult`` and ``verify(result) -> bool``.
    optimize_checks:
        Forwarded to the instrumentation engine (redundant-check
        elimination ablation).
    """

    workload: object
    optimize_checks: bool = False
    cache: dict = field(default_factory=dict)
    evaluations: int = 0
    cache_hits: int = 0

    def evaluate(self, config: Config) -> tuple[bool, int, str]:
        """Returns (passed, cycles, trap_message)."""
        key = frozenset(config.flags.items())
        if key in self.cache:
            self.cache_hits += 1
            return self.cache[key]
        self.evaluations += 1
        instrumented = instrument(
            self.workload.program, config, optimize_checks=self.optimize_checks
        )
        try:
            result = self.workload.run(instrumented.program)
        except VmTrap as exc:
            outcome = (False, 0, str(exc))
            self.cache[key] = outcome
            return outcome
        passed = bool(self.workload.verify(result))
        outcome = (passed, result.cycles, "")
        self.cache[key] = outcome
        return outcome

    def evaluate_batch(self, configs: list) -> list:
        """Serial batch evaluation (see repro.search.parallel for the
        multi-process version with the same interface)."""
        return [self.evaluate(config) for config in configs]

    def close(self) -> None:
        """Nothing to release; mirrors ParallelEvaluator's interface."""
