"""Configuration evaluation: instrument, run, verify.

A crashed run (VM trap — out-of-bounds access from a corrupted index,
step-budget blowout from a wrecked loop bound, ...) counts as a failed
verification; this is the paper's deliberate "anything missed causes a
crash" property at work.

Every *actual* evaluation (cache miss) is reported to the attached
telemetry as one ``eval.config`` event carrying pass/fail, cycles, the
trap message, and wall time — so a trace's ``eval.config`` count always
equals the search's ``configs_tested``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config.model import Config
from repro.instrument.engine import instrument
from repro.telemetry import NULL_TELEMETRY
from repro.vm.errors import VmTrap


@dataclass(slots=True)
class Evaluator:
    """Evaluates configurations against a workload.

    Parameters
    ----------
    workload:
        Object with ``program`` (the original double-precision binary),
        ``run(program) -> ExecResult`` and ``verify(result) -> bool``.
    optimize_checks:
        Forwarded to the instrumentation engine (redundant-check
        elimination ablation).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; receives one
        ``eval.config`` event per cache miss plus the instrumentation
        engine's ``instr.stats`` counters.
    """

    workload: object
    optimize_checks: bool = False
    cache: dict = field(default_factory=dict)
    evaluations: int = 0
    cache_hits: int = 0
    telemetry: object = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY

    def evaluate(self, config: Config) -> tuple[bool, int, str]:
        """Returns (passed, cycles, trap_message)."""
        key = frozenset(config.flags.items())
        if key in self.cache:
            self.cache_hits += 1
            self.telemetry.count("eval.cache_hits")
            return self.cache[key]
        self.evaluations += 1
        telemetry = self.telemetry
        start = time.perf_counter()
        instrumented = instrument(
            self.workload.program, config,
            optimize_checks=self.optimize_checks, telemetry=telemetry,
        )
        try:
            result = self.workload.run(instrumented.program)
        except VmTrap as exc:
            outcome = (False, 0, str(exc))
            self.cache[key] = outcome
            if telemetry.enabled:
                telemetry.emit("vm.trap", message=str(exc), addr=exc.addr)
                telemetry.emit(
                    "eval.config", passed=False, cycles=0, trap=str(exc),
                    wall_s=round(time.perf_counter() - start, 6),
                )
            return outcome
        passed = bool(self.workload.verify(result))
        outcome = (passed, result.cycles, "")
        self.cache[key] = outcome
        if telemetry.enabled:
            telemetry.emit(
                "eval.config", passed=passed, cycles=result.cycles, trap="",
                wall_s=round(time.perf_counter() - start, 6),
            )
        return outcome

    def evaluate_batch(self, configs: list) -> list:
        """Serial batch evaluation (see repro.search.parallel for the
        multi-process version with the same interface)."""
        return [self.evaluate(config) for config in configs]

    def close(self) -> None:
        """Nothing to release; mirrors ParallelEvaluator's interface."""

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
