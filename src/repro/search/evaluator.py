"""Configuration evaluation: instrument, run, verify.

A crashed run (VM trap — out-of-bounds access from a corrupted index,
step-budget blowout from a wrecked loop bound, ...) counts as a failed
verification; this is the paper's deliberate "anything missed causes a
crash" property at work.

Every *actual* evaluation (cache miss) is reported to the attached
telemetry as one ``eval.config`` event carrying pass/fail, cycles, the
trap message, and wall time — so a trace's ``eval.config`` count always
equals the search's ``configs_tested`` minus its ``store.hit`` replays
(exactly ``configs_tested`` when no result store is attached).

Incremental evaluation
----------------------
With ``incremental`` on (the default) the evaluator threads two caches
through every test so the marginal cost of a configuration is
proportional to its *delta* from previously seen ones:

* an :class:`~repro.instrument.cache.InstrumentCache` reuses per-block
  instrumentation templates, so only blocks whose policy slice changed
  are re-snippeted;
* a persistent :class:`~repro.vm.machine.Machine` reuses compiled VM
  closures for unchanged blocks across programs (only when the
  workload's ``run`` is the stock single-rank runner — a workload with
  a custom ``run`` is executed through that override, unchanged).

Both caches are semantics-invisible: the instrumented bytes and the
run's outputs/cycles/steps are bit-identical to the cold path (enforced
by differential tests).  A second, semantic config cache recognizes
configurations whose *flag maps* differ but whose resolved per-
instruction policies coincide — those short-circuit as cache hits
without an ``eval.config`` event, exactly like flag-identical repeats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config.model import Config
from repro.instrument.cache import InstrumentCache
from repro.instrument.engine import instrument
from repro.search.results import (
    REASON_TIMEOUT,
    REASON_TRAP,
    REASON_VERIFY,
    EvalOutcome,
)
from repro.telemetry import NULL_TELEMETRY
from repro.vm.errors import VmTimeout, VmTrap
from repro.vm.machine import Machine
from repro.workloads.base import Workload


def trap_reason(exc: VmTrap) -> str:
    """Classify a VM trap for :class:`EvalOutcome.reason`."""
    return REASON_TIMEOUT if isinstance(exc, VmTimeout) else REASON_TRAP


def machine_eligible(workload) -> bool:
    """True when *workload* executes programs with the stock single-rank
    runner (``Workload.run`` not overridden), so a persistent
    :class:`~repro.vm.machine.Machine` built from ``vm_params()``
    reproduces its runs bit-for-bit."""
    return isinstance(workload, Workload) and type(workload).run is Workload.run


class IncrementalState:
    """The per-process caches of incremental evaluation.

    One instance serves one (workload, evaluator) pairing — serial
    evaluators own one directly; each parallel worker builds its own
    after the fork so closures bind to that process's state.
    """

    __slots__ = ("icache", "machine")

    def __init__(self, workload, telemetry=None) -> None:
        self.icache = InstrumentCache(workload.program)
        self.machine = (
            Machine(telemetry=telemetry, **workload.vm_params())
            if machine_eligible(workload)
            else None
        )

    def run(self, workload, instrumented):
        """Execute an instrumented build exactly as ``workload.run`` would."""
        if self.machine is not None:
            return self.machine.run(instrumented.program, instrumented.segments)
        return workload.run(instrumented.program)


def semantic_key(policies: dict) -> tuple:
    """Hashable identity of a configuration's resolved policy map."""
    return tuple(sorted(policies.items()))


@dataclass(slots=True)
class Evaluator:
    """Evaluates configurations against a workload.

    Parameters
    ----------
    workload:
        Object with ``program`` (the original double-precision binary),
        ``run(program) -> ExecResult`` and ``verify(result) -> bool``.
    optimize_checks:
        Forwarded to the instrumentation engine (redundant-check
        elimination ablation).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; receives one
        ``eval.config`` event per cache miss plus the instrumentation
        engine's ``instr.stats`` counters and the incremental-cache
        metrics (``instr.block_cache_*``, ``vm.compile_cache_*``).
    incremental:
        Thread the instrumentation/compile caches through evaluations
        (see module docstring).  ``False`` restores the cold path for
        every test — results are identical either way.
    store:
        Optional :class:`repro.store.ResultStore`.  Decided outcomes are
        looked up by ``(store_workload, policy digest)`` before any
        execution and persisted after each one, so campaigns resume and
        warm-start without re-running configurations.  A store *replay*
        counts toward ``evaluations`` (the search's decision budget is
        unchanged either way) but not toward executions — ``store_hits``
        tracks the split.
    store_workload:
        The :func:`repro.store.workload_id` the store rows are keyed by;
        computed from ``workload`` on first use when left empty.
    lattice:
        Precision lattice spec (or :class:`repro.lattice.Lattice`) the
        evaluated configurations refer to; salts the store's policy
        digests so outcomes never dedup across lattices.  ``None`` and
        the binary ``"f64,f32"`` lattice produce the legacy digests.
    """

    workload: object
    optimize_checks: bool = False
    cache: dict = field(default_factory=dict)
    evaluations: int = 0
    cache_hits: int = 0
    telemetry: object = None
    incremental: bool = True
    semantic_cache: dict = field(default_factory=dict)
    store: object = None
    store_workload: str = ""
    store_hits: int = 0
    lattice: object = None
    #: configurations actually run (excludes every kind of replay)
    executions: int = 0
    #: policy digests this campaign has counted toward ``evaluations``.
    #: Journaled and restored on resume so a store replay of a config
    #: that was merely an in-memory cache hit before the interruption
    #: does not inflate configs_tested — resumed counts match an
    #: uninterrupted run exactly.  Empty (and unused) without a store.
    decided: set = field(default_factory=set)
    _state: IncrementalState | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY

    def _store_id(self) -> str:
        if not self.store_workload:
            from repro.store import workload_id

            self.store_workload = workload_id(self.workload)
        return self.store_workload

    def _store_lookup(self, policies) -> tuple[str, EvalOutcome | None]:
        """(policy digest, replayed outcome or None) for a store-backed
        evaluator; ("", None) when no store is attached."""
        if self.store is None:
            return "", None
        from repro.store import policy_digest

        digest = policy_digest(policies, self.lattice)
        return digest, self.store.get(self._store_id(), digest)

    def _persist(self, digest: str, outcome: EvalOutcome, wall_s: float) -> None:
        if self.store is not None and digest:
            self.store.put(self._store_id(), digest, outcome, wall_s=wall_s)

    def evaluate(self, config: Config) -> EvalOutcome:
        """Returns EvalOutcome(passed, cycles, trap_message, reason)."""
        key = frozenset(config.flags.items())
        if key in self.cache:
            self.cache_hits += 1
            self.telemetry.count("eval.cache_hits")
            return self.cache[key]

        policies = None
        skey = None
        if self.incremental:
            policies = config.instruction_policies()
            skey = semantic_key(policies)
            hit = self.semantic_cache.get(skey)
            if hit is not None:
                # Same executable as an earlier config under different
                # flags: a cache hit, not a new evaluation.
                self.cache[key] = hit
                self.cache_hits += 1
                self.telemetry.count("eval.cache_hits")
                return hit

        digest = ""
        if self.store is not None:
            if policies is None:
                policies = config.instruction_policies()
            digest, stored = self._store_lookup(policies)
            if stored is not None:
                # Decided in a previous run: replay without executing.
                # Counts toward evaluations only the first time this
                # campaign sees the config (see ``decided``).
                if digest not in self.decided:
                    self.decided.add(digest)
                    self.evaluations += 1
                self.store_hits += 1
                self._store(key, skey, stored)
                if self.telemetry.enabled:
                    self.telemetry.count("store.hits")
                    self.telemetry.emit("store.hit", key=digest[:12])
                return stored

        if self.incremental and self._state is None:
            self._state = IncrementalState(self.workload, self.telemetry)

        self.evaluations += 1
        self.executions += 1
        if digest:
            self.decided.add(digest)
        telemetry = self.telemetry
        state = self._state
        start = time.perf_counter()
        instrumented = instrument(
            self.workload.program, config,
            optimize_checks=self.optimize_checks, telemetry=telemetry,
            cache=state.icache if state is not None else None,
            policies=policies,
        )
        try:
            if state is not None:
                result = state.run(self.workload, instrumented)
            else:
                result = self.workload.run(instrumented.program)
        except VmTrap as exc:
            wall = time.perf_counter() - start
            outcome = EvalOutcome(False, 0, str(exc), trap_reason(exc))
            self._store(key, skey, outcome)
            self._persist(digest, outcome, wall)
            if telemetry.enabled:
                telemetry.emit("vm.trap", message=str(exc), addr=exc.addr)
                telemetry.emit(
                    "eval.config", passed=False, cycles=0, trap=str(exc),
                    reason=outcome.reason,
                    wall_s=round(wall, 6),
                )
            return outcome
        passed = bool(self.workload.verify(result))
        wall = time.perf_counter() - start
        outcome = EvalOutcome(
            passed, result.cycles, "", "" if passed else REASON_VERIFY
        )
        self._store(key, skey, outcome)
        self._persist(digest, outcome, wall)
        if telemetry.enabled:
            telemetry.emit(
                "eval.config", passed=passed, cycles=result.cycles, trap="",
                reason=outcome.reason,
                wall_s=round(wall, 6),
            )
        return outcome

    def _store(self, key, skey, outcome) -> None:
        self.cache[key] = outcome
        if skey is not None:
            self.semantic_cache[skey] = outcome

    def evaluate_batch(self, configs: list) -> list:
        """Serial batch evaluation (see repro.search.parallel for the
        multi-process version with the same interface)."""
        return [self.evaluate(config) for config in configs]

    def close(self) -> None:
        """Nothing to release; mirrors ParallelEvaluator's interface."""

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
