"""Search result records (the columns of the paper's Figure 10)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.model import Config


@dataclass(slots=True)
class EvalRecord:
    """One tested configuration."""

    label: str            # human-readable description (node ids / group)
    passed: bool
    cycles: int = 0
    trap: str = ""        # trap message if the run crashed
    wall_s: float = 0.0   # wall time of the evaluation (batch-amortized)
    phase: str = "bfs"    # search phase: "bfs" | "final" | "refine"


@dataclass(slots=True)
class SearchResult:
    """Outcome of one automatic search."""

    workload: str
    candidates: int               # replacement-candidate instruction count
    configs_tested: int           # configurations actually evaluated
    final_config: Config | None   # union of individually passing replacements
    final_verified: bool          # did the union itself pass?
    static_pct: float             # % of candidate instructions replaced
    dynamic_pct: float            # % of candidate executions replaced
    history: list = field(default_factory=list)   # list[EvalRecord]
    wall_seconds: float = 0.0
    #: second search phase (paper §3.1: "a second search phase may be
    #: useful, to determine the largest subset of individually-passing
    #: instruction replacements that may be composed"): the refined
    #: configuration, whether it verifies, and how many passing items
    #: had to be dropped to get there.  None when refinement was off or
    #: unnecessary (the union itself passed).
    refined_config: Config | None = None
    refined_verified: bool = False
    refined_static_pct: float = 0.0
    refined_dynamic_pct: float = 0.0
    refine_drops: int = 0

    def row(self) -> dict:
        """One row of the paper's Figure 10 table, extended with the
        second search phase (refinement) columns; they read "-" when no
        refinement ran.  Deliberately excludes wall time so rows from
        identical searches compare equal (determinism tests rely on it).
        """
        refined = self.refined_config is not None
        return {
            "benchmark": self.workload,
            "candidates": self.candidates,
            "tested": self.configs_tested,
            "static_pct": round(self.static_pct * 100.0, 1),
            "dynamic_pct": round(self.dynamic_pct * 100.0, 1),
            "final": "pass" if self.final_verified else "fail",
            "refined": (
                ("pass" if self.refined_verified else "fail") if refined else "-"
            ),
            "ref_static_pct": (
                round(self.refined_static_pct * 100.0, 1) if refined else "-"
            ),
            "ref_dynamic_pct": (
                round(self.refined_dynamic_pct * 100.0, 1) if refined else "-"
            ),
            "ref_drops": self.refine_drops if refined else "-",
        }
