"""Search result records (the columns of the paper's Figure 10)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.config.model import Config

#: why an evaluation failed (EvalOutcome.reason / EvalRecord.reason)
REASON_TRAP = "trap"          # hard VM fault (bad access, NaN-sentinel crash, ...)
REASON_TIMEOUT = "timeout"    # step budget exhausted (wrecked loop bound)
REASON_VERIFY = "verify"      # ran to completion but missed the verification bound
REASON_PRUNED = "pruned"      # skipped: shadow-value analysis predicted failure
#: the evaluating worker process died (and kept dying through every
#: bounded retry) — the config is treated as failed so the campaign
#: continues instead of aborting; see repro.search.parallel.
REASON_WORKER_CRASH = "worker_crash"


class EvalOutcome(NamedTuple):
    """What one configuration evaluation produced.

    A NamedTuple so existing ``(passed, cycles, trap)``-style consumers
    keep working via indexing while the failure *reason* — ``""`` on a
    pass, else one of :data:`REASON_TRAP` / :data:`REASON_TIMEOUT` /
    :data:`REASON_VERIFY` — rides along for diagnosis and for the
    analysis-vs-reality comparison.
    """

    passed: bool
    cycles: int
    trap: str
    reason: str = ""


@dataclass(slots=True)
class EvalRecord:
    """One tested configuration."""

    label: str            # human-readable description (node ids / group)
    passed: bool
    cycles: int = 0
    trap: str = ""        # trap message if the run crashed
    wall_s: float = 0.0   # wall time of the evaluation (batch-amortized)
    phase: str = "bfs"    # search phase: "bfs" | "final" | "refine"
    #: why the evaluation failed: "" on a pass, else "trap" /
    #: "timeout" / "verify", "pruned" when the shadow-value analysis
    #: skipped the evaluation outright, or "worker_crash" when the
    #: evaluating worker process kept dying through every retry.
    reason: str = ""


@dataclass(slots=True)
class SearchResult:
    """Outcome of one automatic search."""

    workload: str
    candidates: int               # replacement-candidate instruction count
    configs_tested: int           # configurations actually evaluated
    final_config: Config | None   # union of individually passing replacements
    final_verified: bool          # did the union itself pass?
    static_pct: float             # % of candidate instructions replaced
    dynamic_pct: float            # % of candidate executions replaced
    history: list = field(default_factory=list)   # list[EvalRecord]
    wall_seconds: float = 0.0
    #: second search phase (paper §3.1: "a second search phase may be
    #: useful, to determine the largest subset of individually-passing
    #: instruction replacements that may be composed"): the refined
    #: configuration, whether it verifies, and how many passing items
    #: had to be dropped to get there.  None when refinement was off or
    #: unnecessary (the union itself passed).
    refined_config: Config | None = None
    refined_verified: bool = False
    refined_static_pct: float = 0.0
    refined_dynamic_pct: float = 0.0
    refine_drops: int = 0
    #: shadow-value analysis guidance (repro.analysis): whether the
    #: search consumed a report, and how many candidate evaluations its
    #: predictions pruned (those appear in history with reason="pruned"
    #: and are NOT counted in configs_tested).
    analysis_used: bool = False
    analysis_pruned: int = 0
    #: durable-campaign provenance (repro.campaign / repro.store):
    #: whether this run resumed from a journal checkpoint, and how many
    #: of configs_tested were replayed from the result store instead of
    #: executed.  Deliberately excluded from row() so warm and cold runs
    #: of the same search compare equal.
    resumed: bool = False
    store_replays: int = 0

    def fail_reasons(self) -> dict:
        """Histogram of failure reasons over the evaluation history."""
        counts: dict[str, int] = {}
        for record in self.history:
            if not record.passed and record.reason:
                counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def row(self) -> dict:
        """One row of the paper's Figure 10 table, extended with the
        second search phase (refinement) columns; they read "-" when no
        refinement ran.  Deliberately excludes wall time so rows from
        identical searches compare equal (determinism tests rely on it).
        """
        refined = self.refined_config is not None
        return {
            "benchmark": self.workload,
            "candidates": self.candidates,
            "tested": self.configs_tested,
            "static_pct": round(self.static_pct * 100.0, 1),
            "dynamic_pct": round(self.dynamic_pct * 100.0, 1),
            "final": "pass" if self.final_verified else "fail",
            "refined": (
                ("pass" if self.refined_verified else "fail") if refined else "-"
            ),
            "ref_static_pct": (
                round(self.refined_static_pct * 100.0, 1) if refined else "-"
            ),
            "ref_dynamic_pct": (
                round(self.refined_dynamic_pct * 100.0, 1) if refined else "-"
            ),
            "ref_drops": self.refine_drops if refined else "-",
        }
