"""The breadth-first search engine itself."""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass

from repro.config.generator import build_tree
from repro.config.model import (
    Config,
    ConfigNode,
    LEVEL_BLOCK,
    LEVEL_FUNCTION,
    LEVEL_INSN,
    LEVEL_MODULE,
    Policy,
    ProgramTree,
)
from repro.search.evaluator import Evaluator
from repro.search.results import EvalRecord, SearchResult

_LEVEL_RANK = {
    LEVEL_MODULE: 0,
    LEVEL_FUNCTION: 1,
    LEVEL_BLOCK: 2,
    LEVEL_INSN: 3,
}


@dataclass(frozen=True, slots=True)
class SearchOptions:
    """Knobs of the automatic search.

    stop_level:
        Finest granularity the descent may reach (paper: "the search can
        also be configured to stop at basic blocks or functions, allowing
        for faster convergence with coarser results").
    partition:
        Binary partitioning of large failed aggregates (first paper
        optimization).
    partition_threshold:
        Minimum child count for partitioning to kick in.
    prioritize:
        Profile-count prioritization (second paper optimization).
    max_configs:
        Safety budget on evaluated configurations.
    refine:
        Second search phase (suggested in the paper's Section 3.1): when
        the union of individually passing replacements fails, greedily
        drop the hottest passing items until a composable subset passes.
    refine_budget:
        Evaluation budget for the refinement phase.
    workers:
        Parallel evaluation processes (paper: the search "can launch many
        independent tests if cores are available").  1 = serial; >1 uses
        a fork-based process pool, falling back to serial on platforms
        without fork.  Results are identical either way.
    """

    stop_level: str = LEVEL_INSN
    partition: bool = True
    partition_threshold: int = 4
    prioritize: bool = True
    max_configs: int = 20_000
    refine: bool = False
    refine_budget: int = 64
    workers: int = 1

    def __post_init__(self) -> None:
        if self.stop_level not in _LEVEL_RANK:
            raise ValueError(f"bad stop_level {self.stop_level!r}")


class _Item:
    """A work-queue entry: one node, or a group of sibling nodes."""

    __slots__ = ("nodes", "is_group")

    def __init__(self, nodes: list[ConfigNode], is_group: bool) -> None:
        self.nodes = nodes
        self.is_group = is_group

    def label(self) -> str:
        if not self.is_group:
            return self.nodes[0].node_id
        first, last = self.nodes[0].node_id, self.nodes[-1].node_id
        return f"[{first}..{last}]({len(self.nodes)})"

    def flags(self) -> dict[str, Policy]:
        return {n.node_id: Policy.SINGLE for n in self.nodes}


class SearchEngine:
    """Drives the automatic search for one workload.

    Parameters
    ----------
    workload:
        Object with ``name``, ``program``, ``run``, ``verify`` and
        ``profile()`` (exec counts of the original program).
    options:
        :class:`SearchOptions`.
    base_config:
        Optional starting configuration carrying e.g. user-set IGNORE
        flags (the paper's escape hatch for RNG-style code); its flags are
        merged into every tested configuration.
    """

    def __init__(
        self,
        workload,
        options: SearchOptions | None = None,
        base_config: Config | None = None,
        evaluator: Evaluator | None = None,
    ) -> None:
        self.workload = workload
        self.options = options or SearchOptions()
        self.tree: ProgramTree = (
            base_config.tree if base_config is not None else build_tree(workload.program)
        )
        if evaluator is not None:
            self.evaluator = evaluator
        elif self.options.workers > 1:
            from repro.search.parallel import ParallelEvaluator

            self.evaluator = ParallelEvaluator(
                workload, self.tree, self.options.workers
            )
        else:
            self.evaluator = Evaluator(workload)
        self.base_config = base_config or Config.all_double(self.tree)
        self._seq = 0
        self._heap: list = []
        self._fifo: deque = deque()
        self._profile: dict[int, int] = {}

    # -- queue ------------------------------------------------------------------

    def _weight(self, item: _Item) -> int:
        total = 0
        for node in item.nodes:
            for insn in node.instructions():
                total += self._profile.get(insn.addr, 0)
        return total

    def _push(self, item: _Item) -> None:
        if self.options.prioritize:
            self._seq += 1
            heapq.heappush(self._heap, (-self._weight(item), self._seq, item))
        else:
            self._fifo.append(item)

    def _pop(self) -> _Item | None:
        if self.options.prioritize:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]
        if not self._fifo:
            return None
        return self._fifo.popleft()

    # -- descent ------------------------------------------------------------------

    def _descend(self, item: _Item) -> None:
        opts = self.options
        if item.is_group:
            if len(item.nodes) > 1:
                mid = len(item.nodes) // 2
                self._push(_Item(item.nodes[:mid], True))
                self._push(_Item(item.nodes[mid:], True))
            else:
                self._descend(_Item(item.nodes, False))
            return
        node = item.nodes[0]
        if node.level == LEVEL_INSN:
            return  # cannot subdivide an instruction
        if _LEVEL_RANK[node.level] >= _LEVEL_RANK[opts.stop_level]:
            return  # descent capped by stop_level
        children = node.children
        if opts.partition and len(children) > opts.partition_threshold:
            mid = len(children) // 2
            self._push(_Item(children[:mid], True))
            self._push(_Item(children[mid:], True))
        else:
            for child in children:
                self._push(_Item([child], False))

    # -- main loop --------------------------------------------------------------------

    def run(self) -> SearchResult:
        start = time.perf_counter()
        self._profile = self.workload.profile() if self.options.prioritize else {}

        for root in self.tree.roots:
            self._push(_Item([root], False))

        history: list[EvalRecord] = []
        passing: list[_Item] = []
        batch_size = max(1, self.options.workers)

        while True:
            if self.evaluator.evaluations >= self.options.max_configs:
                break
            items: list[_Item] = []
            while len(items) < batch_size:
                item = self._pop()
                if item is None:
                    break
                items.append(item)
            if not items:
                break
            configs = []
            for item in items:
                config = self.base_config.copy()
                config.flags.update(item.flags())
                configs.append(config)
            outcomes = self.evaluator.evaluate_batch(configs)
            for item, (passed, cycles, trap) in zip(items, outcomes):
                history.append(EvalRecord(item.label(), passed, cycles, trap))
                if passed:
                    passing.append(item)
                else:
                    self._descend(item)

        # Compose the final configuration: union of everything that passed.
        final = self.base_config.copy()
        for item in passing:
            final.flags.update(item.flags())

        final_verified = False
        if passing:
            passed, cycles, trap = self.evaluator.evaluate(final)
            history.append(EvalRecord("FINAL(union)", passed, cycles, trap))
            final_verified = passed

        profile = self.workload.profile()
        result = SearchResult(
            workload=getattr(self.workload, "name", self.tree.program_name),
            candidates=self.tree.candidate_count,
            configs_tested=self.evaluator.evaluations,
            final_config=final,
            final_verified=final_verified,
            static_pct=final.static_replaced_fraction(),
            dynamic_pct=final.dynamic_replaced_fraction(profile),
            history=history,
            wall_seconds=time.perf_counter() - start,
        )

        if self.options.refine and passing and not final_verified:
            self._refine(result, passing, history, profile)
            result.configs_tested = self.evaluator.evaluations
            result.wall_seconds = time.perf_counter() - start
        return result

    # -- second search phase (composition refinement) ----------------------------

    def _refine(
        self,
        result: SearchResult,
        passing: list,
        history: list,
        profile: dict,
    ) -> None:
        """Greedy composition search: drop the hottest passing items from
        the union until the composition verifies (or the budget runs out).

        Rationale: precision decisions interact, and the interaction is
        almost always mediated by the most frequently executed replaced
        code — dropping cold items rarely rescues a failing union.
        """
        self._profile = profile  # _weight uses it
        remaining = sorted(passing, key=self._weight)  # coldest first
        budget = [self.options.refine_budget]
        dropped: list = []

        def compose(items):
            candidate = self.base_config.copy()
            for item in items:
                candidate.flags.update(item.flags())
            passed, cycles, trap = self.evaluator.evaluate(candidate)
            budget[0] -= 1
            history.append(
                EvalRecord(f"REFINE({len(items)} items)", passed, cycles, trap)
            )
            return passed, candidate

        kept = None
        while remaining and budget[0] > 0:
            passed, candidate = compose(remaining)
            if passed:
                kept = candidate
                break
            dropped.append(remaining.pop())  # drop the hottest remaining

        if kept is None:
            result.refined_config = self.base_config.copy()
            result.refined_verified = False
            result.refine_drops = len(dropped)
            return

        # Re-add pass: some dropped items may compose fine once the true
        # offender is out; try them back in, coldest first.
        for item in sorted(dropped, key=self._weight):
            if budget[0] <= 0:
                break
            passed, candidate = compose(remaining + [item])
            if passed:
                remaining.append(item)
                kept = candidate

        result.refined_config = kept
        result.refined_verified = True
        result.refined_static_pct = kept.static_replaced_fraction()
        result.refined_dynamic_pct = kept.dynamic_replaced_fraction(profile)
        result.refine_drops = len(passing) - len(remaining)
